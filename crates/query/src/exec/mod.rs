//! Volcano-style batched physical operators.
//!
//! The select executor is a tree of composable operators behind the
//! [`Executor`] trait: each call to [`Executor::next_batch`] yields the
//! next batch of rows (up to [`BATCH_ROWS`] per batch) or `None` when the
//! operator is exhausted. The planner in [`crate::select`] *lowers* a
//! statement to this tree — access selection, pushdown classification,
//! join planning, sort-elision and top-K eligibility are all decided
//! before the first batch flows — instead of branching inside one
//! monolithic function.
//!
//! # The operator vocabulary
//!
//! * [`scan::ScanExec`] — one `from` item: a stored-table scan through its
//!   chosen [`Access`](crate::planner::Access) path (seq scan, index
//!   probe/multi-probe, index range) or a transition-table scan, with the
//!   pushed-down conjuncts filtering at the scan. Big-enough stored-table
//!   scans with row-local conjuncts partition through the exchange
//!   operator: contiguous ranges, merged in partition order.
//! * [`exchange::Exchange`] — not a tree node but the one gate every
//!   partitioned phase goes through: it decides whether a phase fans out
//!   (thread budget, [`crate::parallel::PAR_THRESHOLD`]), dispatches
//!   contiguous ranges on the worker pool, returns per-partition results
//!   in partition order, and owns the parallelism counters and the
//!   earliest-error merge rule (see [`crate::parallel`] for row-locality,
//!   `docs/parallel-execution.md` for the model).
//! * [`join::JoinExec`] — drains its child scans and assembles row
//!   combinations: the greedy N-way hash/cross [`JoinPlan`]
//!   (crate::planner::JoinPlan) in compiled mode, the historical 2-way
//!   hash special case and nested-loop odometer in interpreted mode.
//!   Hash-step builds and probes exchange across partitions. Emits
//!   batches of *cursors* (one row index per item) in row-index
//!   lexicographic order.
//! * [`filter::FilterExec`] — evaluates the full `where` predicate per
//!   assembled combination (hash probes and pushdown are sound
//!   prefilters), serially or exchanged when the predicate is
//!   row-local; collects the origin handles a select trace needs.
//! * [`project::ProjectExec`] / [`aggregate::AggregateExec`] — expand
//!   wildcards, then evaluate projections row-by-row or per group
//!   (`group by` / `having` / aggregate calls), emitting rows keyed by
//!   their `order by` values. Compiled grouped statements whose
//!   expressions lower to a row-local `GroupProgram` run *two-phase*:
//!   a streaming `partial-aggregate` phase exchanges each input batch
//!   into per-partition accumulators (merged in encounter order), and a
//!   `final-aggregate` phase folds the groups — itself exchanged when
//!   there are enough. Everything else keeps the one-pass `aggregate`
//!   operator, which doubles as the differential oracle.
//! * [`sort::DistinctExec`], [`sort::SortExec`], [`sort::LimitExec`] —
//!   `distinct` dedup, the stable order-by sort with its top-K
//!   partial-selection fast path, and the `limit` truncation. Distinct
//!   exchanges per-partition first-occurrence candidates, sort merges
//!   per-partition runs under the `(key, input index)` total order, and
//!   top-K selects per-partition candidate supersets before the serial
//!   selection.
//!
//! # Batch contract
//!
//! `next_batch` returns `Ok(Some(batch))` with `1..=BATCH_ROWS` rows,
//! `Ok(None)` at end of stream (repeat calls keep returning `None`), or
//! `Err` — after an error the operator must not be pulled again. Blocking
//! operators (join build, filter's parallel WHERE pass, aggregation,
//! distinct, sort, limit) drain their child completely on first pull and
//! then re-emit in batches; this is what preserves the serial executor's
//! error selection bit-for-bit — a later row's error still surfaces even
//! when an earlier operator could have short-circuited.
//!
//! # Determinism and stats
//!
//! Operators contain exactly the code the monolithic executor ran, so
//! results, error selection, and the aggregate [`crate::ExecStats`]
//! totals are bit-identical to the pre-operator pipeline (the
//! differential suites enforce this). Per-operator counters attach via
//! [`crate::OpStatsCell`] on the context — a separate side channel that
//! never perturbs the aggregate counters.

pub(crate) mod aggregate;
pub(crate) mod exchange;
pub(crate) mod filter;
pub(crate) mod join;
pub(crate) mod project;
pub(crate) mod scan;
pub(crate) mod sort;

use setrules_sql::ast::{SelectItem, SelectStmt, TableSource};
use setrules_storage::{TableId, TupleHandle, Value};

use crate::bindings::Bindings;
use crate::ctx::QueryCtx;
use crate::error::QueryError;
use crate::planner::{choose_access, equi_join_edges};
use crate::select::has_aggregate;

/// Maximum rows per emitted batch.
pub(crate) const BATCH_ROWS: usize = 1024;

/// One produced row paired with its evaluated `order by` key.
pub(crate) type KeyedRow = (Vec<Value>, Vec<Value>);

/// Everything an operator needs per pull: the (Copy) query context and
/// the scope stack. The stack is threaded mutably through the tree — only
/// the operator currently evaluating holds it, exactly like the recursive
/// executor it replaces.
pub(crate) struct ExecCx<'a, 'b> {
    /// The query context (database, provider, caches, stats, mode).
    pub ctx: QueryCtx<'a>,
    /// Name-resolution scopes (outer query levels for correlated
    /// subqueries; operators push/pop their own innermost level).
    pub bindings: &'b mut Bindings,
}

impl ExecCx<'_, '_> {
    /// Record a batch emission on the per-operator side channel.
    pub(crate) fn batch_out(&self, name: &'static str, rows: usize) {
        if let Some(cell) = self.ctx.op_stats {
            cell.batch_out(name, rows);
        }
    }

    /// Record rows consumed from a child operator.
    pub(crate) fn rows_in(&self, name: &'static str, rows: usize) {
        if let Some(cell) = self.ctx.op_stats {
            cell.rows_in(name, rows);
        }
    }
}

/// A batched physical operator.
pub(crate) trait Executor {
    /// The unit one pull produces (a vector of rows, cursors, …).
    type Batch;

    /// This operator's display name (stable vocabulary: `"seq-scan"`,
    /// `"hash-join"`, `"filter"`, `"sort"`, …), used for per-operator
    /// stats and the `plan:` line of `explain`.
    fn name(&self) -> &'static str;

    /// Produce the next batch, or `None` when exhausted.
    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError>;
}

/// The top of a lowered select pipeline: emits [`KeyedRow`] batches and,
/// once opened (first `next_batch`), knows its output column names and
/// the stored-tuple origins of every emitted row (for select tracing).
pub(crate) trait RowSource: Executor<Batch = Vec<KeyedRow>> {
    /// Output column names; valid after the first `next_batch` call.
    fn output_columns(&self) -> &[String];

    /// Take the per-result-row origin handles collected by the filter
    /// (empty unless the pipeline was built with tracing on).
    fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>>;
}

/// A materialized result being re-emitted in batches: blocking operators
/// produce their full output once (at open), then hand it out
/// `batch_rows` elements at a time. Advancing is a pointer bump on the
/// owning iterator — no tail copying per batch.
pub(crate) struct Batches<T> {
    iter: std::vec::IntoIter<T>,
    batch_rows: usize,
}

impl<T> Batches<T> {
    pub(crate) fn new(buf: Vec<T>, batch_rows: usize) -> Self {
        Batches { iter: buf.into_iter(), batch_rows }
    }

    /// The next batch of `1..=batch_rows` elements, `None` when drained.
    pub(crate) fn next(&mut self) -> Option<Vec<T>> {
        let b: Vec<T> = self.iter.by_ref().take(self.batch_rows).collect();
        if b.is_empty() {
            None
        } else {
            Some(b)
        }
    }
}

/// Whether `stmt` takes the grouped (aggregate) pipeline. Wildcard
/// expansions only ever add bare column references, so this is decidable
/// from the statement alone — both the lowering driver and the `explain`
/// shape report use this one function.
pub(crate) fn is_grouped(stmt: &SelectStmt) -> bool {
    !stmt.group_by.is_empty()
        || stmt
            .projection
            .iter()
            .any(|it| matches!(it, SelectItem::Expr { expr, .. } if has_aggregate(expr)))
        || stmt.having.as_ref().is_some_and(has_aggregate)
}

/// Whether a grouped statement lowers to the two-phase aggregation
/// program against the schema-derived layout — the plan-time view of
/// [`aggregate::group_program`] (top-level statements have no outer
/// scopes, so the schema layout *is* the runtime layout).
fn two_phase_eligible(
    stmt: &SelectStmt,
    layout: &crate::compile::Layout,
    frames: &[crate::compile::LayoutFrame],
) -> bool {
    let cols: Vec<(&str, &std::sync::Arc<Vec<String>>)> =
        frames.iter().map(|f| (f.name.as_str(), &f.columns)).collect();
    let Ok(proj) = project::expand_wildcards_cols(stmt, &cols) else { return false };
    aggregate::group_program(stmt, layout, &proj).is_some()
}

/// The pipeline stages of `stmt` that are *exchange-eligible* — the
/// stages a multi-threaded run would partition onto the worker pool, in
/// pipeline order — or `None` when there are none (including the fast
/// paths, which never reach the operator pipeline). This is the
/// `parallel:` line of `explain`, derived from the same gates the
/// operators use: the WHERE pass exchanges only a row-local full
/// predicate, the join exchanges its hash build/probe (so it needs an
/// equi-edge), aggregation exchanges exactly when it lowers two-phase,
/// and distinct/sort/top-K partition on values alone. Shape-only — the
/// run-time size gate ([`exchange::Exchange::plan`]) cannot be decided
/// here, so the line is identical at every thread count.
pub(crate) fn parallel_stages(ctx: QueryCtx<'_>, stmt: &SelectStmt) -> Option<Vec<&'static str>> {
    if crate::select::min_max_applies(ctx, stmt)
        || crate::select::elidable_order_column(ctx, stmt).is_some()
    {
        return None;
    }
    let mut types = Vec::new();
    let mut frames = Vec::new();
    for tref in &stmt.from {
        let table_name = match &tref.source {
            TableSource::Named(name) => name,
            TableSource::Transition { table, .. } => table,
        };
        let Ok(tid) = ctx.db.table_id(table_name) else { return None };
        let schema = ctx.db.schema(tid);
        types.push(schema.columns.iter().map(|c| c.ty).collect::<Vec<_>>());
        frames.push(crate::compile::LayoutFrame {
            name: tref.binding_name().to_string(),
            columns: std::sync::Arc::new(
                schema.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>(),
            ),
        });
    }
    let mut layout = crate::compile::Layout::new();
    layout.push_level(frames.clone());
    let mut stages = Vec::new();
    if stmt.from.len() > 1
        && !equi_join_edges(stmt.predicate.as_ref(), &layout, &types).is_empty()
    {
        stages.push("join");
    }
    if let Some(p) = stmt.predicate.as_ref() {
        if crate::parallel::is_rowlocal(&crate::compile::compile(p, &layout)) {
            stages.push("where");
        }
    }
    if is_grouped(stmt) && two_phase_eligible(stmt, &layout, &frames) {
        stages.push("aggregate");
    }
    if stmt.distinct {
        stages.push("distinct");
    }
    if !stmt.order_by.is_empty() {
        stages.push("sort");
    }
    if stages.is_empty() {
        None
    } else {
        Some(stages)
    }
}

/// The operator chain `stmt` lowers to, as display names in pull order —
/// the `plan:` line of `explain`. Derived from the *same* gate functions
/// the lowering driver uses ([`crate::select::elidable_order_column`],
/// the min/max shape check, [`is_grouped`]), so the printed tree cannot
/// drift from the executed one.
pub(crate) fn plan_ops(ctx: QueryCtx<'_>, stmt: &SelectStmt) -> Option<Vec<String>> {
    // Fast paths first, mirroring run_select_traced's dispatch order.
    if crate::select::min_max_applies(ctx, stmt) {
        let TableSource::Named(name) = &stmt.from[0].source else { return None };
        return Some(vec![format!("index-minmax({name})")]);
    }
    if let Some((tid, oc, _)) = crate::select::elidable_order_column(ctx, stmt) {
        let mut ops = vec![format!(
            "index-order-scan({}.{})",
            stmt.from[0].binding_name(),
            ctx.db.schema(tid).column_name(oc)
        )];
        if stmt.predicate.is_some() {
            ops.push("filter".into());
        }
        ops.push("project".into());
        if stmt.limit.is_some() {
            ops.push("limit".into());
        }
        return Some(ops);
    }

    let sole = stmt.from.len() == 1;
    let mut ops = Vec::new();
    let mut types = Vec::new();
    let mut frames = Vec::new();
    for tref in &stmt.from {
        let binding = tref.binding_name();
        let (table_name, named) = match &tref.source {
            TableSource::Named(name) => (name, true),
            TableSource::Transition { table, .. } => (table, false),
        };
        let Ok(tid) = ctx.db.table_id(table_name) else { return None };
        let schema = ctx.db.schema(tid);
        if named {
            let access = choose_access(ctx, tid, binding, sole, stmt.predicate.as_ref());
            ops.push(format!("{}({binding})", scan::access_op_name(&access)));
        } else {
            ops.push(format!("transition-scan({binding})"));
        }
        types.push(schema.columns.iter().map(|c| c.ty).collect::<Vec<_>>());
        frames.push(crate::compile::LayoutFrame {
            name: binding.to_string(),
            columns: std::sync::Arc::new(
                schema.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>(),
            ),
        });
    }
    let mut layout = crate::compile::Layout::new();
    layout.push_level(frames.clone());
    if stmt.from.len() > 1 {
        // The greedy join plan places every item; once any equi-edge
        // exists, the step that places that edge's second endpoint is a
        // hash step — so "hash vs nested-loop" depends only on the edge
        // set, not on cardinalities.
        let edges = equi_join_edges(stmt.predicate.as_ref(), &layout, &types);
        ops.push(if edges.is_empty() { "nested-loop".into() } else { "hash-join".into() });
    }
    if stmt.predicate.is_some() {
        ops.push("filter".into());
    }
    if is_grouped(stmt) {
        // Grouped top: two-phase when the statement lowers to a
        // GroupProgram (the exact gate the executor uses), the one-pass
        // aggregate otherwise. Shape-only, so the line is identical at
        // every thread count.
        if two_phase_eligible(stmt, &layout, &frames) {
            ops.push("partial-aggregate".into());
            ops.push("exchange".into());
            ops.push("final-aggregate".into());
        } else {
            ops.push("aggregate".into());
        }
    } else {
        ops.push("project".into());
    }
    if stmt.distinct {
        ops.push("distinct".into());
    }
    if !stmt.order_by.is_empty() {
        ops.push("sort".into());
    }
    if stmt.limit.is_some() {
        ops.push("limit".into());
    }
    Some(ops)
}

#[cfg(test)]
mod tests;
