//! Per-operator unit tests: empty input, single batch, batch-boundary
//! off-by-one (driven through every operator's `with_batch_rows` knob),
//! and error-in-mid-batch propagation, plus per-operator stats
//! accounting. The tail operators (`distinct`/`sort`/`limit`) are
//! exercised directly over a stub [`RowSource`]; the row-producing front
//! half (scan → join → filter → project/aggregate) is exercised by
//! lowering real statements with tiny batch sizes and comparing against
//! the default-size pipeline.

use std::sync::Arc;

use setrules_sql::ast::{DmlOp, Statement};
use setrules_sql::parse_statement;
use setrules_storage::{ColumnDef, Database, DataType, TableSchema};

use super::aggregate::AggregateExec;
use super::filter::FilterExec;
use super::join::JoinExec;
use super::project::ProjectExec;
use super::scan::{ScanExec, ScanSource};
use super::sort::{DistinctExec, LimitExec, SortExec};
use super::*;
use crate::planner::Access;
use crate::stats::{OpStatsCell, StatsCell};
use crate::{execute_op, ExecMode, NoTransitionTables};

#[test]
fn batches_iterator_contract() {
    // Empty buffer: no batches at all.
    let mut b: Batches<i32> = Batches::new(vec![], 4);
    assert_eq!(b.next(), None);
    // Exact multiple: full batches, then None.
    let mut b = Batches::new((0..8).collect::<Vec<_>>(), 4);
    assert_eq!(b.next(), Some(vec![0, 1, 2, 3]));
    assert_eq!(b.next(), Some(vec![4, 5, 6, 7]));
    assert_eq!(b.next(), None);
    // Off-by-one below and above a boundary.
    let mut b = Batches::new((0..3).collect::<Vec<_>>(), 4);
    assert_eq!(b.next(), Some(vec![0, 1, 2]));
    assert_eq!(b.next(), None);
    let mut b = Batches::new((0..5).collect::<Vec<_>>(), 4);
    assert_eq!(b.next(), Some(vec![0, 1, 2, 3]));
    assert_eq!(b.next(), Some(vec![4]));
    assert_eq!(b.next(), None);
}

// ----------------------------------------------------------------------
// Tail operators over a stub source
// ----------------------------------------------------------------------

/// A scripted [`RowSource`]: emits its batches in order, then either ends
/// the stream or fails — the "error arrives mid-drain" case the blocking
/// tail operators must propagate out of their open.
struct StubSource {
    batches: std::collections::VecDeque<Vec<KeyedRow>>,
    fail_at_end: bool,
    cols: Vec<String>,
}

impl StubSource {
    fn new(batches: Vec<Vec<KeyedRow>>) -> Self {
        StubSource {
            batches: batches.into(),
            fail_at_end: false,
            cols: vec!["v".to_string()],
        }
    }

    fn failing(batches: Vec<Vec<KeyedRow>>) -> Self {
        StubSource { fail_at_end: true, ..StubSource::new(batches) }
    }
}

impl Executor for StubSource {
    type Batch = Vec<KeyedRow>;

    fn name(&self) -> &'static str {
        "stub"
    }

    fn next_batch(&mut self, _cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        match self.batches.pop_front() {
            Some(b) => Ok(Some(b)),
            None if self.fail_at_end => Err(QueryError::Type("stub failure".to_string())),
            None => Ok(None),
        }
    }
}

impl RowSource for StubSource {
    fn output_columns(&self) -> &[String] {
        &self.cols
    }

    fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>> {
        Vec::new()
    }
}

/// A row keyed for ordering: `key` is the order-by key, `val` tags the
/// input position so stability is observable.
fn kr(key: i64, val: i64) -> KeyedRow {
    (vec![Value::Int(key)], vec![Value::Int(val)])
}

fn sel_stmt(sql: &str) -> setrules_sql::ast::SelectStmt {
    match parse_statement(sql).unwrap() {
        Statement::Dml(DmlOp::Select(s)) => s,
        _ => panic!("not a select: {sql}"),
    }
}

/// Pull `op` dry, flattening its batches and recording each batch size.
fn pull_dry(
    op: &mut dyn RowSource,
    cx: &mut ExecCx<'_, '_>,
) -> Result<(Vec<KeyedRow>, Vec<usize>), QueryError> {
    let mut rows = Vec::new();
    let mut sizes = Vec::new();
    while let Some(b) = op.next_batch(cx)? {
        assert!(!b.is_empty(), "the batch contract forbids empty batches");
        sizes.push(b.len());
        rows.extend(b);
    }
    // Exhaustion is sticky.
    assert!(op.next_batch(cx)?.is_none());
    Ok((rows, sizes))
}

#[test]
fn tail_operators_on_empty_input_emit_nothing() {
    let db = Database::new();
    let stmt = sel_stmt("select v from t order by v");
    let mut bindings = Bindings::new();
    let mut cx = ExecCx { ctx: QueryCtx::plain(&db), bindings: &mut bindings };
    let empty = || Box::new(StubSource::new(vec![]));
    let mut ops: Vec<Box<dyn RowSource>> = vec![
        Box::new(DistinctExec::new(empty())),
        Box::new(SortExec::new(empty(), &stmt.order_by, None)),
        Box::new(LimitExec::new(empty(), 3)),
    ];
    for op in &mut ops {
        let (rows, sizes) = pull_dry(op.as_mut(), &mut cx).unwrap();
        assert!(rows.is_empty() && sizes.is_empty());
    }
}

#[test]
fn distinct_dedups_in_first_occurrence_order_across_batch_boundaries() {
    let db = Database::new();
    let mut bindings = Bindings::new();
    let mut cx = ExecCx { ctx: QueryCtx::plain(&db), bindings: &mut bindings };
    // Dedup is on the projected row, not the sort key: (9,1) and (7,1)
    // are duplicates despite different keys.
    let src = StubSource::new(vec![
        vec![kr(9, 1), kr(8, 2)],
        vec![kr(7, 1), kr(6, 3), kr(5, 2)],
    ]);
    let mut op = DistinctExec::new(Box::new(src)).with_batch_rows(2);
    let (rows, sizes) = pull_dry(&mut op, &mut cx).unwrap();
    assert_eq!(rows, vec![kr(9, 1), kr(8, 2), kr(6, 3)]);
    assert_eq!(sizes, vec![2, 1], "3 survivors re-emitted at batch_rows=2");
}

#[test]
fn sort_is_stable_and_respects_direction() {
    let db = Database::new();
    let asc = sel_stmt("select v from t order by v");
    let desc = sel_stmt("select v from t order by v desc");
    let mut bindings = Bindings::new();
    let mut cx = ExecCx { ctx: QueryCtx::plain(&db), bindings: &mut bindings };
    let input = || vec![vec![kr(2, 0), kr(1, 1)], vec![kr(2, 2), kr(1, 3), kr(3, 4)]];

    let mut op = SortExec::new(Box::new(StubSource::new(input())), &asc.order_by, None)
        .with_batch_rows(2);
    let (rows, sizes) = pull_dry(&mut op, &mut cx).unwrap();
    assert_eq!(rows, vec![kr(1, 1), kr(1, 3), kr(2, 0), kr(2, 2), kr(3, 4)]);
    assert_eq!(sizes, vec![2, 2, 1], "5 rows at batch_rows=2: off-by-one tail batch");

    // Descending reverses key order but keeps equal-key input order.
    let mut op = SortExec::new(Box::new(StubSource::new(input())), &desc.order_by, None);
    let (rows, _) = pull_dry(&mut op, &mut cx).unwrap();
    assert_eq!(rows, vec![kr(3, 4), kr(2, 0), kr(2, 2), kr(1, 1), kr(1, 3)]);
}

#[test]
fn sort_topk_gate_and_tiebreak_match_the_full_sort() {
    let db = Database::new();
    let stmt = sel_stmt("select v from t order by v");
    // 16 rows with heavy key duplication: keys 0..4 repeated, value =
    // input index, so the (key, index) tiebreak is observable.
    let rows: Vec<KeyedRow> = (0..16).map(|i| kr(i % 4, i)).collect();
    let full_sorted = {
        let mut s = rows.clone();
        s.sort_by_key(|(k, v)| (k[0].clone(), v[0].clone()));
        s
    };
    let run = |limit: Option<usize>| {
        let mut bindings = Bindings::new();
        let st = StatsCell::new();
        let ops = OpStatsCell::new();
        let ctx = QueryCtx::plain(&db).with_stats(Some(&st)).with_op_stats(Some(&ops));
        let mut cx = ExecCx { ctx, bindings: &mut bindings };
        let src = StubSource::new(vec![rows.clone()]);
        let mut op = SortExec::new(Box::new(src), &stmt.order_by, limit);
        let (out, _) = pull_dry(&mut op, &mut cx).unwrap();
        (out, st.snapshot().topk_selected, ops.operators().contains(&"topk"))
    };

    // limit 3 < 16/4: the top-K path engages and reports itself as topk.
    let (out, topk, named_topk) = run(Some(3));
    assert_eq!(out, full_sorted[..3].to_vec(), "top-K must match the stable sort prefix");
    assert_eq!((topk, named_topk), (1, true));
    // limit 4 == 16/4: not strictly smaller, the full sort runs.
    let (out, topk, named_topk) = run(Some(4));
    assert_eq!(out, full_sorted);
    assert_eq!((topk, named_topk), (0, false));
    // limit 0 never selects (and truncation belongs to LimitExec anyway).
    let (out, topk, _) = run(Some(0));
    assert_eq!(out, full_sorted);
    assert_eq!(topk, 0);
}

#[test]
fn limit_truncates_but_still_drains_its_child() {
    let db = Database::new();
    let mut bindings = Bindings::new();
    let mut cx = ExecCx { ctx: QueryCtx::plain(&db), bindings: &mut bindings };
    let src = StubSource::new(vec![vec![kr(0, 0), kr(0, 1)], vec![kr(0, 2), kr(0, 3), kr(0, 4)]]);
    let mut op = LimitExec::new(Box::new(src), 3).with_batch_rows(2);
    let (rows, sizes) = pull_dry(&mut op, &mut cx).unwrap();
    assert_eq!(rows, vec![kr(0, 0), kr(0, 1), kr(0, 2)]);
    assert_eq!(sizes, vec![2, 1]);

    // A limit larger than the input is the identity.
    let src = StubSource::new(vec![vec![kr(0, 0)]]);
    let mut op = LimitExec::new(Box::new(src), 99);
    let (rows, _) = pull_dry(&mut op, &mut cx).unwrap();
    assert_eq!(rows, vec![kr(0, 0)]);

    // The child fails *after* enough rows to satisfy the cutoff: the
    // error must still surface, because limit drains fully before
    // truncating (the historical executor projected every row).
    let src = StubSource::failing(vec![vec![kr(0, 0), kr(0, 1), kr(0, 2), kr(0, 3)]]);
    let mut op = LimitExec::new(Box::new(src), 1);
    let err = op.next_batch(&mut cx).unwrap_err();
    assert_eq!(err.to_string(), QueryError::Type("stub failure".to_string()).to_string());
}

#[test]
fn tail_operators_propagate_a_mid_stream_error() {
    let db = Database::new();
    let stmt = sel_stmt("select v from t order by v");
    let mut bindings = Bindings::new();
    let mut cx = ExecCx { ctx: QueryCtx::plain(&db), bindings: &mut bindings };
    let failing = || Box::new(StubSource::failing(vec![vec![kr(1, 0)]]));
    let mut ops: Vec<Box<dyn RowSource>> = vec![
        Box::new(DistinctExec::new(failing())),
        Box::new(SortExec::new(failing(), &stmt.order_by, None)),
        Box::new(LimitExec::new(failing(), 3)),
    ];
    for op in &mut ops {
        let err = op.next_batch(&mut cx).unwrap_err();
        assert!(err.to_string().contains("stub failure"), "{err}");
    }
}

#[test]
fn tail_operators_account_their_work_per_operator() {
    let db = Database::new();
    let stmt = sel_stmt("select v from t order by v");
    let mut bindings = Bindings::new();
    let ops = OpStatsCell::new();
    let ctx = QueryCtx::plain(&db).with_op_stats(Some(&ops));
    let mut cx = ExecCx { ctx, bindings: &mut bindings };
    // stub(5 rows in 2 batches) -> sort -> limit 3, re-batched at 2.
    let src = StubSource::new(vec![vec![kr(2, 0), kr(1, 1)], vec![kr(3, 2), kr(1, 3), kr(2, 4)]]);
    let sort = SortExec::new(Box::new(src), &stmt.order_by, None).with_batch_rows(2);
    let mut op = LimitExec::new(Box::new(sort), 3).with_batch_rows(2);
    let (rows, _) = pull_dry(&mut op, &mut cx).unwrap();
    assert_eq!(rows.len(), 3);

    let sort_c = ops.get("sort");
    assert_eq!((sort_c.rows_in, sort_c.rows_out, sort_c.batches), (5, 5, 3));
    let limit_c = ops.get("limit");
    assert_eq!((limit_c.rows_in, limit_c.rows_out, limit_c.batches), (5, 3, 2));
    assert_eq!(ops.operators(), vec!["limit", "sort"]);
}

// ----------------------------------------------------------------------
// The row-producing front half at tiny batch sizes
// ----------------------------------------------------------------------

fn test_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "t1".to_string(),
        vec![ColumnDef::new("a", DataType::Int), ColumnDef::new("b", DataType::Int)],
    ))
    .unwrap();
    db.create_table(TableSchema::new(
        "t2".to_string(),
        vec![ColumnDef::new("a", DataType::Int), ColumnDef::new("c", DataType::Int)],
    ))
    .unwrap();
    let mut exec = |sql: &str| {
        let Statement::Dml(op) = parse_statement(sql).unwrap() else { panic!() };
        execute_op(&mut db, &NoTransitionTables, &op).unwrap();
    };
    exec("insert into t1 values (1, 10), (2, 20), (3, 30), (2, 21), (NULL, 40)");
    exec("insert into t2 values (1, 100), (2, 200), (4, 400)");
    db
}

/// Lower `stmt` exactly as the driver does (no pushdown) but with every
/// operator's batch size forced to `n`, and pull it dry. Compiled mode
/// compiles the full predicate against the schema layout, so the
/// compiled-only paths (greedy join plan, two-phase aggregation) engage.
/// The front half has no public batch-size knob, so this mirrors
/// `run_select_traced`'s lowering verbatim — if that lowering changes
/// shape, this helper is the unit-level pin that must change with it.
fn run_tiny(
    db: &Database,
    stmt: &setrules_sql::ast::SelectStmt,
    mode: ExecMode,
    n: usize,
) -> Result<(Vec<String>, Vec<Vec<Value>>), QueryError> {
    let ctx = QueryCtx::plain(db).with_mode(mode);
    let mut bindings = Bindings::new();
    let mut scans = Vec::new();
    let mut frames = Vec::new();
    for tref in &stmt.from {
        let TableSource::Named(name) = &tref.source else { panic!("named tables only") };
        let tid = ctx.db.table_id(name)?;
        let schema = ctx.db.schema(tid);
        let columns = Arc::new(schema.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
        let types = schema.columns.iter().map(|c| c.ty).collect();
        frames.push(crate::compile::LayoutFrame {
            name: tref.binding_name().to_string(),
            columns: Arc::clone(&columns),
        });
        scans.push(
            ScanExec::new(
                tref.binding_name().to_string(),
                columns,
                types,
                ScanSource::Named { tid, access: Access::FullScan },
                Vec::new(),
            )
            .with_batch_rows(n),
        );
    }
    let full_pred = match (mode, stmt.predicate.as_ref()) {
        (ExecMode::Compiled, Some(p)) => {
            let mut layout = crate::compile::Layout::new();
            layout.push_level(frames);
            Some(Arc::new(crate::compile::compile(p, &layout)))
        }
        _ => None,
    };
    let join = JoinExec::new(scans, stmt).with_batch_rows(n);
    let filter =
        FilterExec::new(join, full_pred, stmt.predicate.as_ref(), false).with_batch_rows(n);
    let mut top: Box<dyn RowSource + '_> = if is_grouped(stmt) {
        Box::new(AggregateExec::new(filter, stmt).with_batch_rows(n))
    } else {
        Box::new(ProjectExec::new(filter, stmt))
    };
    if stmt.distinct {
        top = Box::new(DistinctExec::new(top).with_batch_rows(n));
    }
    let limit = stmt.limit.map(|k| k as usize);
    if !stmt.order_by.is_empty() {
        top = Box::new(SortExec::new(top, &stmt.order_by, limit).with_batch_rows(n));
    }
    if let Some(k) = limit {
        top = Box::new(LimitExec::new(top, k).with_batch_rows(n));
    }
    let mut cx = ExecCx { ctx, bindings: &mut bindings };
    let (rows, _) = pull_dry(top.as_mut(), &mut cx)?;
    Ok((top.output_columns().to_vec(), rows.into_iter().map(|(_, r)| r).collect()))
}

#[test]
fn pipeline_results_are_identical_at_every_batch_size() {
    let db = test_db();
    let queries = [
        "select a, b from t1",
        "select b from t1 where a = 2",
        "select x.b, y.c from t1 x, t2 y where x.a = y.a",
        "select a, count(*) from t1 group by a having count(*) >= 1",
        "select distinct a from t1 order by a limit 2",
        "select b from t1 where a > 99", // empty result through every op
        "select b from t1 order by a desc",
    ];
    for sql in queries {
        let stmt = sel_stmt(sql);
        let baseline = run_tiny(&db, &stmt, ExecMode::Interpreted, BATCH_ROWS).unwrap();
        for n in [1, 2, 3] {
            assert_eq!(
                run_tiny(&db, &stmt, ExecMode::Interpreted, n).unwrap(),
                baseline,
                "[{sql}] batch_rows={n}"
            );
        }
    }
}

#[test]
fn pipeline_errors_are_identical_at_every_batch_size() {
    let db = test_db();
    // Division by zero on the a=2 rows only: earlier rows already flowed
    // into batches when the error fires.
    let stmt = sel_stmt("select 10 / (a - 2) from t1 where a is not null");
    let baseline = run_tiny(&db, &stmt, ExecMode::Interpreted, BATCH_ROWS).unwrap_err().to_string();
    for n in [1, 2, 3] {
        let err = run_tiny(&db, &stmt, ExecMode::Interpreted, n).unwrap_err().to_string();
        assert_eq!(err, baseline, "error selection drifted at batch_rows={n}");
    }
}

/// The two-phase aggregation (compiled mode) must agree with the one-pass
/// aggregate (interpreted mode) row-for-row at every batch size — the
/// partial phase accumulates per batch, so tiny batches exercise the
/// cross-batch group merge that `BATCH_ROWS` never splits.
#[test]
fn two_phase_aggregation_matches_legacy_at_every_batch_size() {
    let db = test_db();
    let queries = [
        "select a, count(*), sum(b), min(b), max(b), avg(b) from t1 group by a",
        "select count(*) from t1",
        "select count(*) from t1 where a > 99", // empty input, ungrouped
        "select a, count(distinct b) from t1 group by a having count(*) >= 1 order by a desc",
        "select x.a, count(*), sum(y.c) from t1 x, t2 y where x.a = y.a group by x.a",
    ];
    for sql in queries {
        let stmt = sel_stmt(sql);
        let legacy = run_tiny(&db, &stmt, ExecMode::Interpreted, BATCH_ROWS).unwrap();
        for n in [1, 2, 3, BATCH_ROWS] {
            assert_eq!(
                run_tiny(&db, &stmt, ExecMode::Compiled, n).unwrap(),
                legacy,
                "[{sql}] batch_rows={n}"
            );
        }
    }
}

/// A poisoned aggregate argument (division by zero on one group's row)
/// selects the same error in both aggregation paths at every batch size:
/// leaf errors are sticky per accumulator and raised lazily when the
/// final phase reaches the aggregate.
#[test]
fn two_phase_error_selection_is_batch_size_invariant() {
    let db = test_db();
    let stmt = sel_stmt("select a, sum(10 / (b - 21)) from t1 group by a order by a");
    let legacy = run_tiny(&db, &stmt, ExecMode::Interpreted, BATCH_ROWS).unwrap_err().to_string();
    for n in [1, 2, 3, BATCH_ROWS] {
        let err = run_tiny(&db, &stmt, ExecMode::Compiled, n).unwrap_err().to_string();
        assert_eq!(err, legacy, "error selection drifted at batch_rows={n}");
    }
}

/// The aggregate reports the path it took on the per-operator side
/// channel: `partial-aggregate`/`final-aggregate` when the two-phase
/// program lowers (compiled mode), the historical `aggregate` label in
/// interpreted mode.
#[test]
fn aggregate_op_stats_labels_follow_the_path() {
    let db = test_db();
    let stmt = sel_stmt("select a, count(*) from t1 group by a");
    for (mode, two_phase) in [(ExecMode::Compiled, true), (ExecMode::Interpreted, false)] {
        let ops = OpStatsCell::new();
        crate::execute_query_ext(
            &db,
            &NoTransitionTables,
            &stmt,
            &crate::ExecOpts { mode, op_stats: Some(&ops), ..Default::default() },
        )
        .unwrap();
        let names = ops.operators();
        assert_eq!(names.contains(&"partial-aggregate"), two_phase, "{mode:?}: {names:?}");
        assert_eq!(names.contains(&"final-aggregate"), two_phase, "{mode:?}: {names:?}");
        assert_eq!(names.contains(&"aggregate"), !two_phase, "{mode:?}: {names:?}");
    }
}
