//! The projection operator (non-aggregate pipeline): expands wildcards,
//! then evaluates the projection list and `order by` keys per surviving
//! combination, emitting [`KeyedRow`](super::KeyedRow) batches.
//!
//! Error ordering is load-bearing: the filter must complete before
//! wildcard expansion (a `where` error on the last combination outranks
//! an unknown `q.*` qualifier), so the child is drained first and
//! expansion runs even when it produced nothing. Projection evaluation
//! itself streams batch-by-batch — rows are evaluated in combination
//! order and the first failing row's error surfaces, exactly like the
//! per-row loop it replaces.

use std::sync::Arc;

use setrules_sql::ast::{Expr, SelectItem, SelectStmt};
use setrules_storage::{TableId, TupleHandle};

use crate::bindings::Level;
use crate::compile::{compile, eval_compiled, CompiledExpr, LayoutFrame};
use crate::ctx::ExecMode;
use crate::error::QueryError;
use crate::eval::eval_expr;

use super::filter::FilterExec;
use super::scan::FromItem;
use super::{Batches, ExecCx, Executor, KeyedRow, RowSource};

/// Expand the projection's wildcards against the materialized items,
/// yielding concrete `(expression, output name)` pairs.
pub(crate) fn expand_wildcards(
    stmt: &SelectStmt,
    items: &[FromItem],
) -> Result<Vec<(Expr, String)>, QueryError> {
    let cols: Vec<(&str, &Arc<Vec<String>>)> =
        items.iter().map(|it| (it.binding.as_str(), &it.columns)).collect();
    expand_wildcards_cols(stmt, &cols)
}

/// [`expand_wildcards`] over bare `(binding, columns)` pairs — usable at
/// plan time (the `plan:`/`parallel:` explain lines work from schemas,
/// without materialized items).
pub(crate) fn expand_wildcards_cols(
    stmt: &SelectStmt,
    items: &[(&str, &Arc<Vec<String>>)],
) -> Result<Vec<(Expr, String)>, QueryError> {
    let mut proj: Vec<(Expr, String)> = Vec::new();
    for item in &stmt.projection {
        match item {
            SelectItem::Wildcard => {
                for (binding, columns) in items {
                    for c in columns.iter() {
                        proj.push((Expr::qcol((*binding).to_string(), c.clone()), c.clone()));
                    }
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let (binding, columns) = items
                    .iter()
                    .find(|(b, _)| *b == q)
                    .ok_or_else(|| QueryError::UnknownColumn(format!("{q}.*")))?;
                for c in columns.iter() {
                    proj.push((Expr::qcol((*binding).to_string(), c.clone()), c.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    other => other.to_string(),
                });
                proj.push((expr.clone(), name));
            }
        }
    }
    Ok(proj)
}

/// The row-by-row projection operator. Implements [`RowSource`]: it is a
/// valid pipeline top for non-aggregate queries.
pub(crate) struct ProjectExec<'q> {
    filter: FilterExec<'q>,
    stmt: &'q SelectStmt,
    columns: Vec<String>,
    proj: Vec<(Expr, String)>,
    /// Compiled projection + order-by keys (compiled mode only). These
    /// include synthesized wildcard expansions, so they compile fresh —
    /// never through the plan cache, whose keys require stable AST
    /// addresses.
    compiled_proj: Option<(Vec<CompiledExpr>, Vec<CompiledExpr>)>,
    state: Option<Batches<Level>>,
}

impl<'q> ProjectExec<'q> {
    pub(crate) fn new(filter: FilterExec<'q>, stmt: &'q SelectStmt) -> Self {
        ProjectExec {
            filter,
            stmt,
            columns: Vec::new(),
            proj: Vec::new(),
            compiled_proj: None,
            state: None,
        }
    }

    fn open(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Vec<Level>, QueryError> {
        let mut matching: Vec<Level> = Vec::new();
        while let Some(batch) = self.filter.next_batch(cx)? {
            cx.rows_in("project", batch.len());
            matching.extend(batch);
        }
        let items = self.filter.items();
        self.proj = expand_wildcards(self.stmt, items)?;
        self.columns = self.proj.iter().map(|(_, n)| n.clone()).collect();
        if cx.ctx.mode == ExecMode::Compiled {
            // The same scope layout the filter evaluated in: the outer
            // scopes plus one innermost level holding this query's items.
            let mut layout = cx.bindings.layout();
            layout.push_level(
                items
                    .iter()
                    .map(|it| LayoutFrame {
                        name: it.binding.clone(),
                        columns: Arc::clone(&it.columns),
                    })
                    .collect(),
            );
            self.compiled_proj = Some((
                self.proj.iter().map(|(e, _)| compile(e, &layout)).collect(),
                self.stmt.order_by.iter().map(|(e, _)| compile(e, &layout)).collect(),
            ));
        }
        Ok(matching)
    }
}

impl Executor for ProjectExec<'_> {
    type Batch = Vec<KeyedRow>;

    fn name(&self) -> &'static str {
        "project"
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.state.is_none() {
            let matching = self.open(cx)?;
            self.state = Some(Batches::new(matching, super::BATCH_ROWS));
        }
        let Some(levels) = self.state.as_mut().expect("opened above").next() else {
            return Ok(None);
        };
        let ctx = cx.ctx;
        let mut out_batch = Vec::with_capacity(levels.len());
        for level in levels {
            cx.bindings.push_level(level);
            let result = (|| -> Result<KeyedRow, QueryError> {
                match &self.compiled_proj {
                    Some((ps, ks)) => {
                        let mut out = Vec::with_capacity(ps.len());
                        for e in ps {
                            out.push(eval_compiled(ctx, cx.bindings, None, e)?);
                        }
                        let mut key = Vec::with_capacity(ks.len());
                        for e in ks {
                            key.push(eval_compiled(ctx, cx.bindings, None, e)?);
                        }
                        Ok((key, out))
                    }
                    None => {
                        let mut out = Vec::with_capacity(self.proj.len());
                        for (e, _) in &self.proj {
                            out.push(eval_expr(ctx, cx.bindings, None, e)?);
                        }
                        let mut key = Vec::with_capacity(self.stmt.order_by.len());
                        for (e, _) in &self.stmt.order_by {
                            key.push(eval_expr(ctx, cx.bindings, None, e)?);
                        }
                        Ok((key, out))
                    }
                }
            })();
            cx.bindings.pop_level();
            out_batch.push(result?);
        }
        cx.batch_out(self.name(), out_batch.len());
        Ok(Some(out_batch))
    }
}

impl RowSource for ProjectExec<'_> {
    fn output_columns(&self) -> &[String] {
        &self.columns
    }

    fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>> {
        self.filter.take_origins()
    }
}
