//! The join operator: drains its child scans and assembles row
//! combinations as *cursors* (one row index per `from` item, in item
//! order), emitted in row-index lexicographic order.
//!
//! Compiled mode runs the greedy N-way [`JoinPlan`]: hash steps on
//! equi-join keys (build and probe partitioned on the pool when big
//! enough), cross steps only when nothing connects. Interpreted mode
//! keeps the historical paths: the 2-item hash equi-join special case and
//! the nested-loop odometer. Hash probes are a sound *prefilter* — the
//! filter operator above still evaluates the full predicate per emitted
//! cursor — with one accepted divergence: prefilters may skip
//! combinations whose evaluation would *error* (the historical 2-way hash
//! path already did this).

use std::collections::HashMap;
use std::sync::Arc;

use setrules_sql::ast::{BinaryOp, Expr, SelectStmt};
use setrules_storage::{DataType, Value};

use crate::compile::LayoutFrame;
use crate::ctx::ExecMode;
use crate::error::QueryError;
use crate::planner::{build_join_plan, equi_join_edges};
use crate::stats;

use super::exchange::Exchange;
use super::scan::{FromItem, ScanExec};
use super::{Batches, ExecCx, Executor};

/// Resolve a (possibly qualified) column reference against the from
/// items: `Some((item, column))` only when unambiguous.
fn resolve_col(items: &[FromItem], qualifier: Option<&str>, name: &str) -> Option<(usize, usize)> {
    match qualifier {
        Some(q) => {
            let idx = items.iter().position(|it| it.binding == q)?;
            let c = items[idx].columns.iter().position(|cn| cn == name)?;
            Some((idx, c))
        }
        None => {
            let mut found = None;
            for (idx, it) in items.iter().enumerate() {
                if let Some(c) = it.columns.iter().position(|cn| cn == name) {
                    if found.is_some() {
                        return None; // ambiguous
                    }
                    found = Some((idx, c));
                }
            }
            found
        }
    }
}

/// Detect a two-item equi-join: a top-level `and`-conjunct
/// `items[0].c0 = items[1].c1` (either operand order) whose columns
/// share a non-float declared type. Float keys are excluded so that
/// storage-level hash equality provably agrees with SQL equality
/// (`-0.0`/`0.0` and NaN make floats unsafe as hash keys).
fn find_equi_join(stmt: &SelectStmt, items: &[FromItem]) -> Option<(usize, usize)> {
    if items.len() != 2 {
        return None;
    }
    let pred = stmt.predicate.as_ref()?;
    let mut conjuncts = Vec::new();
    crate::planner::collect_conjuncts(pred, &mut conjuncts);
    for c in conjuncts {
        let Expr::Binary { left, op: BinaryOp::Eq, right } = c else { continue };
        let (
            Expr::Column { qualifier: lq, name: ln },
            Expr::Column { qualifier: rq, name: rn },
        ) = (left.as_ref(), right.as_ref())
        else {
            continue;
        };
        let a = resolve_col(items, lq.as_deref(), ln);
        let b = resolve_col(items, rq.as_deref(), rn);
        let (Some((ia, ca)), Some((ib, cb))) = (a, b) else { continue };
        let (c0, c1) = match (ia, ib) {
            (0, 1) => (ca, cb),
            (1, 0) => (cb, ca),
            _ => continue,
        };
        let (t0, t1) = (items[0].types[c0], items[1].types[c1]);
        if t0 == t1 && t0 != DataType::Float {
            return Some((c0, c1));
        }
    }
    None
}

/// The combination assembler. Owns its child scans; at open it drains
/// them into [`FromItem`]s, computes the full cursor set for the selected
/// join strategy, and then emits it in batches.
pub(crate) struct JoinExec<'q> {
    scans: Vec<ScanExec<'q>>,
    stmt: &'q SelectStmt,
    items: Vec<FromItem>,
    label: &'static str,
    batch_rows: usize,
    state: Option<Batches<Vec<usize>>>,
}

impl<'q> JoinExec<'q> {
    pub(crate) fn new(scans: Vec<ScanExec<'q>>, stmt: &'q SelectStmt) -> Self {
        JoinExec {
            scans,
            stmt,
            items: Vec::new(),
            label: "join",
            batch_rows: super::BATCH_ROWS,
            state: None,
        }
    }

    #[cfg(test)]
    pub(crate) fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows;
        self
    }

    /// The materialized `from` items; valid after open (first pull).
    pub(crate) fn items(&self) -> &[FromItem] {
        &self.items
    }

    fn open(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Vec<Vec<usize>>, QueryError> {
        let ctx = cx.ctx;
        // Drain the scans in item order — a scan error (say, a transition
        // provider failure on item 1) surfaces before any join work, just
        // as the sequential materialization loop did.
        let mut items: Vec<FromItem> = Vec::with_capacity(self.scans.len());
        for scan in &mut self.scans {
            let mut rows = Vec::new();
            while let Some(batch) = scan.next_batch(cx)? {
                cx.rows_in(self.label, batch.len());
                rows.extend(batch);
            }
            items.push(FromItem {
                binding: std::mem::take(&mut scan.binding),
                columns: Arc::clone(&scan.columns),
                types: std::mem::take(&mut scan.types),
                rows,
            });
        }

        let stmt = self.stmt;
        let all_nonempty = items.iter().all(|it| !it.rows.is_empty());
        let mut cursors: Vec<Vec<usize>> = Vec::new();
        if ctx.mode == ExecMode::Compiled {
            // An empty item means zero combinations (matching the
            // odometer), so only plan when every item has rows.
            if all_nonempty {
                if items.len() == 1 {
                    cursors = (0..items[0].rows.len()).map(|i| vec![i]).collect();
                } else {
                    let mut layout = cx.bindings.layout();
                    layout.push_level(
                        items
                            .iter()
                            .map(|it| LayoutFrame {
                                name: it.binding.clone(),
                                columns: Arc::clone(&it.columns),
                            })
                            .collect(),
                    );
                    let types: Vec<Vec<DataType>> =
                        items.iter().map(|it| it.types.clone()).collect();
                    let edges = equi_join_edges(stmt.predicate.as_ref(), &layout, &types);
                    let cards: Vec<usize> = items.iter().map(|it| it.rows.len()).collect();
                    let plan = build_join_plan(&cards, &edges);
                    self.label = if plan.steps.iter().any(|s| !s.edges.is_empty()) {
                        "hash-join"
                    } else {
                        "nested-loop"
                    };
                    stats::bump(ctx.stats, |s| {
                        for step in &plan.steps {
                            if step.edges.is_empty() {
                                s.nested_loop_joins += 1;
                            } else {
                                s.hash_joins += 1;
                            }
                        }
                    });
                    let order = plan.order();
                    // pos_of[item] = position of that item in join order;
                    // a partial combination stores row indices in join
                    // order, one per placed item.
                    let mut pos_of = vec![0usize; items.len()];
                    for (p, &it) in order.iter().enumerate() {
                        pos_of[it] = p;
                    }
                    let mut partials: Vec<Vec<usize>> =
                        (0..items[plan.first].rows.len()).map(|i| vec![i]).collect();
                    for step in &plan.steps {
                        if partials.is_empty() {
                            break;
                        }
                        let new_rows = &items[step.item].rows;
                        if step.edges.is_empty() {
                            // Cross step: no equi-edge reaches this item.
                            let mut next = Vec::with_capacity(partials.len() * new_rows.len());
                            for p in &partials {
                                for j in 0..new_rows.len() {
                                    let mut q = p.clone();
                                    q.push(j);
                                    next.push(q);
                                }
                            }
                            partials = next;
                        } else {
                            // Hash step: build on the incoming item over
                            // the composite key. NULL key components never
                            // join (SQL equality with NULL is unknown);
                            // the type-equality requirement on edges makes
                            // storage-level hash equality agree with SQL
                            // equality.
                            //
                            // Build a range of rows into a local map.
                            let build_range =
                                |range: std::ops::Range<usize>| -> HashMap<Vec<&Value>, Vec<usize>> {
                                    let mut local: HashMap<Vec<&Value>, Vec<usize>> =
                                        HashMap::new();
                                    'build: for j in range {
                                        let row = &new_rows[j];
                                        let mut key = Vec::with_capacity(step.edges.len());
                                        for &(_, _, nc) in &step.edges {
                                            let v = &row.1[nc];
                                            if v.is_null() {
                                                continue 'build;
                                            }
                                            key.push(v);
                                        }
                                        local.entry(key).or_default().push(j);
                                    }
                                    local
                                };
                            let table: HashMap<Vec<&Value>, Vec<usize>> =
                                if let Some(ex) = Exchange::plan(ctx, new_rows.len()) {
                                    // Exchange the build side; merging the
                                    // per-worker maps in partition order
                                    // keeps every bucket's row indices
                                    // ascending — identical to the serial
                                    // build.
                                    let maps = ex.run(ctx, build_range);
                                    let mut merged: HashMap<Vec<&Value>, Vec<usize>> =
                                        HashMap::new();
                                    for local in maps {
                                        for (key, mut js) in local {
                                            merged.entry(key).or_default().append(&mut js);
                                        }
                                    }
                                    merged
                                } else {
                                    build_range(0..new_rows.len())
                                };
                            // Probe a range of partials against the map,
                            // emitting extended combinations in order.
                            let probe_range = |range: std::ops::Range<usize>| -> Vec<Vec<usize>> {
                                let mut out = Vec::new();
                                'probe: for p in &partials[range] {
                                    let mut key = Vec::with_capacity(step.edges.len());
                                    for &(pi, pc, _) in &step.edges {
                                        let v = &items[pi].rows[p[pos_of[pi]]].1[pc];
                                        if v.is_null() {
                                            continue 'probe;
                                        }
                                        key.push(v);
                                    }
                                    if let Some(js) = table.get(&key) {
                                        for &j in js {
                                            let mut q = p.clone();
                                            q.push(j);
                                            out.push(q);
                                        }
                                    }
                                }
                                out
                            };
                            partials = if let Some(ex) = Exchange::plan(ctx, partials.len()) {
                                // Exchange the probe side; concatenating
                                // per-partition outputs in partition order
                                // reproduces the serial probe order.
                                ex.run(ctx, probe_range).concat()
                            } else {
                                probe_range(0..partials.len())
                            };
                        }
                    }
                    // Back to item order, emitted lexicographically so the
                    // two executors produce identical result order.
                    cursors = partials
                        .into_iter()
                        .map(|p| (0..items.len()).map(|i| p[pos_of[i]]).collect())
                        .collect();
                    cursors.sort_unstable();
                }
            }
        } else if let Some((c0, c1)) = find_equi_join(stmt, &items) {
            stats::bump(ctx.stats, |s| s.hash_joins += 1);
            self.label = "hash-join";
            // Hash join: build on the right item, probe with the left.
            // NULL keys never join (SQL equality with NULL is unknown);
            // the type-equality requirement in find_equi_join makes the
            // storage-level hash equality agree with SQL equality.
            let mut table: HashMap<&Value, Vec<usize>> = HashMap::new();
            for (j, row) in items[1].rows.iter().enumerate() {
                let key = &row.1[c1];
                if !key.is_null() {
                    table.entry(key).or_default().push(j);
                }
            }
            for i in 0..items[0].rows.len() {
                let key = &items[0].rows[i].1[c0];
                if key.is_null() {
                    continue;
                }
                if let Some(js) = table.get(key) {
                    for &j in js {
                        cursors.push(vec![i, j]);
                    }
                }
            }
        } else if all_nonempty {
            if items.len() > 1 {
                stats::bump(ctx.stats, |s| s.nested_loop_joins += 1);
                self.label = "nested-loop";
            }
            let mut cursor = vec![0usize; items.len()];
            'outer: loop {
                cursors.push(cursor.clone());
                // Advance the odometer.
                for pos in (0..items.len()).rev() {
                    cursor[pos] += 1;
                    if cursor[pos] < items[pos].rows.len() {
                        continue 'outer;
                    }
                    cursor[pos] = 0;
                    if pos == 0 {
                        break 'outer;
                    }
                }
            }
        }
        self.items = items;
        Ok(cursors)
    }
}

impl Executor for JoinExec<'_> {
    type Batch = Vec<Vec<usize>>;

    fn name(&self) -> &'static str {
        self.label
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.state.is_none() {
            let cursors = self.open(cx)?;
            self.state = Some(Batches::new(cursors, self.batch_rows));
        }
        let batch = self.state.as_mut().expect("opened above").next();
        if let Some(b) = &batch {
            cx.batch_out(self.name(), b.len());
        }
        Ok(batch)
    }
}
