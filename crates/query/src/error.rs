//! Query-layer errors.

use std::fmt;

use setrules_storage::StorageError;

/// Errors raised during query planning, evaluation, or DML execution.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Underlying storage error.
    Storage(StorageError),
    /// A column name did not resolve against any visible table variable.
    UnknownColumn(String),
    /// A column name resolved against more than one table variable at the
    /// same scope level.
    AmbiguousColumn(String),
    /// An operand had an unusable type (message explains).
    Type(String),
    /// A scalar subquery produced more than one row.
    ScalarSubqueryRows(usize),
    /// A subquery used with `in` or as a scalar produced a number of
    /// columns other than one.
    SubqueryColumns(usize),
    /// Integer division or modulo by zero.
    DivisionByZero,
    /// A transition table was referenced in a context that provides none
    /// (e.g. a user query outside any rule), or one the rule may not
    /// reference (paper §3's syntactic restriction).
    TransitionTableUnavailable(String),
    /// `insert ... (select ...)` produced rows of the wrong arity.
    InsertArity {
        /// Target table.
        table: String,
        /// Expected column count.
        expected: usize,
        /// Produced column count.
        got: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "{e}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            QueryError::AmbiguousColumn(c) => write!(f, "ambiguous column '{c}'"),
            QueryError::Type(m) => write!(f, "type error: {m}"),
            QueryError::ScalarSubqueryRows(n) => {
                write!(f, "scalar subquery produced {n} rows (at most 1 allowed)")
            }
            QueryError::SubqueryColumns(n) => {
                write!(f, "subquery must produce exactly 1 column, produced {n}")
            }
            QueryError::DivisionByZero => write!(f, "integer division by zero"),
            QueryError::TransitionTableUnavailable(t) => {
                write!(f, "transition table '{t}' is not available in this context")
            }
            QueryError::InsertArity { table, expected, got } => {
                write!(f, "insert into '{table}' expects {expected} columns, select produced {got}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}
