//! Materialized query results.

use std::fmt;

use setrules_json::Json;
use setrules_storage::Value;

/// A materialized result: named columns and a multiset of rows (order is
/// the deterministic evaluation order, or the `order by` order if given).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Output column names.
    pub columns: Vec<String>,
    /// Rows, each with one value per column.
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// An empty relation with the given column names.
    pub fn empty(columns: Vec<String>) -> Self {
        Relation { columns, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a 1×1 relation, if it is one.
    pub fn scalar(&self) -> Option<&Value> {
        match (&self.rows[..], self.columns.len()) {
            ([row], 1) => Some(&row[0]),
            _ => None,
        }
    }

    /// The values of the first column, in row order.
    pub fn column0(&self) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(|r| &r[0])
    }

    /// JSON form: `{"columns": [...], "rows": [[...], ...]}` with values
    /// in their untagged encoding (see [`Value::to_json`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "columns",
                Json::Array(self.columns.iter().map(|c| Json::Str(c.clone())).collect()),
            ),
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|r| Json::Array(r.iter().map(Value::to_json).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for Relation {
    /// Render as an aligned ASCII table (used by the REPL and examples).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{c:w$}", w = widths[i])?;
        }
        writeln!(f)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "-+-")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:w$}", w = widths[i])?;
            }
            writeln!(f)?;
        }
        write!(f, "({} row{})", self.rows.len(), if self.rows.len() == 1 { "" } else { "s" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_extraction() {
        let r = Relation { columns: vec!["x".into()], rows: vec![vec![Value::Int(7)]] };
        assert_eq!(r.scalar(), Some(&Value::Int(7)));
        let r2 = Relation { columns: vec!["x".into()], rows: vec![] };
        assert_eq!(r2.scalar(), None);
        let r3 = Relation {
            columns: vec!["x".into(), "y".into()],
            rows: vec![vec![Value::Int(1), Value::Int(2)]],
        };
        assert_eq!(r3.scalar(), None);
    }

    #[test]
    fn display_renders_table() {
        let r = Relation {
            columns: vec!["name".into(), "salary".into()],
            rows: vec![
                vec![Value::Text("Jane".into()), Value::Float(95000.0)],
                vec![Value::Null, Value::Int(1)],
            ],
        };
        let s = r.to_string();
        assert!(s.contains("name"), "{s}");
        assert!(s.contains("'Jane'"), "{s}");
        assert!(s.contains("(2 rows)"), "{s}");
    }
}
