//! Row-locality analysis and worker-side evaluation for deterministic
//! intra-query parallelism.
//!
//! Partitioned dispatch itself lives in the exchange operator
//! ([`crate::exec::exchange`]): every parallel phase plans an
//! `Exchange`, which owns the gate ([`PAR_THRESHOLD`]), the contiguous
//! partitioning on the process-wide [`setrules_exec::WorkerPool`], the
//! partition-order merge, and the parallelism counters. This module
//! keeps what the exchange's *callers* need to decide whether an
//! expression may cross threads at all, and to evaluate it on a worker:
//!
//! # Row-locality (the serial-fallback rule)
//!
//! Workers never see a [`crate::QueryCtx`]: the shared subquery memo
//! (`RefCell`), the stats cell (`Cell`), and the plan cache are all
//! single-threaded interior mutability. A predicate may cross threads
//! only when it is *row-local* ([`is_rowlocal`]) — compiled to
//! slots-only form with every slot addressing the innermost scope (no
//! correlated/outer references, no subqueries, no interpreter fallback).
//! Anything else runs serially; when such a phase was big enough to
//! exchange otherwise, the caller counts a `serial_fallbacks` tick
//! (`Exchange::serial_fallback`) so the fallback is observable.

use setrules_exec::WorkerPool;
use setrules_sql::ast::BinaryOp;
use setrules_storage::Value;

use crate::compile::CompiledExpr;
use crate::error::QueryError;
use crate::eval;

/// Minimum number of items (rows, combinations, build/probe entries) a
/// phase must have before it is worth handing to the pool — the size half
/// of the `Exchange::plan` gate. Small inputs — including every golden
/// paper example — stay on the exact serial path.
pub(crate) const PAR_THRESHOLD: usize = 64;

/// Minimum partition size: below this, extra partitions cost more in
/// scheduling than they save in work.
pub(crate) const MIN_CHUNK: usize = 16;

/// The process-wide worker pool.
pub(crate) fn pool() -> &'static WorkerPool {
    WorkerPool::global()
}

/// Whether `e` may be evaluated on a worker with nothing but the current
/// row(s): slots-only (no subqueries, no interpreter fallback) and every
/// slot addressing the innermost scope (`level_up == 0`).
pub(crate) fn is_rowlocal(e: &CompiledExpr) -> bool {
    if !e.slots_only() {
        return false;
    }
    let mut local = true;
    e.for_each_slot(&mut |level_up, _, _| {
        if level_up != 0 {
            local = false;
        }
    });
    local
}

/// Evaluate a row-local expression against the innermost-scope frames
/// (`frames[f][c]` is slot `(0, f, c)`).
///
/// This mirrors [`crate::compile::eval_compiled`] node for node —
/// including Kleene short-circuiting of `AND`/`OR` — restricted to the
/// variants [`is_rowlocal`] admits, so a row-local evaluation on a worker
/// returns bit-identical values and errors to the serial path.
pub(crate) fn eval_rowlocal(
    e: &CompiledExpr,
    frames: &[&[Value]],
) -> Result<Value, QueryError> {
    match e {
        CompiledExpr::Const(v) => Ok(v.clone()),
        CompiledExpr::Slot { level_up, frame, col } => frames
            .get(*frame)
            .and_then(|f| f.get(*col))
            .cloned()
            .ok_or_else(|| {
                QueryError::Type(format!(
                    "internal: row-local slot ({level_up}, {frame}, {col}) \
                     out of range for {} frames",
                    frames.len()
                ))
            }),
        CompiledExpr::Unary { op, expr } => {
            let v = eval_rowlocal(expr, frames)?;
            eval::apply_unary(*op, &v)
        }
        CompiledExpr::Binary { left, op, right } => {
            if matches!(op, BinaryOp::And | BinaryOp::Or) {
                let l = eval::truth(&eval_rowlocal(left, frames)?)?;
                match (op, l) {
                    (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
                    (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
                    _ => {}
                }
                let r = eval::truth(&eval_rowlocal(right, frames)?)?;
                let out = match op {
                    BinaryOp::And => eval::kleene_and(l, r),
                    _ => eval::kleene_or(l, r),
                };
                return Ok(out.map_or(Value::Null, Value::Bool));
            }
            let l = eval_rowlocal(left, frames)?;
            let r = eval_rowlocal(right, frames)?;
            eval::apply_binary(&l, *op, &r)
        }
        CompiledExpr::IsNull { expr, negated } => {
            let v = eval_rowlocal(expr, frames)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        CompiledExpr::InList { expr, list, negated } => {
            let needle = eval_rowlocal(expr, frames)?;
            let mut vals = Vec::with_capacity(list.len());
            for item in list {
                vals.push(eval_rowlocal(item, frames)?);
            }
            eval::in_semantics(&needle, vals.iter(), *negated)
        }
        CompiledExpr::Between { expr, low, high, negated } => {
            let v = eval_rowlocal(expr, frames)?;
            let lo = eval_rowlocal(low, frames)?;
            let hi = eval_rowlocal(high, frames)?;
            eval::between_semantics(&v, &lo, &hi, *negated)
        }
        CompiledExpr::Like { expr, pattern, escape, negated } => {
            let v = eval_rowlocal(expr, frames)?;
            let p = eval_rowlocal(pattern, frames)?;
            let esc = match escape {
                Some(ex) => Some(eval_rowlocal(ex, frames)?),
                None => None,
            };
            eval::like_semantics(&v, &p, esc.as_ref(), *negated)
        }
        CompiledExpr::InSubquery { .. }
        | CompiledExpr::Exists { .. }
        | CompiledExpr::ScalarSubquery(_)
        | CompiledExpr::Interp(_) => Err(QueryError::Type(
            "internal: non-row-local expression reached a pool worker".into(),
        )),
    }
}

/// [`eval_rowlocal`] with SQL `where` truth semantics (row qualifies only
/// on *true*).
pub(crate) fn eval_rowlocal_predicate(
    e: &CompiledExpr,
    frames: &[&[Value]],
) -> Result<bool, QueryError> {
    let v = eval_rowlocal(e, frames)?;
    Ok(eval::truth(&v)? == Some(true))
}

// The parallel phases share plain references across threads; keep the
// compiler honest about the types that must stay `Send + Sync`.
#[allow(dead_code)]
fn assert_shared_types_are_sync() {
    fn sync<T: Send + Sync>() {}
    sync::<Value>();
    sync::<CompiledExpr>();
    sync::<QueryError>();
    sync::<setrules_storage::Database>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::{Bindings, Frame};
    use crate::compile::{compile, eval_compiled, Layout, LayoutFrame};
    use crate::ctx::QueryCtx;
    use setrules_sql::parse_expr;
    use setrules_storage::Database;
    use std::sync::Arc;

    fn frames_layout() -> (Layout, Arc<Vec<String>>) {
        let cols: Arc<Vec<String>> =
            Arc::new(vec!["a".into(), "b".into(), "name".into()]);
        let mut layout = Layout::new();
        layout.push_level(vec![LayoutFrame { name: "t".into(), columns: Arc::clone(&cols) }]);
        (layout, cols)
    }

    #[test]
    fn rowlocal_eval_matches_compiled_eval() {
        let (layout, cols) = frames_layout();
        let db = Database::new();
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Float(2.5), Value::Text("ab".into())],
            vec![Value::Int(-3), Value::Float(f64::NAN), Value::Null],
            vec![Value::Null, Value::Float(-0.0), Value::Text("%x_".into())],
            vec![Value::Int(0), Value::Float(1e300), Value::Text("".into())],
        ];
        let exprs = [
            "a + 1 > 0 and b < 10.0",
            "a is null or name like 'a%'",
            "a in (1, -3, null)",
            "b between -1.0 and 3.0",
            "not (a = 0) or name = ''",
            "a / 0 = 1",
            "b + a > 0.0",
        ];
        for src in exprs {
            let ast = parse_expr(src).expect("parse");
            let ce = compile(&ast, &layout);
            assert!(is_rowlocal(&ce), "{src} should be row-local");
            for row in &rows {
                let serial = {
                    let mut b = Bindings::new();
                    b.push_level(vec![Frame {
                        name: "t".into(),
                        columns: Arc::clone(&cols),
                        row: row.clone(),
                    }]);
                    eval_compiled(QueryCtx::plain(&db), &mut b, None, &ce)
                };
                let local = eval_rowlocal(&ce, &[row.as_slice()]);
                match (serial, local) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "{src} on {row:?}"),
                    (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "{src}"),
                    (a, b) => panic!("{src} diverged on {row:?}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn subqueries_are_not_rowlocal() {
        let (layout, _) = frames_layout();
        let ast = parse_expr("a in (select a from t)").expect("parse");
        assert!(!is_rowlocal(&compile(&ast, &layout)));
        let agg = parse_expr("count(*) > 0").expect("parse");
        assert!(!is_rowlocal(&compile(&agg, &layout)));
    }

}
