//! `explain`: report the access path chosen for each `from` item of a
//! select, and — for multi-item `from` clauses — the greedy join order the
//! compiled executor would run. This is the observable face of the
//! planner, and the evidence behind the paper's claim (§1) that relational
//! optimization applies to rule bodies unchanged.

use std::fmt::Write as _;
use std::ops::Bound;
use std::sync::Arc;

use setrules_sql::ast::{Expr, SelectStmt, TableSource, TransitionKind};
use setrules_storage::{Database, Value};

use crate::compile::{Layout, LayoutFrame};
use crate::ctx::QueryCtx;
use crate::planner::{build_join_plan, choose_access, equi_join_edges, scan_handles, Access};

/// A key interval in mathematical notation: `[4, 6]`, `(5, +inf)`. The
/// `Excluded(NULL)` lower bound the planner uses to skip the NULL bucket
/// means "unbounded below over the column's domain", so it prints as
/// `(-inf`.
fn describe_interval(lo: &Bound<Value>, hi: &Bound<Value>) -> String {
    let lo = match lo {
        Bound::Excluded(Value::Null) | Bound::Unbounded => "(-inf".to_string(),
        Bound::Included(v) => format!("[{v}"),
        Bound::Excluded(v) => format!("({v}"),
    };
    let hi = match hi {
        Bound::Included(v) => format!("{v}]"),
        Bound::Excluded(v) => format!("{v})"),
        Bound::Unbounded => "+inf)".to_string(),
    };
    format!("{lo}, {hi}")
}

/// Describe whether a rule condition is incrementally evaluable —
/// reporting the per-term materialized state the engine would maintain —
/// or why it falls back to full re-scan. Runs the same analysis the
/// engine caches per rule (`licensed` mirrors the rule's transition
/// licence set).
pub fn explain_condition(
    db: &Database,
    cond: &Expr,
    licensed: &dyn Fn(TransitionKind, &str, Option<&str>) -> bool,
) -> String {
    match crate::incremental::analyze(db, cond, licensed) {
        Ok(plan) => {
            let n = plan.terms.len();
            format!("incremental ({n} term{})\n{}", if n == 1 { "" } else { "s" }, plan.describe())
        }
        Err(reason) => format!("full re-scan [{}] ({reason})\n", reason.label()),
    }
}

/// Describe how each `from` item of `stmt` would be scanned, and how a
/// multi-item `from` would be joined.
pub fn explain_select(ctx: QueryCtx<'_>, stmt: &SelectStmt) -> String {
    let mut out = String::new();
    let sole = stmt.from.len() == 1;
    for tref in &stmt.from {
        let binding = tref.binding_name();
        match &tref.source {
            TableSource::Named(name) => match ctx.db.table_id(name) {
                Ok(tid) => {
                    let access = choose_access(ctx, tid, binding, sole, stmt.predicate.as_ref());
                    let desc = match access {
                        Access::FullScan => format!("seq scan ({} rows)", ctx.db.table(tid).len()),
                        Access::IndexEq { column, value } => format!(
                            "index probe on {}.{} = {}",
                            name,
                            ctx.db.schema(tid).column_name(column),
                            value
                        ),
                        Access::IndexIn { column, ref values } => format!(
                            "index multi-probe on {}.{} in ({})",
                            name,
                            ctx.db.schema(tid).column_name(column),
                            values
                                .iter()
                                .map(|v| v.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                        Access::IndexRange { column, ref lo, ref hi } => format!(
                            "index range scan on {}.{} over {}",
                            name,
                            ctx.db.schema(tid).column_name(column),
                            describe_interval(lo, hi)
                        ),
                        Access::Empty => "empty (predicate unsatisfiable)".to_string(),
                    };
                    let _ = writeln!(out, "{binding}: {desc}");
                }
                Err(_) => {
                    let _ = writeln!(out, "{binding}: unknown table '{name}'");
                }
            },
            TableSource::Transition { kind, table, column } => {
                let _ = writeln!(
                    out,
                    "{binding}: transition table {}",
                    crate::provider::describe(*kind, table, column.as_deref())
                );
            }
        }
    }

    // Sort-elision report: when the executor would answer `order by` in
    // ordered-index order (and short-circuit `limit`) instead of sorting.
    if let Some((tid, oc, _)) = crate::select::elidable_order_column(ctx, stmt) {
        if let TableSource::Named(name) = &stmt.from[0].source {
            let _ = writeln!(
                out,
                "order by: elided via ordered index on {}.{}",
                name,
                ctx.db.schema(tid).column_name(oc)
            );
        }
    }

    // Top-K report: an ordered, limited select that cannot elide its sort
    // is eligible for the partial-selection fast path (see the order/limit
    // step of the select executor); it engages at run time when the limit
    // is small relative to the result.
    if !stmt.order_by.is_empty()
        && stmt.limit.is_some_and(|k| k > 0)
        && crate::select::elidable_order_column(ctx, stmt).is_none()
    {
        let k = stmt.limit.expect("checked above");
        let _ = writeln!(out, "limit: top-{k} selection eligible (engages when {k} < rows / 4)");
    }

    // Join-order report: the same greedy planning the compiled executor
    // performs, over estimated per-item cardinalities (index probes are
    // estimated from the index buckets; transition tables are unknown at
    // plan time and estimated as 0, keeping them early in the order —
    // which is where rule conditions want them).
    if stmt.from.len() > 1 {
        let mut frames = Vec::with_capacity(stmt.from.len());
        let mut cols: Vec<Arc<Vec<String>>> = Vec::with_capacity(stmt.from.len());
        let mut types = Vec::with_capacity(stmt.from.len());
        let mut cards = Vec::with_capacity(stmt.from.len());
        for tref in &stmt.from {
            let name = match &tref.source {
                TableSource::Named(n) => n,
                TableSource::Transition { table, .. } => table,
            };
            let Ok(tid) = ctx.db.table_id(name) else { return out };
            let schema = ctx.db.schema(tid);
            let columns =
                Arc::new(schema.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
            cols.push(Arc::clone(&columns));
            frames.push(LayoutFrame { name: tref.binding_name().to_string(), columns });
            types.push(schema.columns.iter().map(|c| c.ty).collect::<Vec<_>>());
            cards.push(match &tref.source {
                TableSource::Transition { .. } => 0,
                TableSource::Named(_) => {
                    let access =
                        choose_access(ctx, tid, tref.binding_name(), sole, stmt.predicate.as_ref());
                    match &access {
                        Access::Empty => 0,
                        Access::FullScan => ctx.db.table(tid).len(),
                        Access::IndexEq { .. }
                        | Access::IndexIn { .. }
                        | Access::IndexRange { .. } => scan_handles(ctx.db, tid, &access).len(),
                    }
                }
            });
        }
        let mut layout = Layout::new();
        layout.push_level(frames);
        let edges = equi_join_edges(stmt.predicate.as_ref(), &layout, &types);
        let plan = build_join_plan(&cards, &edges);
        let bname = |i: usize| stmt.from[i].binding_name();
        let mut line = format!("join order: {} ({} rows)", bname(plan.first), cards[plan.first]);
        for step in &plan.steps {
            let kind = if step.edges.is_empty() {
                "cross".to_string()
            } else {
                let keys = step
                    .edges
                    .iter()
                    .map(|&(pi, pc, nc)| {
                        format!(
                            "{}.{} = {}.{}",
                            bname(step.item),
                            cols[step.item][nc],
                            bname(pi),
                            cols[pi][pc]
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("hash on {keys}")
            };
            let _ = write!(line, " -> {} ({}, {} rows)", bname(step.item), kind, cards[step.item]);
        }
        let _ = writeln!(out, "{line}");
    }

    // Operator-tree report: the chain the statement lowers to, in pull
    // order. Derived from the same gate functions the lowering driver
    // uses (`plan_ops`), so this line cannot drift from executed code.
    // Absent when a `from` item is an unknown table (execution would
    // error before lowering).
    if let Some(ops) = crate::exec::plan_ops(ctx, stmt) {
        let _ = writeln!(out, "plan: {}", ops.join(" -> "));
    }

    // Exchange-eligibility report: the stages of the plan above that a
    // multi-threaded run would partition onto the worker pool, from the
    // same gates the operators use (see `crate::exec::parallel_stages`).
    // Absent when nothing is eligible, so serial-only plans stay
    // byte-identical to their pre-exchange form.
    if let Some(stages) = crate::exec::parallel_stages(ctx, stmt) {
        let _ = writeln!(out, "parallel: {}", stages.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_sql::ast::{DmlOp, Statement};
    use setrules_sql::parse_statement;
    use setrules_storage::{paper_example_schemas, ColumnId, Database};

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Dml(DmlOp::Select(s)) => s,
            _ => panic!(),
        }
    }

    #[test]
    fn explains_scan_vs_probe() {
        let mut db = Database::new();
        let (emp, _) = paper_example_schemas();
        let t = db.create_table(emp).unwrap();
        let ctx = QueryCtx::plain(&db);
        let plan = explain_select(ctx, &sel("select * from emp where dept_no = 5"));
        assert!(plan.contains("seq scan"), "{plan}");

        db.create_index(t, ColumnId(3)).unwrap();
        let ctx = QueryCtx::plain(&db);
        let plan = explain_select(ctx, &sel("select * from emp where dept_no = 5"));
        assert!(plan.contains("index probe on emp.dept_no = 5"), "{plan}");

        let plan = explain_select(ctx, &sel("select * from emp where dept_no = NULL"));
        assert!(plan.contains("unsatisfiable"), "{plan}");
    }

    #[test]
    fn explains_multi_probe() {
        let mut db = Database::new();
        let (emp, _) = paper_example_schemas();
        let t = db.create_table(emp).unwrap();
        db.create_index(t, ColumnId(3)).unwrap();
        let ctx = QueryCtx::plain(&db);
        let plan = explain_select(ctx, &sel("select * from emp where dept_no in (3, 5)"));
        assert!(plan.contains("index multi-probe on emp.dept_no in (3, 5)"), "{plan}");
        // A hash index has no key order: `between` stays a seq scan.
        let plan = explain_select(ctx, &sel("select * from emp where dept_no between 4 and 6"));
        assert!(plan.contains("seq scan"), "{plan}");
    }

    #[test]
    fn explains_range_scan() {
        let mut db = Database::new();
        let (emp, _) = paper_example_schemas();
        let t = db.create_table(emp).unwrap();
        db.create_index_of(t, ColumnId(3), setrules_storage::IndexKind::Ordered).unwrap();
        let ctx = QueryCtx::plain(&db);
        let plan = explain_select(ctx, &sel("select * from emp where dept_no between 4 and 6"));
        assert!(plan.contains("index range scan on emp.dept_no over [4, 6]"), "{plan}");
        let plan = explain_select(ctx, &sel("select * from emp where dept_no > 5"));
        assert!(plan.contains("index range scan on emp.dept_no over (5, +inf)"), "{plan}");
        let plan = explain_select(ctx, &sel("select * from emp where dept_no <= 9"));
        assert!(plan.contains("index range scan on emp.dept_no over (-inf, 9]"), "{plan}");
    }

    #[test]
    fn explains_sort_elision() {
        let mut db = Database::new();
        let (emp, _) = paper_example_schemas();
        let t = db.create_table(emp).unwrap();
        db.create_index_of(t, ColumnId(2), setrules_storage::IndexKind::Ordered).unwrap();
        let ctx = QueryCtx::plain(&db);
        let plan = explain_select(ctx, &sel("select name from emp order by salary limit 3"));
        assert!(plan.contains("order by: elided via ordered index on emp.salary"), "{plan}");
        // A second order-by key forces a real sort.
        let plan = explain_select(ctx, &sel("select name from emp order by salary, name"));
        assert!(!plan.contains("elided"), "{plan}");
        // So does ordering by a column with only a hash index.
        let plan = explain_select(ctx, &sel("select name from emp order by dept_no"));
        assert!(!plan.contains("elided"), "{plan}");
    }

    #[test]
    fn explains_topk_eligibility() {
        let mut db = Database::new();
        let (emp, _) = paper_example_schemas();
        let t = db.create_table(emp).unwrap();
        let ctx = QueryCtx::plain(&db);
        // Ordered + limited, no ordered index: top-K eligible.
        let plan = explain_select(ctx, &sel("select name from emp order by salary limit 3"));
        assert!(plan.contains("limit: top-3 selection eligible"), "{plan}");
        // No limit: a full sort, no top-K line.
        let plan = explain_select(ctx, &sel("select name from emp order by salary"));
        assert!(!plan.contains("top-"), "{plan}");
        // With an ordered index the sort is elided instead.
        db.create_index_of(t, ColumnId(2), setrules_storage::IndexKind::Ordered).unwrap();
        let ctx = QueryCtx::plain(&db);
        let plan = explain_select(ctx, &sel("select name from emp order by salary limit 3"));
        assert!(plan.contains("elided") && !plan.contains("top-"), "{plan}");
    }

    #[test]
    fn explains_join_order() {
        let mut db = Database::new();
        let (emp, dept) = paper_example_schemas();
        db.create_table(emp).unwrap();
        db.create_table(dept).unwrap();
        let mut exec = |sql: &str| {
            let Statement::Dml(op) = parse_statement(sql).unwrap() else { panic!() };
            crate::execute_op(&mut db, &crate::provider::NoTransitionTables, &op).unwrap()
        };
        exec("insert into emp values ('a', 1, 100.0, 1), ('b', 2, 300.0, 2)");
        exec("insert into dept values (1, 1)");
        let ctx = QueryCtx::plain(&db);
        // dept (1 row) is smaller, so the join starts there and hashes emp
        // onto it.
        let plan = explain_select(
            ctx,
            &sel("select name from emp, dept where emp.dept_no = dept.dept_no"),
        );
        assert!(
            plan.contains("join order: dept (1 rows) -> emp (hash on emp.dept_no = dept.dept_no, 2 rows)"),
            "{plan}"
        );
        // No connecting conjunct: a cross step.
        let plan = explain_select(ctx, &sel("select name from emp, dept"));
        assert!(plan.contains("(cross, 2 rows)"), "{plan}");
    }

    #[test]
    fn explains_transition_tables() {
        let mut db = Database::new();
        let (emp, _) = paper_example_schemas();
        db.create_table(emp).unwrap();
        let ctx = QueryCtx::plain(&db);
        let plan = explain_select(ctx, &sel("select * from new updated emp.salary"));
        assert!(plan.contains("transition table new updated emp.salary"), "{plan}");
    }
}
