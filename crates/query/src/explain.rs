//! `explain`: report the access path chosen for each `from` item of a
//! select — the observable face of the planner, and the evidence behind
//! the paper's claim (§1) that relational optimization applies to rule
//! bodies unchanged.

use std::fmt::Write as _;

use setrules_sql::ast::{SelectStmt, TableSource};

use crate::ctx::QueryCtx;
use crate::planner::{choose_access, Access};

/// Describe how each `from` item of `stmt` would be scanned.
pub fn explain_select(ctx: QueryCtx<'_>, stmt: &SelectStmt) -> String {
    let mut out = String::new();
    let sole = stmt.from.len() == 1;
    for tref in &stmt.from {
        let binding = tref.binding_name();
        match &tref.source {
            TableSource::Named(name) => match ctx.db.table_id(name) {
                Ok(tid) => {
                    let access = choose_access(ctx, tid, binding, sole, stmt.predicate.as_ref());
                    let desc = match access {
                        Access::FullScan => format!("seq scan ({} rows)", ctx.db.table(tid).len()),
                        Access::IndexEq { column, value } => format!(
                            "index probe on {}.{} = {}",
                            name,
                            ctx.db.schema(tid).column_name(column),
                            value
                        ),
                        Access::Empty => "empty (predicate unsatisfiable)".to_string(),
                    };
                    let _ = writeln!(out, "{binding}: {desc}");
                }
                Err(_) => {
                    let _ = writeln!(out, "{binding}: unknown table '{name}'");
                }
            },
            TableSource::Transition { kind, table, column } => {
                let _ = writeln!(
                    out,
                    "{binding}: transition table {}",
                    crate::provider::describe(*kind, table, column.as_deref())
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_sql::ast::{DmlOp, Statement};
    use setrules_sql::parse_statement;
    use setrules_storage::{paper_example_schemas, ColumnId, Database};

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Dml(DmlOp::Select(s)) => s,
            _ => panic!(),
        }
    }

    #[test]
    fn explains_scan_vs_probe() {
        let mut db = Database::new();
        let (emp, _) = paper_example_schemas();
        let t = db.create_table(emp).unwrap();
        let ctx = QueryCtx::plain(&db);
        let plan = explain_select(ctx, &sel("select * from emp where dept_no = 5"));
        assert!(plan.contains("seq scan"), "{plan}");

        db.create_index(t, ColumnId(3)).unwrap();
        let ctx = QueryCtx::plain(&db);
        let plan = explain_select(ctx, &sel("select * from emp where dept_no = 5"));
        assert!(plan.contains("index probe on emp.dept_no = 5"), "{plan}");

        let plan = explain_select(ctx, &sel("select * from emp where dept_no = NULL"));
        assert!(plan.contains("unsatisfiable"), "{plan}");
    }

    #[test]
    fn explains_transition_tables() {
        let mut db = Database::new();
        let (emp, _) = paper_example_schemas();
        db.create_table(emp).unwrap();
        let ctx = QueryCtx::plain(&db);
        let plan = explain_select(ctx, &sel("select * from new updated emp.salary"));
        assert!(plan.contains("transition table new updated emp.salary"), "{plan}");
    }
}
