//! DML execution with affected-set capture (paper §2.1).
//!
//! Every operation runs in two phases:
//!
//! 1. **Plan** (immutable): evaluate predicates and expressions against the
//!    pre-operation state, producing the exact set of insertions, deletions,
//!    or per-tuple assignments. This matches the paper's operational
//!    definitions ("the tuples … satisfying the given predicate are
//!    identified", then changed) and gives correct set-oriented semantics —
//!    an update cannot observe its own writes.
//! 2. **Apply** (mutable): perform the mutations, capturing old values.
//!
//! The result of an operation is an [`OpEffect`]: the paper's *affected
//! set*, enriched with the old tuple values the rule system needs for its
//! transition information (§4.3) — so no historical database states are
//! ever retained.
//!
//! Reads — the `select` entry points here, the identification scans of
//! delete/update, and `insert … (select …)` sources — all lower through
//! the batched operator tree in [`crate::exec`] (see
//! `docs/query-pipeline.md`); this module owns only the mutation phase
//! and the effect capture around it.

use setrules_sql::ast::{DeleteStmt, DmlOp, InsertSource, InsertStmt, SelectStmt, UpdateStmt};
use setrules_storage::{ColumnId, Database, TableId, Tuple, TupleHandle, Value};

use crate::bindings::{Bindings, Frame, Level};
use crate::compile::{compile_cached, eval_compiled_predicate, Layout, LayoutFrame, PlanCache};
use crate::ctx::{ExecMode, QueryCtx};
use crate::error::QueryError;
use crate::eval::{eval_expr, eval_predicate};
use crate::exec::exchange::Exchange;
use crate::planner::{choose_access, scan_handles};
use crate::provider::TransitionTableProvider;
use crate::planner::Access;
use crate::refs::referenced_columns;
use crate::relation::Relation;
use crate::select::run_select_traced;
use crate::stats::{self, OpStatsCell, StatsCell};

/// The affected set of one executed operation, with captured old values.
#[derive(Debug, Clone, PartialEq)]
pub enum OpEffect {
    /// Tuples inserted into `table` (values live in the database).
    Insert {
        /// Target table.
        table: TableId,
        /// Handles of the inserted tuples.
        handles: Vec<TupleHandle>,
    },
    /// Tuples deleted from `table`, with their final values.
    Delete {
        /// Target table.
        table: TableId,
        /// Deleted handles and the tuples' values at deletion time.
        tuples: Vec<(TupleHandle, Tuple)>,
    },
    /// Tuples updated in `table`. Per the paper, a tuple/column pair is
    /// affected even if the assigned value equals the old one.
    Update {
        /// Target table.
        table: TableId,
        /// Updated handle, the columns assigned, and the tuple's
        /// pre-update value.
        tuples: Vec<(TupleHandle, Vec<ColumnId>, Tuple)>,
    },
    /// A data retrieval (§5.1 extension): the tuples/columns read and the
    /// query output.
    Select {
        /// `(table, handle, columns)` for every stored tuple that
        /// contributed to a result row; `None` columns = all columns.
        reads: Vec<(TableId, TupleHandle, Option<Vec<ColumnId>>)>,
        /// The materialized result.
        output: Relation,
    },
}

impl OpEffect {
    /// Number of affected tuples (result rows for `select`).
    pub fn cardinality(&self) -> usize {
        match self {
            OpEffect::Insert { handles, .. } => handles.len(),
            OpEffect::Delete { tuples, .. } => tuples.len(),
            OpEffect::Update { tuples, .. } => tuples.len(),
            OpEffect::Select { output, .. } => output.len(),
        }
    }
}

/// Options for the `_ext` entry points: stats sink, execution mode,
/// plan cache, and the thread budget for deterministic intra-query
/// parallelism (see [`crate::parallel`]).
#[derive(Clone, Copy)]
pub struct ExecOpts<'a> {
    /// Optional statistics accumulator.
    pub stats: Option<&'a StatsCell>,
    /// Compiled or interpreted execution.
    pub mode: ExecMode,
    /// Optional plan cache (the rule engine attaches one per rule).
    pub plans: Option<&'a PlanCache>,
    /// Thread budget for read-only query phases (clamped to at least 1;
    /// `1` means fully serial execution).
    pub threads: usize,
    /// Optional per-operator counter map: every operator of the lowered
    /// [`crate::exec`] tree attributes its batches and row flow here, on
    /// a side channel separate from the aggregate `stats`.
    pub op_stats: Option<&'a OpStatsCell>,
}

impl Default for ExecOpts<'_> {
    fn default() -> Self {
        ExecOpts { stats: None, mode: ExecMode::default(), plans: None, threads: 1, op_stats: None }
    }
}

/// Execute one SQL operation against the database, returning its effect.
pub fn execute_op(
    db: &mut Database,
    virt: &dyn TransitionTableProvider,
    op: &DmlOp,
) -> Result<OpEffect, QueryError> {
    execute_op_with_stats(db, virt, op, None)
}

/// [`execute_op`] with an optional [`StatsCell`] accumulating the
/// execution work performed.
pub fn execute_op_with_stats(
    db: &mut Database,
    virt: &dyn TransitionTableProvider,
    op: &DmlOp,
    st: Option<&StatsCell>,
) -> Result<OpEffect, QueryError> {
    execute_op_with_opts(db, virt, op, st, ExecMode::default(), None)
}

/// [`execute_op_with_stats`] with an explicit execution mode and an
/// optional [`PlanCache`] (the rule engine attaches one per rule so
/// repeated firings compile their statements once).
pub fn execute_op_with_opts(
    db: &mut Database,
    virt: &dyn TransitionTableProvider,
    op: &DmlOp,
    st: Option<&StatsCell>,
    mode: ExecMode,
    plans: Option<&PlanCache>,
) -> Result<OpEffect, QueryError> {
    execute_op_ext(db, virt, op, &ExecOpts { stats: st, mode, plans, ..Default::default() })
}

/// [`execute_op_with_opts`] generalized over [`ExecOpts`], adding the
/// thread budget for deterministic intra-query parallelism. Only the
/// read-only phases (identification scans, select evaluation) ever use
/// more than one thread; mutation is always applied serially.
pub fn execute_op_ext(
    db: &mut Database,
    virt: &dyn TransitionTableProvider,
    op: &DmlOp,
    opts: &ExecOpts,
) -> Result<OpEffect, QueryError> {
    match op {
        DmlOp::Insert(s) => execute_insert(db, virt, s, opts),
        DmlOp::Delete(s) => execute_delete(db, virt, s, opts),
        DmlOp::Update(s) => execute_update(db, virt, s, opts),
        DmlOp::Select(s) => execute_select_op(db, virt, s, opts),
    }
}

/// Run a read-only `select` (no effect tracking).
pub fn execute_query(
    db: &Database,
    virt: &dyn TransitionTableProvider,
    stmt: &SelectStmt,
) -> Result<Relation, QueryError> {
    execute_query_with_stats(db, virt, stmt, None)
}

/// [`execute_query`] with an optional [`StatsCell`] accumulating the
/// execution work performed.
pub fn execute_query_with_stats(
    db: &Database,
    virt: &dyn TransitionTableProvider,
    stmt: &SelectStmt,
    st: Option<&StatsCell>,
) -> Result<Relation, QueryError> {
    execute_query_with_opts(db, virt, stmt, st, ExecMode::default(), None)
}

/// [`execute_query_with_stats`] with an explicit execution mode and an
/// optional [`PlanCache`].
pub fn execute_query_with_opts(
    db: &Database,
    virt: &dyn TransitionTableProvider,
    stmt: &SelectStmt,
    st: Option<&StatsCell>,
    mode: ExecMode,
    plans: Option<&PlanCache>,
) -> Result<Relation, QueryError> {
    execute_query_ext(db, virt, stmt, &ExecOpts { stats: st, mode, plans, ..Default::default() })
}

/// [`execute_query_with_opts`] generalized over [`ExecOpts`], adding the
/// thread budget for deterministic intra-query parallelism.
pub fn execute_query_ext(
    db: &Database,
    virt: &dyn TransitionTableProvider,
    stmt: &SelectStmt,
    opts: &ExecOpts,
) -> Result<Relation, QueryError> {
    let cache = crate::SubqueryCache::new();
    let ctx = QueryCtx::with_provider(db, virt)
        .with_cache(&cache)
        .with_stats(opts.stats)
        .with_mode(opts.mode)
        .with_plans(opts.plans)
        .with_threads(opts.threads)
        .with_op_stats(opts.op_stats);
    crate::select::run_select(ctx, stmt, &mut Bindings::new())
}

/// Run the apply phase of a statement under a statement-level savepoint:
/// if any row fails (type error, injected fault, …), the database is
/// rolled back to the pre-statement state before the error propagates, so
/// a multi-row statement never leaves partial effects inside an
/// otherwise-live transaction (see `docs/robustness.md`).
fn apply_atomically<T>(
    db: &mut Database,
    apply: impl FnOnce(&mut Database) -> Result<T, QueryError>,
) -> Result<T, QueryError> {
    let sp = db.mark();
    match apply(db) {
        Ok(v) => Ok(v),
        Err(e) => {
            // The mark was taken on this same log and nothing commits
            // mid-statement, so it is always still valid.
            db.rollback_to(sp).expect("statement savepoint is valid");
            Err(e)
        }
    }
}

fn execute_insert(
    db: &mut Database,
    virt: &dyn TransitionTableProvider,
    stmt: &InsertStmt,
    opts: &ExecOpts,
) -> Result<OpEffect, QueryError> {
    let table = db.table_id(&stmt.table)?;
    let arity = db.schema(table).arity();

    // Phase 1: compute the rows to insert.
    let cache = crate::SubqueryCache::new();
    let rows: Vec<Tuple> = {
        let ctx = QueryCtx::with_provider(db, virt)
            .with_cache(&cache)
            .with_stats(opts.stats)
            .with_mode(opts.mode)
            .with_plans(opts.plans)
            .with_threads(opts.threads);
        match &stmt.source {
            InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    if row.len() != arity {
                        return Err(QueryError::InsertArity {
                            table: stmt.table.clone(),
                            expected: arity,
                            got: row.len(),
                        });
                    }
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        vals.push(eval_expr(ctx, &mut Bindings::new(), None, e)?);
                    }
                    out.push(Tuple(vals));
                }
                out
            }
            InsertSource::Select(sel) => {
                let rel = run_select_traced(ctx, sel, &mut Bindings::new(), None)?;
                if rel.columns.len() != arity {
                    return Err(QueryError::InsertArity {
                        table: stmt.table.clone(),
                        expected: arity,
                        got: rel.columns.len(),
                    });
                }
                rel.rows.into_iter().map(Tuple).collect()
            }
        }
    };

    // Phase 2: insert (statement-atomic).
    let handles = apply_atomically(db, |db| {
        let mut handles = Vec::with_capacity(rows.len());
        for t in rows {
            handles.push(db.insert(table, t)?);
        }
        Ok(handles)
    })?;
    Ok(OpEffect::Insert { table, handles })
}

/// Identify the tuples of `table` satisfying `predicate` (phase 1 of
/// delete/update). Returns matching handles in handle order. In compiled
/// mode the predicate is lowered once (through the plan cache when one is
/// attached) instead of resolving names per scanned row.
fn identify(
    db: &Database,
    virt: &dyn TransitionTableProvider,
    table: TableId,
    table_name: &str,
    predicate: Option<&setrules_sql::ast::Expr>,
    opts: &ExecOpts,
) -> Result<Vec<TupleHandle>, QueryError> {
    let st = opts.stats;
    let cache = crate::SubqueryCache::new();
    let ctx = QueryCtx::with_provider(db, virt)
        .with_cache(&cache)
        .with_stats(st)
        .with_mode(opts.mode)
        .with_plans(opts.plans)
        .with_threads(opts.threads);
    let schema = db.schema(table);
    let columns =
        std::sync::Arc::new(schema.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
    let access = choose_access(ctx, table, table_name, true, predicate);
    stats::bump(st, |s| match access {
        Access::FullScan => s.full_scans += 1,
        Access::IndexEq { .. } | Access::IndexIn { .. } => s.index_lookups += 1,
        Access::IndexRange { .. } => s.range_scans += 1,
        Access::Empty => s.empty_scans += 1,
    });
    let compiled = match (predicate, opts.mode) {
        (Some(p), ExecMode::Compiled) => {
            let mut layout = Layout::new();
            layout.push_level(vec![LayoutFrame {
                name: table_name.to_string(),
                columns: std::sync::Arc::clone(&columns),
            }]);
            Some(compile_cached(ctx, p, &layout))
        }
        _ => None,
    };
    let mut bindings = Bindings::new();
    let mut out = Vec::new();
    let handles = scan_handles(db, table, &access);
    if matches!(access, Access::IndexRange { .. }) {
        let skipped = (db.table(table).len() - handles.len()) as u64;
        stats::bump(st, |s| s.range_rows_skipped += skipped);
    }

    // Parallel identification: with a row-local compiled predicate the
    // scan exchanges exactly like the select scan (see
    // [`crate::exec::exchange`]); merge order keeps handles, counters,
    // and the earliest error bit-identical to the serial walk below.
    if let Some(ex) = Exchange::plan(ctx, handles.len()) {
        if let Some(cp) = compiled.as_ref().filter(|cp| crate::parallel::is_rowlocal(cp)) {
            let handles_ref = &handles;
            let verdicts = ex.judge(ctx, |i| {
                let tuple = db.get(table, handles_ref[i]).expect("scanned handle is live");
                Ok(crate::parallel::eval_rowlocal_predicate(cp, &[tuple.0.as_slice()])?
                    .then_some(handles_ref[i]))
            });
            for v in verdicts {
                stats::bump(st, |s| {
                    s.rows_scanned += v.combos;
                    s.rows_matched += v.matched;
                });
                out.extend(v.kept);
                if let Some(e) = v.err {
                    return Err(e);
                }
            }
            return Ok(out);
        }
        if predicate.is_some() {
            Exchange::serial_fallback(ctx);
        }
    }
    for h in handles {
        stats::bump(st, |s| s.rows_scanned += 1);
        let tuple = db.get(table, h).expect("scanned handle is live");
        let keep = match predicate {
            None => true,
            Some(p) => {
                let level: Level = vec![Frame {
                    name: table_name.to_string(),
                    columns: std::sync::Arc::clone(&columns),
                    row: tuple.0.clone(),
                }];
                bindings.push_level(level);
                let r = match &compiled {
                    Some(cp) => eval_compiled_predicate(ctx, &mut bindings, None, cp),
                    None => eval_predicate(ctx, &mut bindings, None, p),
                };
                bindings.pop_level();
                r?
            }
        };
        if keep {
            stats::bump(st, |s| s.rows_matched += 1);
            out.push(h);
        }
    }
    Ok(out)
}

fn execute_delete(
    db: &mut Database,
    virt: &dyn TransitionTableProvider,
    stmt: &DeleteStmt,
    opts: &ExecOpts,
) -> Result<OpEffect, QueryError> {
    let table = db.table_id(&stmt.table)?;
    let handles = identify(db, virt, table, &stmt.table, stmt.predicate.as_ref(), opts)?;
    // Phase 2: delete (statement-atomic).
    let tuples = apply_atomically(db, |db| {
        let mut tuples = Vec::with_capacity(handles.len());
        for h in handles {
            let old = db.delete(table, h)?;
            tuples.push((h, old));
        }
        Ok(tuples)
    })?;
    Ok(OpEffect::Delete { table, tuples })
}

fn execute_update(
    db: &mut Database,
    virt: &dyn TransitionTableProvider,
    stmt: &UpdateStmt,
    opts: &ExecOpts,
) -> Result<OpEffect, QueryError> {
    let table = db.table_id(&stmt.table)?;

    // Resolve assigned columns once; deduplicate repeated assignments to
    // the same column (last one wins, like SQL).
    let mut set_cols = Vec::with_capacity(stmt.sets.len());
    {
        let schema = db.schema(table);
        for (name, _) in &stmt.sets {
            set_cols.push(schema.column_id(name)?);
        }
    }

    // Phase 1: identify tuples and compute per-tuple assignments against
    // the pre-update state.
    let handles = identify(db, virt, table, &stmt.table, stmt.predicate.as_ref(), opts)?;
    let mut planned: Vec<(TupleHandle, Vec<(ColumnId, Value)>)> = Vec::with_capacity(handles.len());
    let cache = crate::SubqueryCache::new();
    {
        let ctx = QueryCtx::with_provider(db, virt)
            .with_cache(&cache)
            .with_stats(opts.stats)
            .with_mode(opts.mode)
            .with_plans(opts.plans)
            .with_threads(opts.threads);
        let schema = db.schema(table);
        let columns =
            std::sync::Arc::new(schema.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
        let mut bindings = Bindings::new();
        for &h in &handles {
            let tuple = db.get(table, h).expect("identified handle is live");
            bindings.push_level(vec![Frame {
                name: stmt.table.clone(),
                columns: std::sync::Arc::clone(&columns),
                row: tuple.0.clone(),
            }]);
            let mut assignments: Vec<(ColumnId, Value)> = Vec::with_capacity(stmt.sets.len());
            let mut err = None;
            for (i, (_, e)) in stmt.sets.iter().enumerate() {
                match eval_expr(ctx, &mut bindings, None, e) {
                    Ok(v) => {
                        // Last assignment to a column wins.
                        assignments.retain(|(c, _)| *c != set_cols[i]);
                        assignments.push((set_cols[i], v));
                    }
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            bindings.pop_level();
            if let Some(e) = err {
                return Err(e);
            }
            planned.push((h, assignments));
        }
    }

    // Phase 2: apply (statement-atomic — previously a failed row left the
    // earlier rows modified).
    let tuples = apply_atomically(db, |db| {
        let mut tuples = Vec::with_capacity(planned.len());
        for (h, assignments) in planned {
            let cols: Vec<ColumnId> = assignments.iter().map(|(c, _)| *c).collect();
            let old = db.update(table, h, &assignments)?;
            tuples.push((h, cols, old));
        }
        Ok(tuples)
    })?;
    Ok(OpEffect::Update { table, tuples })
}

fn execute_select_op(
    db: &mut Database,
    virt: &dyn TransitionTableProvider,
    stmt: &SelectStmt,
    opts: &ExecOpts,
) -> Result<OpEffect, QueryError> {
    let cache = crate::SubqueryCache::new();
    let ctx = QueryCtx::with_provider(db, virt)
        .with_cache(&cache)
        .with_stats(opts.stats)
        .with_mode(opts.mode)
        .with_plans(opts.plans)
        .with_threads(opts.threads);
    let mut trace: Vec<(TableId, TupleHandle)> = Vec::new();
    let output = run_select_traced(ctx, stmt, &mut Bindings::new(), Some(&mut trace))?;

    // Column attribution per top-level from item (§5.1; embedded selects'
    // tuples are excluded from S by our documented choice, but their
    // column references on traced tables are counted).
    let per_item = referenced_columns(db, stmt);
    // Map (table) -> columns for items; trace entries are per contributing
    // tuple, in from-item iteration order. We attribute columns by table id.
    let mut item_for_table: Vec<(TableId, Option<Vec<ColumnId>>)> = Vec::new();
    for (i, tref) in stmt.from.iter().enumerate() {
        if let setrules_sql::ast::TableSource::Named(name) = &tref.source {
            if let Ok(tid) = db.table_id(name) {
                let cols = per_item[i].clone().map(|s| s.into_iter().collect::<Vec<_>>());
                item_for_table.push((tid, cols));
            }
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    let mut reads = Vec::new();
    for (tid, h) in trace {
        if !seen.insert((tid, h)) {
            continue;
        }
        let cols = item_for_table
            .iter()
            .find(|(t, _)| *t == tid)
            .and_then(|(_, c)| c.clone());
        reads.push((tid, h, cols));
    }
    Ok(OpEffect::Select { reads, output })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::NoTransitionTables;
    use setrules_sql::{ast::Statement, parse_statement};
    use setrules_storage::{paper_example_schemas, tuple};

    fn setup() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let (emp, dept) = paper_example_schemas();
        let emp = db.create_table(emp).unwrap();
        let dept = db.create_table(dept).unwrap();
        (db, emp, dept)
    }

    fn op(sql: &str) -> DmlOp {
        match parse_statement(sql).unwrap() {
            Statement::Dml(op) => op,
            other => panic!("not dml: {other:?}"),
        }
    }

    fn exec(db: &mut Database, sql: &str) -> OpEffect {
        execute_op(db, &NoTransitionTables, &op(sql)).unwrap()
    }

    #[test]
    fn insert_values_affected_set() {
        let (mut db, emp, _) = setup();
        let eff = exec(&mut db, "insert into emp values ('Jane', 1, 95000.0, 1), ('Bill', 2, 25000.0, 2)");
        let OpEffect::Insert { table, handles } = eff else { panic!() };
        assert_eq!(table, emp);
        assert_eq!(handles.len(), 2);
        assert_eq!(db.table(emp).len(), 2);
    }

    #[test]
    fn insert_select_copies_rows() {
        let (mut db, _emp, _) = setup();
        exec(&mut db, "insert into emp values ('Jane', 1, 95000.0, 1), ('Bill', 2, 25000.0, 2)");
        let mut db2 = db;
        db2.create_table(setrules_storage::TableSchema::new(
            "rich",
            paper_example_schemas().0.columns.clone(),
        ))
        .unwrap();
        let eff = exec(&mut db2, "insert into rich (select * from emp where salary > 50000)");
        let OpEffect::Insert { handles, .. } = eff else { panic!() };
        assert_eq!(handles.len(), 1);
    }

    #[test]
    fn delete_captures_old_values() {
        let (mut db, emp, _) = setup();
        exec(&mut db, "insert into emp values ('Jane', 1, 95000.0, 1), ('Bill', 2, 25000.0, 2)");
        let eff = exec(&mut db, "delete from emp where salary < 50000");
        let OpEffect::Delete { table, tuples } = eff else { panic!() };
        assert_eq!(table, emp);
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].1, tuple!["Bill", 2, 25000.0, 2]);
        assert_eq!(db.table(emp).len(), 1);
    }

    #[test]
    fn delete_without_predicate_means_where_true() {
        let (mut db, emp, _) = setup();
        exec(&mut db, "insert into emp values ('Jane', 1, 95000.0, 1), ('Bill', 2, 25000.0, 2)");
        let eff = exec(&mut db, "delete from emp");
        assert_eq!(eff.cardinality(), 2);
        assert!(db.table(emp).is_empty());
    }

    #[test]
    fn update_affected_even_when_value_unchanged() {
        let (mut db, _, _) = setup();
        exec(&mut db, "insert into emp values ('Jane', 1, 95000.0, 1)");
        // Assign salary to itself: value unchanged but still "affected"
        // (paper §2.1: U is not derivable from states).
        let eff = exec(&mut db, "update emp set salary = salary");
        let OpEffect::Update { tuples, .. } = eff else { panic!() };
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].1, vec![ColumnId(2)]);
    }

    #[test]
    fn update_is_set_oriented_reads_pre_state() {
        let (mut db, emp, _) = setup();
        exec(&mut db, "insert into emp values ('a', 1, 100.0, 1), ('b', 2, 200.0, 1)");
        // Swap-like self-reference: every salary becomes the pre-statement
        // max. If evaluation leaked intermediate writes, results would
        // depend on scan order.
        let eff = exec(&mut db, "update emp set salary = salary * 2 where salary < 1000");
        assert_eq!(eff.cardinality(), 2);
        let rel = execute_query(
            &db,
            &NoTransitionTables,
            &match op("select salary from emp order by salary") {
                DmlOp::Select(s) => s,
                _ => unreachable!(),
            },
        )
        .unwrap();
        assert_eq!(rel.rows, vec![vec![Value::Float(200.0)], vec![Value::Float(400.0)]]);
        assert_eq!(db.table(emp).len(), 2);
    }

    #[test]
    fn update_captures_old_tuple() {
        let (mut db, _, _) = setup();
        exec(&mut db, "insert into emp values ('Jane', 1, 95000.0, 1)");
        let eff = exec(&mut db, "update emp set salary = 1.0, dept_no = 9");
        let OpEffect::Update { tuples, .. } = eff else { panic!() };
        assert_eq!(tuples[0].2, tuple!["Jane", 1, 95000.0, 1]);
        assert_eq!(tuples[0].1, vec![ColumnId(2), ColumnId(3)]);
    }

    #[test]
    fn duplicate_column_assignment_last_wins() {
        let (mut db, emp, _) = setup();
        exec(&mut db, "insert into emp values ('Jane', 1, 95000.0, 1)");
        let eff = exec(&mut db, "update emp set salary = 1.0, salary = 2.0");
        let OpEffect::Update { tuples, .. } = eff else { panic!() };
        assert_eq!(tuples[0].1, vec![ColumnId(2)], "column listed once");
        let h = tuples[0].0;
        assert_eq!(db.get(emp, h).unwrap().get(ColumnId(2)), &Value::Float(2.0));
    }

    #[test]
    fn select_op_traces_reads() {
        let (mut db, emp, _) = setup();
        exec(&mut db, "insert into emp values ('Jane', 1, 95000.0, 1), ('Bill', 2, 25000.0, 2)");
        let eff = exec(&mut db, "select name from emp where salary > 50000");
        let OpEffect::Select { reads, output } = eff else { panic!() };
        assert_eq!(output.len(), 1);
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].0, emp);
        let cols = reads[0].2.as_ref().unwrap();
        assert!(cols.contains(&ColumnId(0)) && cols.contains(&ColumnId(2)));
    }

    #[test]
    fn correlated_subquery_example_3_3_condition() {
        let (mut db, _, _) = setup();
        exec(
            &mut db,
            "insert into emp values ('a', 1, 100.0, 1), ('b', 2, 100.0, 1), ('c', 3, 500.0, 1)",
        );
        // c's salary (500) exceeds 2 * avg(233.3).
        let DmlOp::Select(sel) = op(
            "select name from emp e1 where salary > 2 * (select avg(salary) from emp e2 where e2.dept_no = e1.dept_no)",
        ) else {
            unreachable!()
        };
        let rel = execute_query(&db, &NoTransitionTables, &sel).unwrap();
        assert_eq!(rel.rows, vec![vec![Value::Text("c".into())]]);
    }

    #[test]
    fn aggregate_queries() {
        let (mut db, _, _) = setup();
        exec(
            &mut db,
            "insert into emp values ('a', 1, 100.0, 1), ('b', 2, 300.0, 1), ('c', 3, 500.0, 2)",
        );
        let q = |db: &Database, s: &str| {
            let DmlOp::Select(sel) = op(s) else { unreachable!() };
            execute_query(db, &NoTransitionTables, &sel).unwrap()
        };
        assert_eq!(q(&db, "select count(*) from emp").rows, vec![vec![Value::Int(3)]]);
        assert_eq!(q(&db, "select sum(salary) from emp").rows, vec![vec![Value::Float(900.0)]]);
        assert_eq!(q(&db, "select avg(salary) from emp where dept_no = 1").rows, vec![vec![Value::Float(200.0)]]);
        assert_eq!(q(&db, "select min(salary), max(salary) from emp").rows, vec![vec![Value::Float(100.0), Value::Float(500.0)]]);
        let grouped = q(&db, "select dept_no, count(*) from emp group by dept_no order by dept_no");
        assert_eq!(
            grouped.rows,
            vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(2), Value::Int(1)]]
        );
        let having = q(&db, "select dept_no from emp group by dept_no having count(*) > 1");
        assert_eq!(having.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn empty_table_aggregates() {
        let (db, _, _) = setup();
        let q = |s: &str| {
            let DmlOp::Select(sel) = op(s) else { unreachable!() };
            execute_query(&db, &NoTransitionTables, &sel).unwrap()
        };
        assert_eq!(q("select count(*) from emp").rows, vec![vec![Value::Int(0)]]);
        assert_eq!(q("select sum(salary) from emp").rows, vec![vec![Value::Null]]);
        // Grouped query over empty input: no groups, no rows.
        assert_eq!(q("select dept_no, count(*) from emp group by dept_no").len(), 0);
    }

    #[test]
    fn join_cross_product_with_predicate() {
        let (mut db, _, _) = setup();
        exec(&mut db, "insert into emp values ('a', 1, 100.0, 1), ('b', 2, 300.0, 2)");
        exec(&mut db, "insert into dept values (1, 1), (2, 2)");
        let DmlOp::Select(sel) =
            op("select name, mgr_no from emp, dept where emp.dept_no = dept.dept_no")
        else {
            unreachable!()
        };
        let rel = execute_query(&db, &NoTransitionTables, &sel).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn distinct_and_limit() {
        let (mut db, _, _) = setup();
        exec(&mut db, "insert into emp values ('a', 1, 100.0, 1), ('b', 2, 300.0, 1), ('c', 3, 1.0, 2)");
        let q = |s: &str| {
            let DmlOp::Select(sel) = op(s) else { unreachable!() };
            execute_query(&db, &NoTransitionTables, &sel).unwrap()
        };
        assert_eq!(q("select distinct dept_no from emp").len(), 2);
        assert_eq!(q("select name from emp order by salary desc limit 2").rows.len(), 2);
        assert_eq!(
            q("select name from emp order by salary desc limit 2").rows[0],
            vec![Value::Text("b".into())]
        );
    }

    #[test]
    fn scalar_subquery_in_insert() {
        let (mut db, _, dept) = setup();
        exec(&mut db, "insert into emp values ('a', 7, 100.0, 1)");
        let eff = exec(&mut db, "insert into dept values (1, (select emp_no from emp))");
        assert_eq!(eff.cardinality(), 1);
        let row = db.table(dept).scan().next().unwrap().1.clone();
        assert_eq!(row, tuple![1, 7]);
    }

    #[test]
    fn insert_arity_mismatch_rejected() {
        let (mut db, _, _) = setup();
        let err = execute_op(&mut db, &NoTransitionTables, &op("insert into emp values (1, 2)"))
            .unwrap_err();
        assert!(matches!(err, QueryError::InsertArity { expected: 4, got: 2, .. }));
    }

    #[test]
    fn mid_statement_fault_rolls_back_to_pre_statement_state() {
        use setrules_storage::FaultKind;
        let (mut db, _, _) = setup();
        exec(&mut db, "insert into emp values ('a', 1, 100.0, 1), ('b', 2, 200.0, 1), ('c', 3, 300.0, 1)");
        db.commit();
        let image = db.state_image();
        // Fail the 2nd tuple update: row 'a' is modified, then 'b' faults.
        // The statement savepoint must also undo 'a'.
        db.fault_injector_mut().reset_counts();
        db.fault_injector_mut().arm(FaultKind::TupleUpdate, 2);
        let err = execute_op(
            &mut db,
            &NoTransitionTables,
            &op("update emp set salary = salary * 2"),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            QueryError::Storage(setrules_storage::StorageError::FaultInjected { .. })
        ));
        db.fault_injector_mut().disarm();
        assert_eq!(db.state_image(), image, "partial update survived the rollback");
        assert_eq!(db.undo_len(), 0, "statement savepoint left ghost undo records");

        // Same for a multi-row delete (2nd delete faults)...
        db.fault_injector_mut().reset_counts();
        db.fault_injector_mut().arm(FaultKind::TupleDelete, 2);
        assert!(execute_op(&mut db, &NoTransitionTables, &op("delete from emp")).is_err());
        db.fault_injector_mut().disarm();
        assert_eq!(db.state_image(), image, "partial delete survived the rollback");

        // ... and a multi-row insert (2nd undo append faults).
        db.fault_injector_mut().reset_counts();
        db.fault_injector_mut().arm(FaultKind::UndoAppend, 2);
        assert!(execute_op(
            &mut db,
            &NoTransitionTables,
            &op("insert into emp values ('x', 8, 1.0, 1), ('y', 9, 1.0, 1)"),
        )
        .is_err());
        db.fault_injector_mut().disarm();
        assert_eq!(db.state_image(), image, "partial insert survived the rollback");
    }

    #[test]
    fn failed_op_leaves_no_partial_planning_effects() {
        let (mut db, emp, _) = setup();
        exec(&mut db, "insert into emp values ('a', 1, 100.0, 1)");
        // Type error in the predicate aborts before any mutation.
        let err =
            execute_op(&mut db, &NoTransitionTables, &op("delete from emp where name > 5"));
        assert!(err.is_err());
        assert_eq!(db.table(emp).len(), 1);
    }
}
