//! Query-execution work counters.
//!
//! [`ExecStats`] counts the *logical* work the executor performs — rows
//! scanned and matched, access paths chosen, join strategies, subquery
//! memo effectiveness — as opposed to the storage layer's physical
//! counters. An optional [`StatsCell`] rides on [`crate::QueryCtx`]; when
//! absent (the default), instrumentation is a no-op branch.
//!
//! `StatsCell` uses interior mutability (`Cell`) because `QueryCtx` is a
//! `Copy` bundle of shared references threaded through recursive
//! evaluation; counters must accumulate across all copies.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use setrules_json::Json;

/// Counters of logical query-execution work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows materialized from `from` items (stored tables and transition
    /// tables alike) before predicate filtering.
    pub rows_scanned: u64,
    /// Row combinations that satisfied the `where` predicate (or rows
    /// kept by DML identification).
    pub rows_matched: u64,
    /// Scans answered by a hash-index probe.
    pub index_lookups: u64,
    /// Scans that had to walk every live tuple.
    pub full_scans: u64,
    /// Scans proven empty by the planner (impossible predicates).
    pub empty_scans: u64,
    /// Uncorrelated-subquery memo hits (including the cheap "known
    /// correlated" verdict).
    pub subquery_cache_hits: u64,
    /// Subquery evaluations that had to run (first sight of the node).
    pub subquery_cache_misses: u64,
    /// Two-item equi-joins executed via the hash-join fast path.
    pub hash_joins: u64,
    /// Multi-item joins executed via the nested-loop odometer (or, in the
    /// compiled pipeline, cross-product join steps with no usable
    /// equi-join key).
    pub nested_loop_joins: u64,
    /// Rows dropped during the scan by predicate conjuncts the compiled
    /// pipeline pushed down to their `from` item.
    pub pushdown_filtered: u64,
    /// Row combinations assembled by the join (each is one full-predicate
    /// evaluation) — the per-row-work figure the compile-once pipeline
    /// exists to shrink.
    pub join_combinations: u64,
    /// Scans answered by an ordered-index range walk.
    pub range_scans: u64,
    /// Live tuples a range scan did *not* visit (table size minus range
    /// result) — the work the ordered index saved over a full scan.
    pub range_rows_skipped: u64,
    /// `order by` clauses answered by index order instead of a sort.
    pub sort_elided: u64,
    /// Query phases (scan+pushdown, hash build, hash probe, WHERE pass)
    /// executed on the worker pool instead of serially.
    pub parallel_scans: u64,
    /// Total partitions handed to the worker pool across all parallel
    /// phases (a phase with 4 partitions adds 4).
    pub parallel_partitions: u64,
    /// Phases that met the size threshold for parallel execution but ran
    /// serially because evaluation is not row-local (correlated
    /// subqueries needing the shared memo, interpreter fallbacks, outer
    /// references) — proof the executor never races shared state.
    pub serial_fallbacks: u64,
    /// `order by ... limit k` clauses answered by top-k selection
    /// (partial select + prefix sort) instead of a full sort.
    pub topk_selected: u64,
    /// Rows probed by the incremental condition evaluator (memo rebuilds
    /// and delta repairs) — the per-row work the TREAT-style path does
    /// *instead of* full transition-table scans.
    pub incr_probe_rows: u64,
}

impl ExecStats {
    /// Counter-wise sum.
    pub fn plus(&self, other: &ExecStats) -> ExecStats {
        ExecStats {
            rows_scanned: self.rows_scanned + other.rows_scanned,
            rows_matched: self.rows_matched + other.rows_matched,
            index_lookups: self.index_lookups + other.index_lookups,
            full_scans: self.full_scans + other.full_scans,
            empty_scans: self.empty_scans + other.empty_scans,
            subquery_cache_hits: self.subquery_cache_hits + other.subquery_cache_hits,
            subquery_cache_misses: self.subquery_cache_misses + other.subquery_cache_misses,
            hash_joins: self.hash_joins + other.hash_joins,
            nested_loop_joins: self.nested_loop_joins + other.nested_loop_joins,
            pushdown_filtered: self.pushdown_filtered + other.pushdown_filtered,
            join_combinations: self.join_combinations + other.join_combinations,
            range_scans: self.range_scans + other.range_scans,
            range_rows_skipped: self.range_rows_skipped + other.range_rows_skipped,
            sort_elided: self.sort_elided + other.sort_elided,
            parallel_scans: self.parallel_scans + other.parallel_scans,
            parallel_partitions: self.parallel_partitions + other.parallel_partitions,
            serial_fallbacks: self.serial_fallbacks + other.serial_fallbacks,
            topk_selected: self.topk_selected + other.topk_selected,
            incr_probe_rows: self.incr_probe_rows + other.incr_probe_rows,
        }
    }

    /// Counter-wise difference from an earlier snapshot.
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            rows_matched: self.rows_matched - earlier.rows_matched,
            index_lookups: self.index_lookups - earlier.index_lookups,
            full_scans: self.full_scans - earlier.full_scans,
            empty_scans: self.empty_scans - earlier.empty_scans,
            subquery_cache_hits: self.subquery_cache_hits - earlier.subquery_cache_hits,
            subquery_cache_misses: self.subquery_cache_misses - earlier.subquery_cache_misses,
            hash_joins: self.hash_joins - earlier.hash_joins,
            nested_loop_joins: self.nested_loop_joins - earlier.nested_loop_joins,
            pushdown_filtered: self.pushdown_filtered - earlier.pushdown_filtered,
            join_combinations: self.join_combinations - earlier.join_combinations,
            range_scans: self.range_scans - earlier.range_scans,
            range_rows_skipped: self.range_rows_skipped - earlier.range_rows_skipped,
            sort_elided: self.sort_elided - earlier.sort_elided,
            parallel_scans: self.parallel_scans - earlier.parallel_scans,
            parallel_partitions: self.parallel_partitions - earlier.parallel_partitions,
            serial_fallbacks: self.serial_fallbacks - earlier.serial_fallbacks,
            topk_selected: self.topk_selected - earlier.topk_selected,
            incr_probe_rows: self.incr_probe_rows - earlier.incr_probe_rows,
        }
    }

    /// JSON object with one field per counter.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rows_scanned", Json::Int(self.rows_scanned as i64)),
            ("rows_matched", Json::Int(self.rows_matched as i64)),
            ("index_lookups", Json::Int(self.index_lookups as i64)),
            ("full_scans", Json::Int(self.full_scans as i64)),
            ("empty_scans", Json::Int(self.empty_scans as i64)),
            ("subquery_cache_hits", Json::Int(self.subquery_cache_hits as i64)),
            ("subquery_cache_misses", Json::Int(self.subquery_cache_misses as i64)),
            ("hash_joins", Json::Int(self.hash_joins as i64)),
            ("nested_loop_joins", Json::Int(self.nested_loop_joins as i64)),
            ("pushdown_filtered", Json::Int(self.pushdown_filtered as i64)),
            ("join_combinations", Json::Int(self.join_combinations as i64)),
            ("range_scans", Json::Int(self.range_scans as i64)),
            ("range_rows_skipped", Json::Int(self.range_rows_skipped as i64)),
            ("sort_elided", Json::Int(self.sort_elided as i64)),
            ("parallel_scans", Json::Int(self.parallel_scans as i64)),
            ("parallel_partitions", Json::Int(self.parallel_partitions as i64)),
            ("serial_fallbacks", Json::Int(self.serial_fallbacks as i64)),
            ("topk_selected", Json::Int(self.topk_selected as i64)),
            ("incr_probe_rows", Json::Int(self.incr_probe_rows as i64)),
        ])
    }
}

/// A shared, interior-mutable accumulator for [`ExecStats`].
///
/// Attach one to a [`crate::QueryCtx`] with
/// [`QueryCtx::with_stats`](crate::QueryCtx::with_stats); every executor
/// path consulting that context adds its work here.
#[derive(Debug, Default)]
pub struct StatsCell {
    inner: Cell<ExecStats>,
}

impl StatsCell {
    /// A fresh, zeroed accumulator.
    pub fn new() -> Self {
        StatsCell::default()
    }

    /// Current counter values.
    pub fn snapshot(&self) -> ExecStats {
        self.inner.get()
    }

    /// Current counter values, resetting the accumulator to zero.
    pub fn take(&self) -> ExecStats {
        self.inner.replace(ExecStats::default())
    }

    /// Apply a mutation to the counters (used by executor instrumentation).
    pub fn bump(&self, f: impl FnOnce(&mut ExecStats)) {
        let mut s = self.inner.get();
        f(&mut s);
        self.inner.set(s);
    }
}

/// Bump the optional stats cell carried by a context: a no-op when no
/// accumulator is attached.
pub(crate) fn bump(stats: Option<&StatsCell>, f: impl FnOnce(&mut ExecStats)) {
    if let Some(cell) = stats {
        cell.bump(f);
    }
}

/// Per-operator work counters for one physical operator of the
/// [`crate::exec`] pipeline (keyed by operator name in [`OpStatsCell`]).
///
/// These ride a *separate* side channel from [`ExecStats`]: the 19
/// aggregate counters stay the executor's stable, mode-independent
/// vocabulary (the differential suites compare them bit-for-bit), while
/// per-operator counters attribute that work to the operator tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Batches this operator emitted.
    pub batches: u64,
    /// Rows the operator consumed from its child (0 for leaves).
    pub rows_in: u64,
    /// Rows the operator emitted.
    pub rows_out: u64,
}

/// A shared, interior-mutable per-operator counter map, keyed by operator
/// name (`"seq-scan"`, `"hash-join"`, `"filter"`, …). Attach one to a
/// [`crate::QueryCtx`] with
/// [`QueryCtx::with_op_stats`](crate::QueryCtx::with_op_stats); every
/// operator of the [`crate::exec`] tree records into it. `BTreeMap` keeps
/// iteration order deterministic.
#[derive(Debug, Default)]
pub struct OpStatsCell {
    inner: RefCell<BTreeMap<&'static str, OpCounters>>,
}

impl OpStatsCell {
    /// A fresh, empty counter map.
    pub fn new() -> Self {
        OpStatsCell::default()
    }

    /// Current counters for every operator that recorded work.
    pub fn snapshot(&self) -> BTreeMap<&'static str, OpCounters> {
        self.inner.borrow().clone()
    }

    /// Counters for one operator (zeroes if it never ran).
    pub fn get(&self, name: &str) -> OpCounters {
        self.inner.borrow().get(name).copied().unwrap_or_default()
    }

    /// Names of every operator that recorded work, in sorted order.
    pub fn operators(&self) -> Vec<&'static str> {
        self.inner.borrow().keys().copied().collect()
    }

    /// Record one emitted batch of `rows` rows for operator `name`.
    pub(crate) fn batch_out(&self, name: &'static str, rows: usize) {
        let mut m = self.inner.borrow_mut();
        let c = m.entry(name).or_default();
        c.batches += 1;
        c.rows_out += rows as u64;
    }

    /// Record `rows` rows consumed from the child of operator `name`.
    pub(crate) fn rows_in(&self, name: &'static str, rows: usize) {
        self.inner.borrow_mut().entry(name).or_default().rows_in += rows as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_and_since_are_inverse() {
        let a = ExecStats { rows_scanned: 10, rows_matched: 4, hash_joins: 1, ..Default::default() };
        let b = ExecStats {
            rows_scanned: 25,
            rows_matched: 9,
            hash_joins: 2,
            full_scans: 3,
            ..Default::default()
        };
        assert_eq!(a.plus(&b.since(&a)), b);
    }

    #[test]
    fn cell_accumulates_and_takes() {
        let cell = StatsCell::new();
        cell.bump(|s| s.rows_scanned += 5);
        cell.bump(|s| s.rows_scanned += 2);
        assert_eq!(cell.snapshot().rows_scanned, 7);
        assert_eq!(cell.take().rows_scanned, 7);
        assert_eq!(cell.snapshot(), ExecStats::default());
    }

    #[test]
    fn json_has_all_counters() {
        let j = ExecStats { nested_loop_joins: 3, ..Default::default() }.to_json();
        assert_eq!(j.get("nested_loop_joins").unwrap().as_i64(), Some(3));
        assert_eq!(j.get("rows_scanned").unwrap().as_i64(), Some(0));
        assert_eq!(j.as_object().unwrap().len(), 19);
    }
}
