//! Transition-table access for query evaluation.
//!
//! The rule engine (in `setrules-core`) supplies the contents of
//! `inserted t`, `deleted t`, `old/new updated t[.c]`, and `selected t[.c]`
//! when evaluating a rule's condition or action (paper §3/§4). The query
//! layer only needs a way to ask for those rows, so the dependency points
//! this way: `setrules-core` implements [`TransitionTableProvider`]. In
//! the operator tree a transition-table `from` item materializes through
//! a `transition-scan` leaf (`ScanSource::Transition` in
//! [`crate::exec::scan`]), which borrows the provider's rows and clones
//! only those that survive its pushed-down conjuncts.

use std::borrow::Cow;

use setrules_sql::ast::TransitionKind;
use setrules_storage::{Database, Value};

use crate::error::QueryError;

/// Supplies transition-table rows during evaluation.
pub trait TransitionTableProvider {
    /// The rows of the requested transition table, each with the schema of
    /// the underlying stored table `table`. Implementations return
    /// [`QueryError::TransitionTableUnavailable`] for references that are
    /// not legal in the current context (paper §3: a rule may only
    /// reference transition tables corresponding to its basic transition
    /// predicates).
    ///
    /// Rows are `Cow` slices so providers that already hold the
    /// materialized values (the rule engine's window keeps window-start
    /// tuples, and current values live in the database) can lend them
    /// without cloning; the executor only takes ownership of rows that
    /// survive filtering.
    fn rows<'a>(
        &'a self,
        db: &'a Database,
        kind: TransitionKind,
        table: &str,
        column: Option<&str>,
    ) -> Result<Vec<Cow<'a, [Value]>>, QueryError>;
}

/// The provider used outside rule processing: every transition-table
/// reference is an error.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTransitionTables;

impl TransitionTableProvider for NoTransitionTables {
    fn rows<'a>(
        &'a self,
        _db: &'a Database,
        kind: TransitionKind,
        table: &str,
        column: Option<&str>,
    ) -> Result<Vec<Cow<'a, [Value]>>, QueryError> {
        Err(QueryError::TransitionTableUnavailable(describe(kind, table, column)))
    }
}

/// Human-readable name of a transition table reference.
pub fn describe(kind: TransitionKind, table: &str, column: Option<&str>) -> String {
    let kw = match kind {
        TransitionKind::Inserted => "inserted",
        TransitionKind::Deleted => "deleted",
        TransitionKind::OldUpdated => "old updated",
        TransitionKind::NewUpdated => "new updated",
        TransitionKind::Selected => "selected",
    };
    match column {
        Some(c) => format!("{kw} {table}.{c}"),
        None => format!("{kw} {table}"),
    }
}
