//! # setrules-query
//!
//! Query and DML execution for the `setrules` system: set-oriented
//! evaluation of the paper's SQL dialect against the in-memory storage
//! engine, with the **affected-set** capture (§2.1) the rule system is
//! built on.
//!
//! Key pieces:
//!
//! * [`execute_op`] — run one `insert`/`delete`/`update`/`select` and
//!   return its [`OpEffect`] (affected handles + old values);
//! * [`execute_query`] — run a read-only `select` to a [`Relation`];
//! * [`TransitionTableProvider`] — how the rule engine injects
//!   `inserted t` / `deleted t` / `old|new updated t[.c]` / `selected t`
//!   tables into evaluation (§3, §4);
//! * a small planner ([`planner`]) exploiting hash indexes for equality,
//!   `in`-list, and range predicates, applying the same optimization to
//!   rule bodies as to user queries (§1);
//! * a compile-once pipeline ([`compile`]) lowering expressions to
//!   slot-addressed [`compile::CompiledExpr`] form, with an N-way join
//!   planner in the `select` executor and a [`compile::PlanCache`] the
//!   rule engine keys per rule.

#![warn(missing_docs)]

pub mod bindings;
pub mod compile;
mod ctx;
mod dml;
mod error;
mod eval;
mod exec;
mod explain;
pub mod incremental;
pub mod like;
pub mod parallel;
pub mod planner;
mod provider;
pub mod refs;
mod relation;
mod select;
mod stats;

pub use compile::{
    compile, compile_cached, eval_compiled, eval_compiled_predicate, CompiledExpr, Layout,
    LayoutFrame, PlanCache,
};
pub use ctx::{ExecMode, QueryCtx, SubqueryCache};
pub use dml::{
    execute_op, execute_op_ext, execute_op_with_opts, execute_op_with_stats, execute_query,
    execute_query_ext, execute_query_with_opts, execute_query_with_stats, ExecOpts, OpEffect,
};
pub use error::QueryError;
pub use eval::{eval_expr, eval_predicate, truth};
pub use explain::{explain_condition, explain_select};
pub use provider::{describe, NoTransitionTables, TransitionTableProvider};
pub use relation::Relation;
pub use select::{has_aggregate, run_select, run_select_traced};
pub use stats::{ExecStats, OpCounters, OpStatsCell, StatsCell};
