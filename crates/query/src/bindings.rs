//! Name resolution scopes for expression evaluation.
//!
//! A [`Bindings`] is a stack of *levels*, one per nested query; each level
//! holds one [`Frame`] per `from` item of that query. Unqualified column
//! names resolve innermost-level-first; within a level, resolving against
//! more than one frame is ambiguous. Qualified names (`tvar.col`) match the
//! frame bound to `tvar`, again innermost-first — this is what makes the
//! paper's correlated conditions (`e2.dept_no = e1.dept_no`, Example 3.3)
//! work.

use std::sync::Arc;

use setrules_storage::Value;

use crate::error::QueryError;

/// One `from`-item binding: a variable name, its column names, and the
/// current row's values.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The table variable (alias, or the base table name).
    pub name: String,
    /// Column names, shared across all rows of the scan.
    pub columns: Arc<Vec<String>>,
    /// The current row.
    pub row: Vec<Value>,
}

impl Frame {
    /// Position of `column` in this frame, if present.
    fn position(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }
}

/// One scope level: the frames of a single query's `from` clause.
pub type Level = Vec<Frame>;

/// A stack of scope levels, innermost last.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    levels: Vec<Level>,
}

impl Bindings {
    /// An empty scope (constant expressions only).
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Enter a query: push its frames.
    pub fn push_level(&mut self, level: Level) {
        self.levels.push(level);
    }

    /// Leave a query.
    pub fn pop_level(&mut self) -> Option<Level> {
        self.levels.pop()
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The scope levels, innermost last (used to snapshot a compile-time
    /// [`Layout`](crate::compile::Layout)).
    pub(crate) fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Fetch a value by compiled slot coordinates: `level_up` scopes above
    /// the innermost level, frame `frame` within it, column `col`. The
    /// bounds check only fails when a compiled expression is evaluated
    /// against a scope of a different shape than its compilation
    /// [`Layout`](crate::compile::Layout) — an executor bug, reported as an
    /// error rather than a panic.
    pub fn slot(&self, level_up: usize, frame: usize, col: usize) -> Result<Value, QueryError> {
        let depth = self.levels.len();
        depth
            .checked_sub(1 + level_up)
            .and_then(|li| self.levels.get(li))
            .and_then(|level| level.get(frame))
            .and_then(|f| f.row.get(col))
            .cloned()
            .ok_or_else(|| {
                QueryError::Type(format!(
                    "internal: compiled slot ({level_up}, {frame}, {col}) \
                     out of range for scope depth {depth}"
                ))
            })
    }

    /// Resolve a (possibly qualified) column reference to its current value.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Value, QueryError> {
        for level in self.levels.iter().rev() {
            match qualifier {
                Some(q) => {
                    // Qualified: innermost frame with that variable name wins.
                    let mut matched_var = false;
                    for frame in level {
                        if frame.name == q {
                            matched_var = true;
                            if let Some(i) = frame.position(name) {
                                return Ok(frame.row[i].clone());
                            }
                        }
                    }
                    if matched_var {
                        // The variable exists at this level but lacks the
                        // column — that is an error, not a reason to search
                        // outer scopes.
                        return Err(QueryError::UnknownColumn(format!("{q}.{name}")));
                    }
                }
                None => {
                    let mut found: Option<Value> = None;
                    for frame in level {
                        if let Some(i) = frame.position(name) {
                            if found.is_some() {
                                return Err(QueryError::AmbiguousColumn(name.to_string()));
                            }
                            found = Some(frame.row[i].clone());
                        }
                    }
                    if let Some(v) = found {
                        return Ok(v);
                    }
                }
            }
        }
        let full = match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.to_string(),
        };
        Err(QueryError::UnknownColumn(full))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(name: &str, cols: &[&str], vals: &[i64]) -> Frame {
        Frame {
            name: name.into(),
            columns: Arc::new(cols.iter().map(|s| s.to_string()).collect()),
            row: vals.iter().map(|v| Value::Int(*v)).collect(),
        }
    }

    #[test]
    fn unqualified_resolution() {
        let mut b = Bindings::new();
        b.push_level(vec![frame("emp", &["name_len", "salary"], &[4, 100])]);
        assert_eq!(b.resolve(None, "salary").unwrap(), Value::Int(100));
        assert!(matches!(b.resolve(None, "bogus"), Err(QueryError::UnknownColumn(_))));
    }

    #[test]
    fn ambiguity_within_level() {
        let mut b = Bindings::new();
        b.push_level(vec![
            frame("e1", &["dept_no"], &[1]),
            frame("e2", &["dept_no"], &[2]),
        ]);
        assert!(matches!(b.resolve(None, "dept_no"), Err(QueryError::AmbiguousColumn(_))));
        assert_eq!(b.resolve(Some("e1"), "dept_no").unwrap(), Value::Int(1));
        assert_eq!(b.resolve(Some("e2"), "dept_no").unwrap(), Value::Int(2));
    }

    #[test]
    fn inner_level_shadows_outer() {
        let mut b = Bindings::new();
        b.push_level(vec![frame("emp", &["salary"], &[100])]);
        b.push_level(vec![frame("emp", &["salary"], &[200])]);
        assert_eq!(b.resolve(None, "salary").unwrap(), Value::Int(200));
        assert_eq!(b.resolve(Some("emp"), "salary").unwrap(), Value::Int(200));
        b.pop_level();
        assert_eq!(b.resolve(None, "salary").unwrap(), Value::Int(100));
    }

    #[test]
    fn correlated_outer_reference() {
        let mut b = Bindings::new();
        b.push_level(vec![frame("e1", &["dept_no"], &[7])]);
        b.push_level(vec![frame("e2", &["dept_no"], &[8])]);
        // Example 3.3's `e2.dept_no = e1.dept_no`: e1 from outer, e2 inner.
        assert_eq!(b.resolve(Some("e1"), "dept_no").unwrap(), Value::Int(7));
        assert_eq!(b.resolve(Some("e2"), "dept_no").unwrap(), Value::Int(8));
    }

    #[test]
    fn qualified_match_with_missing_column_does_not_leak_outward() {
        let mut b = Bindings::new();
        b.push_level(vec![frame("e", &["salary"], &[1])]);
        b.push_level(vec![frame("e", &["dept_no"], &[2])]);
        // Inner `e` exists but has no `salary`; resolution stops there.
        assert!(matches!(b.resolve(Some("e"), "salary"), Err(QueryError::UnknownColumn(_))));
    }
}
