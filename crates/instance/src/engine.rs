//! The instance-oriented trigger engine.
//!
//! Statement execution plans set-oriented-ly (the same two-phase planning
//! as the query layer), then applies the change **row by row**, firing the
//! matching triggers after each row — the `FOR EACH ROW` model of
//! `[Esw76, MD89, SJGP90]`. Trigger actions are statements that recurse
//! through the same path, so cascades happen one row at a time.

use setrules_query::{
    eval_predicate, execute_op_with_stats, execute_query_with_stats, ExecStats,
    NoTransitionTables, OpEffect, QueryCtx, QueryError, Relation, StatsCell,
};
use setrules_sql::ast::{DmlOp, Expr, Statement};
use setrules_sql::{parse_expr, parse_op_block, parse_statement, SqlError};
use setrules_storage::{ColumnId, Database, StorageError, TableId, TableSchema, Tuple};

use crate::stats::InstanceStats;
use crate::subst::{bind_op, RowEnv, SubstError};

/// Which row-level event a trigger watches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriggerEvent {
    /// After a row is inserted (`new` bound).
    Insert,
    /// After a row is deleted (`old` bound).
    Delete,
    /// After a row is updated (`old` and `new` bound); with a column, only
    /// when that column was assigned.
    Update(Option<String>),
}

/// A per-row trigger.
#[derive(Debug, Clone)]
pub struct RowTrigger {
    /// Trigger name.
    pub name: String,
    /// Watched table.
    pub table: TableId,
    /// Watched event.
    pub event: TriggerEvent,
    /// Optional per-row condition (`old.c` / `new.c` allowed).
    pub condition: Option<Expr>,
    /// Per-row action block (`old.c` / `new.c` allowed).
    pub action: Vec<DmlOp>,
}

/// Errors from the instance engine.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// SQL parse error.
    Sql(SqlError),
    /// Storage error.
    Storage(StorageError),
    /// Query evaluation error.
    Query(QueryError),
    /// Pseudo-row binding error.
    Subst(SubstError),
    /// Trigger recursion exceeded the depth limit.
    RecursionLimit(usize),
    /// Duplicate trigger name.
    DuplicateTrigger(String),
    /// Anything else.
    Unsupported(String),
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::Sql(e) => write!(f, "{e}"),
            InstanceError::Storage(e) => write!(f, "{e}"),
            InstanceError::Query(e) => write!(f, "{e}"),
            InstanceError::Subst(e) => write!(f, "{e}"),
            InstanceError::RecursionLimit(n) => write!(f, "trigger recursion exceeded depth {n}"),
            InstanceError::DuplicateTrigger(n) => write!(f, "trigger '{n}' already exists"),
            InstanceError::Unsupported(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for InstanceError {}

impl From<SqlError> for InstanceError {
    fn from(e: SqlError) -> Self {
        InstanceError::Sql(e)
    }
}
impl From<StorageError> for InstanceError {
    fn from(e: StorageError) -> Self {
        InstanceError::Storage(e)
    }
}
impl From<QueryError> for InstanceError {
    fn from(e: QueryError) -> Self {
        InstanceError::Query(e)
    }
}
impl From<SubstError> for InstanceError {
    fn from(e: SubstError) -> Self {
        InstanceError::Subst(e)
    }
}

/// A relational database with per-row (instance-oriented) triggers — the
/// baseline design the paper contrasts with (§1).
pub struct InstanceEngine {
    db: Database,
    triggers: Vec<std::sync::Arc<RowTrigger>>,
    max_depth: usize,
    firings: u64,
    stats: InstanceStats,
    qstats: StatsCell,
}

impl Default for InstanceEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceEngine {
    /// A fresh engine (trigger recursion depth 64).
    pub fn new() -> Self {
        InstanceEngine {
            db: Database::new(),
            triggers: Vec::new(),
            max_depth: 64,
            firings: 0,
            stats: InstanceStats::default(),
            qstats: StatsCell::new(),
        }
    }

    /// Read-only access to the database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Total trigger firings so far (each is one per-row activation).
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Cumulative per-row engine counters (the mirror of the set engine's
    /// `EngineStats`, for side-by-side comparison).
    pub fn stats(&self) -> InstanceStats {
        self.stats
    }

    /// Cumulative query-execution work counters.
    pub fn exec_stats(&self) -> ExecStats {
        self.qstats.snapshot()
    }

    /// Cumulative storage-layer work counters.
    pub fn storage_stats(&self) -> setrules_storage::StorageStats {
        self.db.stats()
    }

    /// Create a table from a `create table` statement.
    pub fn create_table(&mut self, sql: &str) -> Result<TableId, InstanceError> {
        match parse_statement(sql)? {
            Statement::CreateTable(ct) => {
                let cols = ct
                    .columns
                    .into_iter()
                    .map(|(n, ty)| setrules_storage::ColumnDef::new(n, ty))
                    .collect();
                Ok(self.db.create_table(TableSchema::new(ct.name, cols))?)
            }
            _ => Err(InstanceError::Unsupported("expected 'create table'".into())),
        }
    }

    /// Create an index (`create index on t (c)` semantics).
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<(), InstanceError> {
        let t = self.db.table_id(table)?;
        let c = self.db.schema(t).column_id(column)?;
        Ok(self.db.create_index(t, c)?)
    }

    /// Define a per-row trigger. `condition` and `action` are SQL text;
    /// `old.c` / `new.c` refer to the affected row.
    pub fn create_trigger(
        &mut self,
        name: &str,
        table: &str,
        event: TriggerEvent,
        condition: Option<&str>,
        action: &str,
    ) -> Result<(), InstanceError> {
        if self.triggers.iter().any(|t| t.name == name) {
            return Err(InstanceError::DuplicateTrigger(name.into()));
        }
        let table = self.db.table_id(table)?;
        let condition = condition.map(parse_expr).transpose()?;
        let action = parse_op_block(action)?;
        self.triggers.push(std::sync::Arc::new(RowTrigger {
            name: name.into(),
            table,
            event,
            condition,
            action,
        }));
        Ok(())
    }

    /// Run a read-only query.
    pub fn query(&self, sql: &str) -> Result<Relation, InstanceError> {
        match parse_statement(sql)? {
            Statement::Dml(DmlOp::Select(sel)) => Ok(execute_query_with_stats(
                &self.db,
                &NoTransitionTables,
                &sel,
                Some(&self.qstats),
            )?),
            _ => Err(InstanceError::Unsupported("query() accepts only select".into())),
        }
    }

    /// Execute a `;`-separated block of DML statements, firing triggers
    /// row by row. Returns the number of directly affected rows.
    pub fn execute(&mut self, sql: &str) -> Result<usize, InstanceError> {
        let ops = parse_op_block(sql)?;
        let mut total = 0;
        for op in &ops {
            total += self.execute_dml(op, 0)?;
        }
        self.db.commit();
        Ok(total)
    }

    fn execute_dml(&mut self, op: &DmlOp, depth: usize) -> Result<usize, InstanceError> {
        if depth > self.max_depth {
            return Err(InstanceError::RecursionLimit(self.max_depth));
        }
        // Plan set-oriented-ly (one statement = one logical change set),
        // then apply + fire per row.
        self.stats.statements_executed += 1;
        let eff = execute_op_with_stats(&mut self.db, &NoTransitionTables, op, Some(&self.qstats))?;
        match eff {
            OpEffect::Insert { table, handles } => {
                let n = handles.len();
                for h in handles {
                    let new = self.db.get(table, h).cloned();
                    self.fire(table, TriggerSlot::Insert, None, new, depth)?;
                }
                Ok(n)
            }
            OpEffect::Delete { table, tuples } => {
                let n = tuples.len();
                for (_, old) in tuples {
                    self.fire(table, TriggerSlot::Delete, Some(old), None, depth)?;
                }
                Ok(n)
            }
            OpEffect::Update { table, tuples } => {
                let n = tuples.len();
                for (h, cols, old) in tuples {
                    let new = self.db.get(table, h).cloned();
                    self.fire(table, TriggerSlot::Update(cols), Some(old), new, depth)?;
                }
                Ok(n)
            }
            OpEffect::Select { output, .. } => Ok(output.len()),
        }
    }

    fn fire(
        &mut self,
        table: TableId,
        slot: TriggerSlot,
        old: Option<Tuple>,
        new: Option<Tuple>,
        depth: usize,
    ) -> Result<(), InstanceError> {
        // Collect matching triggers first (the trigger list is stable
        // during a statement); Arc clones keep per-row firing cheap.
        let matching: Vec<std::sync::Arc<RowTrigger>> = self
            .triggers
            .iter()
            .filter(|t| t.table == table && slot.matches(&t.event, &self.db, table))
            .cloned()
            .collect();
        for trig in matching {
            self.stats.triggers_considered += 1;
            let schema = self.db.schema(table).clone();
            let env = RowEnv { schema: &schema, old: old.as_ref(), new: new.as_ref() };
            if let Some(cond) = &trig.condition {
                let bound = crate::subst::bind_expr(cond, env)?;
                let ctx = QueryCtx::plain(&self.db).with_stats(Some(&self.qstats));
                let mut b = setrules_query::bindings::Bindings::new();
                if !eval_predicate(ctx, &mut b, None, &bound)? {
                    self.stats.conditions_false += 1;
                    continue;
                }
            }
            self.firings += 1;
            self.stats.triggers_fired += 1;
            for action_op in &trig.action {
                let bound = bind_op(action_op, env)?;
                self.execute_dml(&bound, depth + 1)?;
            }
        }
        Ok(())
    }
}

/// Internal event-slot used when matching fired rows to triggers.
enum TriggerSlot {
    Insert,
    Delete,
    Update(Vec<ColumnId>),
}

impl TriggerSlot {
    fn matches(&self, event: &TriggerEvent, db: &Database, table: TableId) -> bool {
        match (self, event) {
            (TriggerSlot::Insert, TriggerEvent::Insert) => true,
            (TriggerSlot::Delete, TriggerEvent::Delete) => true,
            (TriggerSlot::Update(_), TriggerEvent::Update(None)) => true,
            (TriggerSlot::Update(cols), TriggerEvent::Update(Some(c))) => db
                .schema(table)
                .column_id(c)
                .map(|cid| cols.contains(&cid))
                .unwrap_or(false),
            _ => false,
        }
    }
}
