//! Substitution of `old.c` / `new.c` pseudo-row references in trigger
//! bodies with literal values from the current row.
//!
//! Instance-oriented triggers are "applied once for each data item" (paper
//! §1); the classic surface for that is per-row `OLD`/`NEW` bindings.
//! Binding by literal substitution keeps the query layer unchanged and
//! makes each per-row action an ordinary statement — which is exactly the
//! per-row overhead the set-oriented design avoids.

use setrules_sql::ast::{DeleteStmt, DmlOp, Expr, InsertSource, InsertStmt, SelectItem, SelectStmt, UpdateStmt};
use setrules_storage::{TableSchema, Tuple, Value};

/// The pseudo-rows available to a trigger body.
#[derive(Debug, Clone, Copy)]
pub struct RowEnv<'a> {
    /// The row's table schema (for column lookup).
    pub schema: &'a TableSchema,
    /// `old.*` values (delete/update triggers).
    pub old: Option<&'a Tuple>,
    /// `new.*` values (insert/update triggers).
    pub new: Option<&'a Tuple>,
}

/// Error for unresolvable pseudo-row references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstError(pub String);

impl std::fmt::Display for SubstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SubstError {}

impl RowEnv<'_> {
    fn lookup(&self, which: &str, column: &str) -> Result<Value, SubstError> {
        let row = match which {
            "old" => self.old,
            "new" => self.new,
            _ => unreachable!("caller filters"),
        }
        .ok_or_else(|| SubstError(format!("'{which}' row is not available for this trigger event")))?;
        let c = self
            .schema
            .column_id(column)
            .map_err(|_| SubstError(format!("no column '{column}' in '{}'", self.schema.name)))?;
        Ok(row.get(c).clone())
    }
}

/// Substitute `old.c` / `new.c` throughout an operation.
pub fn bind_op(op: &DmlOp, env: RowEnv<'_>) -> Result<DmlOp, SubstError> {
    Ok(match op {
        DmlOp::Insert(i) => DmlOp::Insert(InsertStmt {
            table: i.table.clone(),
            source: match &i.source {
                InsertSource::Values(rows) => InsertSource::Values(
                    rows.iter()
                        .map(|row| row.iter().map(|e| bind_expr(e, env)).collect())
                        .collect::<Result<_, _>>()?,
                ),
                InsertSource::Select(s) => InsertSource::Select(Box::new(bind_select(s, env)?)),
            },
        }),
        DmlOp::Delete(d) => DmlOp::Delete(DeleteStmt {
            table: d.table.clone(),
            predicate: d.predicate.as_ref().map(|p| bind_expr(p, env)).transpose()?,
        }),
        DmlOp::Update(u) => DmlOp::Update(UpdateStmt {
            table: u.table.clone(),
            sets: u
                .sets
                .iter()
                .map(|(c, e)| Ok((c.clone(), bind_expr(e, env)?)))
                .collect::<Result<_, SubstError>>()?,
            predicate: u.predicate.as_ref().map(|p| bind_expr(p, env)).transpose()?,
        }),
        DmlOp::Select(s) => DmlOp::Select(bind_select(s, env)?),
    })
}

/// Substitute within an expression.
pub fn bind_expr(e: &Expr, env: RowEnv<'_>) -> Result<Expr, SubstError> {
    Ok(match e {
        Expr::Column { qualifier: Some(q), name } if q == "old" || q == "new" => {
            Expr::Literal(env.lookup(q, name)?)
        }
        Expr::Literal(_) | Expr::Column { .. } => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary { op: *op, expr: Box::new(bind_expr(expr, env)?) },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(bind_expr(left, env)?),
            op: *op,
            right: Box::new(bind_expr(right, env)?),
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(bind_expr(expr, env)?), negated: *negated }
        }
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(bind_expr(expr, env)?),
            list: list.iter().map(|i| bind_expr(i, env)).collect::<Result<_, _>>()?,
            negated: *negated,
        },
        Expr::InSubquery { expr, subquery, negated } => Expr::InSubquery {
            expr: Box::new(bind_expr(expr, env)?),
            subquery: Box::new(bind_select(subquery, env)?),
            negated: *negated,
        },
        Expr::Exists { subquery, negated } => Expr::Exists {
            subquery: Box::new(bind_select(subquery, env)?),
            negated: *negated,
        },
        Expr::ScalarSubquery(s) => Expr::ScalarSubquery(Box::new(bind_select(s, env)?)),
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(bind_expr(expr, env)?),
            low: Box::new(bind_expr(low, env)?),
            high: Box::new(bind_expr(high, env)?),
            negated: *negated,
        },
        Expr::Like { expr, pattern, escape, negated } => Expr::Like {
            expr: Box::new(bind_expr(expr, env)?),
            pattern: Box::new(bind_expr(pattern, env)?),
            escape: escape.as_ref().map(|e| bind_expr(e, env).map(Box::new)).transpose()?,
            negated: *negated,
        },
        Expr::Aggregate { func, arg, distinct } => Expr::Aggregate {
            func: *func,
            arg: arg.as_ref().map(|a| bind_expr(a, env)).transpose()?.map(Box::new),
            distinct: *distinct,
        },
    })
}

fn bind_select(s: &SelectStmt, env: RowEnv<'_>) -> Result<SelectStmt, SubstError> {
    Ok(SelectStmt {
        distinct: s.distinct,
        projection: s
            .projection
            .iter()
            .map(|item| {
                Ok(match item {
                    SelectItem::Expr { expr, alias } => {
                        SelectItem::Expr { expr: bind_expr(expr, env)?, alias: alias.clone() }
                    }
                    other => other.clone(),
                })
            })
            .collect::<Result<_, SubstError>>()?,
        from: s.from.clone(),
        predicate: s.predicate.as_ref().map(|p| bind_expr(p, env)).transpose()?,
        group_by: s.group_by.iter().map(|e| bind_expr(e, env)).collect::<Result<_, _>>()?,
        having: s.having.as_ref().map(|h| bind_expr(h, env)).transpose()?,
        order_by: s
            .order_by
            .iter()
            .map(|(e, asc)| Ok((bind_expr(e, env)?, *asc)))
            .collect::<Result<_, SubstError>>()?,
        limit: s.limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_sql::{parse_expr, parse_op_block};
    use setrules_storage::{paper_example_schemas, tuple};

    #[test]
    fn substitutes_old_and_new() {
        let (emp, _) = paper_example_schemas();
        let old = tuple!["Jane", 1, 100.0, 1];
        let new = tuple!["Jane", 1, 200.0, 1];
        let env = RowEnv { schema: &emp, old: Some(&old), new: Some(&new) };
        let e = parse_expr("new.salary - old.salary > 50").unwrap();
        let bound = bind_expr(&e, env).unwrap();
        assert_eq!(bound.to_string(), "((200.0 - 100.0) > 50)");
    }

    #[test]
    fn missing_pseudo_row_is_an_error() {
        let (emp, _) = paper_example_schemas();
        let new = tuple!["Jane", 1, 200.0, 1];
        let env = RowEnv { schema: &emp, old: None, new: Some(&new) };
        let e = parse_expr("old.salary > 0").unwrap();
        assert!(bind_expr(&e, env).is_err());
    }

    #[test]
    fn unknown_column_is_an_error() {
        let (emp, _) = paper_example_schemas();
        let new = tuple!["Jane", 1, 200.0, 1];
        let env = RowEnv { schema: &emp, old: None, new: Some(&new) };
        assert!(bind_expr(&parse_expr("new.bogus > 0").unwrap(), env).is_err());
    }

    #[test]
    fn binds_inside_ops_and_subqueries() {
        let (emp, _) = paper_example_schemas();
        let old = tuple!["Jane", 1, 100.0, 7];
        let env = RowEnv { schema: &emp, old: Some(&old), new: None };
        let ops = parse_op_block(
            "delete from emp where dept_no in (select dept_no from dept where dept_no = old.dept_no)",
        )
        .unwrap();
        let bound = bind_op(&ops[0], env).unwrap();
        assert!(bound.to_string().contains("= 7"), "{bound}");
    }

    #[test]
    fn ordinary_qualifiers_untouched() {
        let (emp, _) = paper_example_schemas();
        let new = tuple!["Jane", 1, 200.0, 1];
        let env = RowEnv { schema: &emp, old: None, new: Some(&new) };
        let e = parse_expr("e.salary > new.salary").unwrap();
        let bound = bind_expr(&e, env).unwrap();
        assert_eq!(bound.to_string(), "(e.salary > 200.0)");
    }
}
