//! # setrules-instance
//!
//! An **instance-oriented** (per-row) trigger engine over the same storage
//! and query substrate as `setrules-core` — the baseline design the paper
//! contrasts with (§1: "rules that are applied once for each data item
//! satisfying the condition part of the rule", as in `[Esw76, MD89,
//! SJGP90]`).
//!
//! Triggers fire once per affected row, immediately, with `old.c` /
//! `new.c` pseudo-row bindings; their actions are ordinary statements that
//! recurse through the same per-row path. Benchmark B1 uses this engine to
//! regenerate the paper's qualitative claim that set-oriented rules admit
//! efficient set-oriented execution while per-row triggers pay a per-tuple
//! statement cost.
//!
//! ```
//! use setrules_instance::{InstanceEngine, TriggerEvent};
//!
//! let mut eng = InstanceEngine::new();
//! eng.create_table("create table dept (dept_no int, mgr_no int)").unwrap();
//! eng.create_table("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
//! // Per-row cascaded delete: Example 3.1, instance-oriented.
//! eng.create_trigger("cascade", "dept", TriggerEvent::Delete, None,
//!     "delete from emp where dept_no = old.dept_no").unwrap();
//! eng.execute("insert into dept values (1, 10)").unwrap();
//! eng.execute("insert into emp values ('Jane', 10, 9.5, 1)").unwrap();
//! eng.execute("delete from dept where dept_no = 1").unwrap();
//! assert!(eng.query("select * from emp").unwrap().is_empty());
//! ```

#![warn(missing_docs)]

mod engine;
pub mod stats;
pub mod subst;

pub use engine::{InstanceEngine, InstanceError, RowTrigger, TriggerEvent};
pub use stats::InstanceStats;
pub use subst::{bind_expr, bind_op, RowEnv, SubstError};

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_storage::Value;

    fn emp_dept() -> InstanceEngine {
        let mut eng = InstanceEngine::new();
        eng.create_table("create table dept (dept_no int, mgr_no int)").unwrap();
        eng.create_table("create table emp (name text, emp_no int, salary float, dept_no int)")
            .unwrap();
        eng
    }

    #[test]
    fn insert_trigger_fires_per_row() {
        let mut eng = emp_dept();
        eng.create_table("create table log (n int)").unwrap();
        eng.create_trigger("audit", "emp", TriggerEvent::Insert, None, "insert into log values (new.emp_no)")
            .unwrap();
        eng.execute("insert into emp values ('a', 1, 1.0, 1), ('b', 2, 1.0, 1)").unwrap();
        assert_eq!(eng.firings(), 2, "instance-oriented: one firing per row");
        let rel = eng.query("select n from log order by n").unwrap();
        assert_eq!(rel.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn delete_trigger_cascades_per_row() {
        let mut eng = emp_dept();
        eng.create_trigger(
            "cascade",
            "dept",
            TriggerEvent::Delete,
            None,
            "delete from emp where dept_no = old.dept_no",
        )
        .unwrap();
        eng.execute("insert into dept values (1, 10), (2, 20)").unwrap();
        eng.execute("insert into emp values ('a', 1, 1.0, 1), ('b', 2, 1.0, 2), ('c', 3, 1.0, 2)")
            .unwrap();
        eng.execute("delete from dept").unwrap();
        assert_eq!(eng.firings(), 2, "one firing per deleted dept row");
        assert!(eng.query("select * from emp").unwrap().is_empty());
    }

    #[test]
    fn update_trigger_with_column_filter_and_condition() {
        let mut eng = emp_dept();
        eng.create_table("create table log (n float)").unwrap();
        eng.create_trigger(
            "raise_watch",
            "emp",
            TriggerEvent::Update(Some("salary".into())),
            Some("new.salary > old.salary"),
            "insert into log values (new.salary - old.salary)",
        )
        .unwrap();
        eng.execute("insert into emp values ('a', 1, 100.0, 1)").unwrap();
        eng.execute("update emp set salary = 150.0").unwrap(); // raise → fires
        eng.execute("update emp set salary = 120.0").unwrap(); // cut → condition false
        eng.execute("update emp set dept_no = 2").unwrap(); // other column → no match
        assert_eq!(eng.firings(), 1);
        let rel = eng.query("select n from log").unwrap();
        assert_eq!(rel.rows, vec![vec![Value::Float(50.0)]]);
    }

    #[test]
    fn recursive_triggers_cascade_transitively() {
        // Manager-cascade (Example 4.1) done per row: deleting an employee
        // deletes their reports, recursively.
        let mut eng = emp_dept();
        eng.create_trigger(
            "mgr_cascade",
            "emp",
            TriggerEvent::Delete,
            None,
            "delete from emp where dept_no in (select dept_no from dept where mgr_no = old.emp_no); \
             delete from dept where mgr_no = old.emp_no",
        )
        .unwrap();
        eng.execute("insert into dept values (1, 1), (2, 2)").unwrap();
        eng.execute(
            "insert into emp values ('r', 1, 1.0, 0), ('m1', 2, 1.0, 1), \
             ('m2', 3, 1.0, 1), ('w1', 4, 1.0, 2), ('w2', 5, 1.0, 2)",
        )
        .unwrap();
        eng.execute("delete from emp where name = 'r'").unwrap();
        assert!(eng.query("select * from emp").unwrap().is_empty());
        assert!(eng.query("select * from dept").unwrap().is_empty());
        // Per-row firings: r, m1, m2, w1, w2 = 5 (vs 3 set-oriented
        // transitions in the rule engine).
        assert_eq!(eng.firings(), 5);
    }

    #[test]
    fn runaway_recursion_hits_depth_limit() {
        let mut eng = emp_dept();
        eng.create_table("create table ping (n int)").unwrap();
        eng.create_trigger("loop", "ping", TriggerEvent::Insert, None, "insert into ping values (new.n + 1)")
            .unwrap();
        let err = eng.execute("insert into ping values (0)").unwrap_err();
        assert!(matches!(err, InstanceError::RecursionLimit(_)));
    }

    #[test]
    fn duplicate_trigger_rejected() {
        let mut eng = emp_dept();
        eng.create_trigger("t1", "emp", TriggerEvent::Insert, None, "delete from dept").unwrap();
        let err = eng
            .create_trigger("t1", "emp", TriggerEvent::Insert, None, "delete from dept")
            .unwrap_err();
        assert!(matches!(err, InstanceError::DuplicateTrigger(_)));
    }

    #[test]
    fn instance_vs_set_orientation_difference() {
        // The paper's key observation: an instance-oriented rule sees one
        // row at a time, so a "total salary" style condition cannot be
        // expressed over the change set — here each row-level firing sees
        // only its own delta.
        let mut eng = emp_dept();
        eng.create_table("create table log (n float)").unwrap();
        eng.create_trigger(
            "delta",
            "emp",
            TriggerEvent::Update(Some("salary".into())),
            None,
            "insert into log values (new.salary - old.salary)",
        )
        .unwrap();
        eng.execute("insert into emp values ('a', 1, 100.0, 1), ('b', 2, 100.0, 1)").unwrap();
        eng.execute("update emp set salary = salary + 10").unwrap();
        let rel = eng.query("select count(*) from log").unwrap();
        assert_eq!(rel.scalar().unwrap(), &Value::Int(2), "two per-row deltas, not one set");
    }
}
