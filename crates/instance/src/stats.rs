//! Mirror counters for set-vs-instance comparisons.
//!
//! [`InstanceStats`] counts the per-row engine's work in the same
//! vocabulary as `setrules-core`'s `EngineStats` (considerations,
//! condition-false outcomes, firings), so benchmark B1 and the
//! differential tests can put the two engines side by side. The physical
//! half of the comparison comes from the shared storage layer
//! (`Database::stats().tuples_touched()`), which both engines report
//! identically by construction.

use setrules_json::Json;

/// Cumulative counters of per-row trigger work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstanceStats {
    /// DML statements executed, including trigger-action recursion (each
    /// per-row action statement counts once).
    pub statements_executed: u64,
    /// Per-row trigger activations examined (a matching trigger on an
    /// affected row, before its condition ran).
    pub triggers_considered: u64,
    /// Activations whose condition evaluated to not-true.
    pub conditions_false: u64,
    /// Activations whose action ran (one per affected row — the
    /// instance-oriented analogue of a rule execution).
    pub triggers_fired: u64,
}

impl InstanceStats {
    /// Counter-wise sum.
    pub fn plus(&self, other: &InstanceStats) -> InstanceStats {
        InstanceStats {
            statements_executed: self.statements_executed + other.statements_executed,
            triggers_considered: self.triggers_considered + other.triggers_considered,
            conditions_false: self.conditions_false + other.conditions_false,
            triggers_fired: self.triggers_fired + other.triggers_fired,
        }
    }

    /// Counter-wise difference from an earlier snapshot.
    pub fn since(&self, earlier: &InstanceStats) -> InstanceStats {
        InstanceStats {
            statements_executed: self.statements_executed - earlier.statements_executed,
            triggers_considered: self.triggers_considered - earlier.triggers_considered,
            conditions_false: self.conditions_false - earlier.conditions_false,
            triggers_fired: self.triggers_fired - earlier.triggers_fired,
        }
    }

    /// JSON object with one field per counter.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("statements_executed", Json::Int(self.statements_executed as i64)),
            ("triggers_considered", Json::Int(self.triggers_considered as i64)),
            ("conditions_false", Json::Int(self.conditions_false as i64)),
            ("triggers_fired", Json::Int(self.triggers_fired as i64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_and_since_are_inverse() {
        let a = InstanceStats { statements_executed: 2, triggers_fired: 1, ..Default::default() };
        let b = InstanceStats {
            statements_executed: 9,
            triggers_considered: 4,
            conditions_false: 1,
            triggers_fired: 3,
        };
        assert_eq!(a.plus(&b.since(&a)), b);
    }

    #[test]
    fn json_has_all_counters() {
        let j = InstanceStats { triggers_fired: 2, ..Default::default() }.to_json();
        assert_eq!(j.get("triggers_fired").unwrap().as_i64(), Some(2));
        assert_eq!(j.as_object().unwrap().len(), 4);
    }
}
