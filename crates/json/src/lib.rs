//! # setrules-json
//!
//! A small, dependency-free JSON library: one [`Json`] value type, a
//! recursive-descent [parser](Json::parse), and compact / pretty writers.
//!
//! The rest of the workspace uses it wherever structured data crosses a
//! process boundary: [`Snapshot`](../setrules_core/struct.Snapshot.html)
//! round-trips, the engine's JSON-lines event sink, the REPL's `\json`
//! command, and the `BENCH_*.json` counter snapshots written by the
//! benchmark suite.
//!
//! Design notes:
//!
//! * Integers and floats are distinct variants ([`Json::Int`] /
//!   [`Json::Float`]); the writer always renders floats with a decimal
//!   point or exponent (`1.0`, not `1`) and the parser classifies a
//!   number as a float exactly when it contains `.`, `e`, or `E` — so a
//!   value round-trips to the same variant.
//! * Objects preserve insertion order (`Vec<(String, Json)>`), keeping
//!   output deterministic and diffs stable.
//! * Non-finite floats, which JSON cannot represent, are rejected by the
//!   writer helpers ([`Json::float`] maps them to `null`).

#![warn(missing_docs)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// A number with fractional part or exponent (always finite).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
}

/// A parse error: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build a float value; non-finite inputs become `null` (JSON has no
    /// NaN or infinity).
    pub fn float(f: f64) -> Json {
        if f.is_finite() {
            Json::Float(f)
        } else {
            Json::Null
        }
    }

    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view (exact).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Unsigned view of an integer, if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// Numeric view (`Int` widens to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object view (ordered key/value pairs).
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Writing
    // ------------------------------------------------------------------

    /// Render on one line with no extra whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` always includes a decimal point or exponent,
                    // so the value reparses as Float.
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    // ------------------------------------------------------------------
    // Parsing
    // ------------------------------------------------------------------

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..(w * depth) {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Decode surrogate pairs; lone surrogates are
                            // replaced rather than rejected.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if is_float {
            text.parse::<f64>().map(Json::Float).map_err(|_| self.err("invalid float"))
        } else {
            // Integers too large for i64 fall back to float.
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => {
                    text.parse::<f64>().map(Json::Float).map_err(|_| self.err("invalid number"))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-7", Json::Int(-7)),
            ("2.5", Json::Float(2.5)),
            ("95000.0", Json::Float(95000.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value, "{text}");
            assert_eq!(Json::parse(&value.compact()).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn int_float_distinction_survives() {
        let v = Json::Array(vec![Json::Int(3), Json::Float(3.0)]);
        let back = Json::parse(&v.compact()).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.as_array().unwrap()[0], Json::Int(3));
        assert_eq!(back.as_array().unwrap()[1], Json::Float(3.0));
    }

    #[test]
    fn nested_structure_round_trips_pretty_and_compact() {
        let v = Json::obj([
            ("name", Json::Str("emp".into())),
            ("rows", Json::Array(vec![
                Json::Array(vec![Json::Str("Jane".into()), Json::Int(1), Json::Float(95000.0)]),
                Json::Array(vec![Json::Null, Json::Bool(true)]),
            ])),
            ("empty_obj", Json::obj(Vec::<(String, Json)>::new())),
            ("empty_arr", Json::Array(vec![])),
        ]);
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ unicode: \u{263A} nul:\u{1}";
        let v = Json::Str(s.into());
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
        // Standard escape forms parse too.
        assert_eq!(
            Json::parse(r#""aA☺😀b""#).unwrap(),
            Json::Str("aA\u{263a}\u{1F600}b".into())
        );
    }

    #[test]
    fn object_preserves_key_order() {
        let parsed = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> =
            parsed.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("01x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("true false").is_err(), "trailing garbage");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "f": 1.5, "s": "x", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::float(f64::NAN), Json::Null);
        assert_eq!(Json::Float(f64::INFINITY).compact(), "null");
    }
}
