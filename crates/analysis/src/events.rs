//! Write/read footprints of rule actions.
//!
//! The analyzer abstracts each rule's action into the set of *events* it
//! may produce — inserts, deletes, and column updates per table — and the
//! set of tables it may read. Event sets are syntactic and conservative:
//! an `update t set c = …` *may* update `t.c` (whether it actually does
//! depends on data), an external action may do anything.

use std::collections::BTreeSet;

use setrules_core::rule::collect_tables_op;
use setrules_core::{CompiledAction, Rule};
use setrules_sql::ast::DmlOp;
use setrules_storage::{ColumnId, Database, TableId};

/// One kind of change (or read) an action may produce.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ActionEvent {
    /// May insert into the table.
    Insert(TableId),
    /// May delete from the table.
    Delete(TableId),
    /// May update the given column of the table.
    Update(TableId, ColumnId),
    /// Contains a top-level `select` from the table (relevant when the
    /// engine tracks selects, §5.1).
    Select(TableId),
}

/// The abstract footprint of one rule's action.
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    /// Events the action may produce.
    pub events: BTreeSet<ActionEvent>,
    /// Tables the action or condition may read.
    pub reads: BTreeSet<TableId>,
    /// `true` for external actions (anything is possible) — treated as
    /// producing every event on every table.
    pub opaque: bool,
    /// `true` for rollback actions (no events at all).
    pub rollback: bool,
}

/// Compute the footprint of a rule against the catalog.
pub fn footprint(db: &Database, rule: &Rule) -> Footprint {
    // Reads: every table mentioned by the condition or action (the
    // compiled rule already gathered them) — conservative.
    let mut fp = Footprint { reads: rule.referenced_tables.clone(), ..Footprint::default() };

    match &rule.action {
        CompiledAction::Rollback => {
            fp.rollback = true;
        }
        CompiledAction::External(_) => {
            fp.opaque = true;
        }
        CompiledAction::Block(ops) => {
            for op in ops.iter() {
                match op {
                    DmlOp::Insert(i) => {
                        if let Ok(t) = db.table_id(&i.table) {
                            fp.events.insert(ActionEvent::Insert(t));
                        }
                    }
                    DmlOp::Delete(d) => {
                        if let Ok(t) = db.table_id(&d.table) {
                            fp.events.insert(ActionEvent::Delete(t));
                        }
                    }
                    DmlOp::Update(u) => {
                        if let Ok(t) = db.table_id(&u.table) {
                            let schema = db.schema(t);
                            for (col, _) in &u.sets {
                                if let Ok(c) = schema.column_id(col) {
                                    fp.events.insert(ActionEvent::Update(t, c));
                                }
                            }
                        }
                    }
                    DmlOp::Select(_) => {
                        let mut names = BTreeSet::new();
                        collect_tables_op(op, &mut names);
                        for n in names {
                            if let Ok(t) = db.table_id(&n) {
                                fp.events.insert(ActionEvent::Select(t));
                            }
                        }
                    }
                }
            }
        }
    }
    fp
}

/// Tables an action writes (insert/delete/update targets).
pub fn write_targets(fp: &Footprint) -> BTreeSet<TableId> {
    fp.events
        .iter()
        .filter_map(|e| match e {
            ActionEvent::Insert(t) | ActionEvent::Delete(t) | ActionEvent::Update(t, _) => Some(*t),
            ActionEvent::Select(_) => None,
        })
        .collect()
}
