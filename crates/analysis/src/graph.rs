//! The triggering graph: which rules can trigger which.
//!
//! There is an edge `a → b` when executing `a`'s action may produce a
//! transition whose effect satisfies one of `b`'s basic transition
//! predicates. External actions are opaque and conservatively assumed to
//! trigger everything; `rollback` actions trigger nothing (the transaction
//! ends).

use std::collections::{BTreeMap, BTreeSet};

use setrules_core::{CompiledPred, RuleId, RuleSystem};

use crate::events::{footprint, ActionEvent, Footprint};

/// Whether one action event can satisfy one basic transition predicate.
pub fn event_satisfies(e: &ActionEvent, p: &CompiledPred, track_selects: bool) -> bool {
    match (e, p) {
        (ActionEvent::Insert(t), CompiledPred::Inserted(pt)) => t == pt,
        (ActionEvent::Delete(t), CompiledPred::Deleted(pt)) => t == pt,
        (ActionEvent::Update(t, c), CompiledPred::Updated(pt, pc)) => {
            t == pt && pc.is_none_or(|pc| *c == pc)
        }
        (ActionEvent::Select(t), CompiledPred::Selected(pt, _)) => track_selects && t == pt,
        _ => false,
    }
}

/// The triggering graph over a rule set.
#[derive(Debug, Clone)]
pub struct TriggerGraph {
    /// Rule ids in creation order (nodes).
    pub nodes: Vec<RuleId>,
    /// Display names per node.
    pub names: BTreeMap<RuleId, String>,
    /// Adjacency: `edges[a]` = rules that `a` may trigger.
    pub edges: BTreeMap<RuleId, BTreeSet<RuleId>>,
    /// Per-rule footprints (kept for the conflict analysis).
    pub footprints: BTreeMap<RuleId, Footprint>,
}

impl TriggerGraph {
    /// Build the graph for all defined rules of a system.
    pub fn build(sys: &RuleSystem) -> TriggerGraph {
        let db = sys.database();
        let track_selects = sys.config().track_selects;
        let rules: Vec<_> = sys.rules().collect();
        let mut g = TriggerGraph {
            nodes: rules.iter().map(|r| r.id).collect(),
            names: rules.iter().map(|r| (r.id, r.name.clone())).collect(),
            edges: BTreeMap::new(),
            footprints: BTreeMap::new(),
        };
        for r in &rules {
            g.footprints.insert(r.id, footprint(db, r));
        }
        for a in &rules {
            let fp = &g.footprints[&a.id];
            let mut out = BTreeSet::new();
            for b in &rules {
                let can_trigger = if fp.opaque {
                    true
                } else {
                    fp.events.iter().any(|e| {
                        b.when.iter().any(|p| event_satisfies(e, p, track_selects))
                    })
                };
                if can_trigger {
                    out.insert(b.id);
                }
            }
            g.edges.insert(a.id, out);
        }
        g
    }

    /// Whether `a` may trigger `b`.
    pub fn triggers(&self, a: RuleId, b: RuleId) -> bool {
        self.edges.get(&a).is_some_and(|s| s.contains(&b))
    }

    /// Render the graph in Graphviz `dot` syntax. Rules with opaque
    /// (external) actions are drawn as diamonds, rollback rules as
    /// octagons; self-loops and cycles are what the §6 analysis warns
    /// about.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph triggering {\n    rankdir=LR;\n");
        for id in &self.nodes {
            let fp = &self.footprints[id];
            let shape = if fp.opaque {
                "diamond"
            } else if fp.rollback {
                "octagon"
            } else {
                "box"
            };
            let _ = writeln!(out, "    {} [label=\"{}\", shape={shape}];", id.0, self.names[id]);
        }
        for (a, succs) in &self.edges {
            for b in succs {
                let _ = writeln!(out, "    {} -> {};", a.0, b.0);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Strongly connected components (Tarjan), in discovery order. Each
    /// component is a sorted list of rule ids.
    pub fn sccs(&self) -> Vec<Vec<RuleId>> {
        struct State<'g> {
            g: &'g TriggerGraph,
            index: BTreeMap<RuleId, usize>,
            low: BTreeMap<RuleId, usize>,
            on_stack: BTreeSet<RuleId>,
            stack: Vec<RuleId>,
            next: usize,
            out: Vec<Vec<RuleId>>,
        }
        fn strongconnect(s: &mut State<'_>, v: RuleId) {
            s.index.insert(v, s.next);
            s.low.insert(v, s.next);
            s.next += 1;
            s.stack.push(v);
            s.on_stack.insert(v);
            let succs: Vec<RuleId> =
                s.g.edges.get(&v).map(|e| e.iter().copied().collect()).unwrap_or_default();
            for w in succs {
                if !s.index.contains_key(&w) {
                    strongconnect(s, w);
                    let lw = s.low[&w];
                    let lv = s.low[&v];
                    s.low.insert(v, lv.min(lw));
                } else if s.on_stack.contains(&w) {
                    let iw = s.index[&w];
                    let lv = s.low[&v];
                    s.low.insert(v, lv.min(iw));
                }
            }
            if s.low[&v] == s.index[&v] {
                let mut comp = Vec::new();
                while let Some(w) = s.stack.pop() {
                    s.on_stack.remove(&w);
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                comp.sort();
                s.out.push(comp);
            }
        }
        let mut st = State {
            g: self,
            index: BTreeMap::new(),
            low: BTreeMap::new(),
            on_stack: BTreeSet::new(),
            stack: Vec::new(),
            next: 0,
            out: Vec::new(),
        };
        for v in &self.nodes {
            if !st.index.contains_key(v) {
                strongconnect(&mut st, *v);
            }
        }
        st.out
    }
}
