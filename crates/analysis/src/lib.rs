//! # setrules-analysis
//!
//! Static analysis of set-oriented production rule sets — the §6 "future
//! work" of Widom & Finkelstein (SIGMOD 1990), built here: a triggering
//! graph over the defined rules, SCC-based warnings for potential infinite
//! loops (footnote 7), and order-dependence warnings for unordered rule
//! pairs whose actions interfere (§4.4/§6).
//!
//! ```
//! use setrules_core::RuleSystem;
//! use setrules_analysis::analyze;
//!
//! let mut sys = RuleSystem::new();
//! sys.execute("create table t (v int)").unwrap();
//! sys.execute("create rule bump when updated t.v then update t set v = v + 1").unwrap();
//! let report = analyze(&sys);
//! assert_eq!(report.loops.len(), 1, "bump can trigger itself forever");
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod graph;
pub mod report;

pub use events::{footprint, ActionEvent, Footprint};
pub use graph::{event_satisfies, TriggerGraph};
pub use report::{analyze, AnalysisReport, ConflictKind, ConflictWarning, LoopWarning};

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_core::RuleSystem;

    fn base() -> RuleSystem {
        let mut sys = RuleSystem::new();
        sys.execute("create table t (k int, v int)").unwrap();
        sys.execute("create table u (k int)").unwrap();
        sys.execute("create table log (k int)").unwrap();
        sys
    }

    #[test]
    fn self_loop_detected() {
        let mut sys = base();
        sys.execute("create rule bump when updated t.v then update t set v = v + 1").unwrap();
        let g = TriggerGraph::build(&sys);
        let id = sys.rule("bump").unwrap().id;
        assert!(g.triggers(id, id));
        let report = analyze(&sys);
        assert_eq!(report.loops.len(), 1);
        assert_eq!(report.loops[0].rules, vec!["bump"]);
    }

    #[test]
    fn column_granularity_avoids_false_self_loop() {
        let mut sys = base();
        // Watches t.v but writes only t.k: no self-loop.
        sys.execute("create rule safe when updated t.v then update t set k = k + 1").unwrap();
        let report = analyze(&sys);
        assert!(report.loops.is_empty(), "{report}");
    }

    #[test]
    fn two_rule_cycle_detected() {
        let mut sys = base();
        sys.execute("create rule ping when inserted into t then insert into u values (1)").unwrap();
        sys.execute("create rule pong when inserted into u then insert into t values (1, 1)").unwrap();
        let report = analyze(&sys);
        assert_eq!(report.loops.len(), 1);
        let mut rules = report.loops[0].rules.clone();
        rules.sort();
        assert_eq!(rules, vec!["ping", "pong"]);
    }

    #[test]
    fn acyclic_chain_is_clean_of_loops() {
        let mut sys = base();
        sys.execute("create rule a when inserted into t then insert into u values (1)").unwrap();
        sys.execute("create rule b when inserted into u then insert into log values (1)").unwrap();
        let report = analyze(&sys);
        assert!(report.loops.is_empty(), "{report}");
        let g = TriggerGraph::build(&sys);
        let (a, b) = (sys.rule("a").unwrap().id, sys.rule("b").unwrap().id);
        assert!(g.triggers(a, b));
        assert!(!g.triggers(b, a));
    }

    #[test]
    fn delete_insert_predicates_do_not_cross_match() {
        let mut sys = base();
        // Action deletes from t; watcher watches inserts into t — no edge.
        sys.execute("create rule a when inserted into u then delete from t").unwrap();
        sys.execute("create rule b when inserted into t then insert into log values (1)").unwrap();
        let g = TriggerGraph::build(&sys);
        let (a, b) = (sys.rule("a").unwrap().id, sys.rule("b").unwrap().id);
        assert!(!g.triggers(a, b));
    }

    #[test]
    fn write_write_conflict_reported_and_silenced_by_priority() {
        let mut sys = base();
        sys.execute("create rule w1 when inserted into t then update u set k = 1").unwrap();
        sys.execute("create rule w2 when inserted into t then delete from u").unwrap();
        let report = analyze(&sys);
        assert_eq!(report.conflicts.len(), 1);
        assert_eq!(report.conflicts[0].kind, ConflictKind::WriteWrite);
        assert_eq!(report.conflicts[0].tables, vec!["u"]);

        sys.execute("create rule priority w1 before w2").unwrap();
        let report = analyze(&sys);
        assert!(report.conflicts.is_empty(), "ordered rules do not conflict: {report}");
    }

    #[test]
    fn write_read_conflict_reported() {
        let mut sys = base();
        sys.execute("create rule writer when inserted into t then insert into u values (1)").unwrap();
        sys.execute(
            "create rule reader when inserted into t \
             if exists (select * from u) then insert into log values (1)",
        )
        .unwrap();
        let report = analyze(&sys);
        assert!(report
            .conflicts
            .iter()
            .any(|c| c.kind == ConflictKind::WriteRead && c.tables.contains(&"u".to_string())));
    }

    #[test]
    fn rollback_ordering_conflict() {
        let mut sys = base();
        // Conditional rollback: the worker's writes could flip the guard's
        // condition, so order matters.
        sys.execute(
            "create rule guard when inserted into t              if exists (select * from log) then rollback",
        )
        .unwrap();
        sys.execute("create rule worker when inserted into t then insert into log values (1)").unwrap();
        let report = analyze(&sys);
        assert!(report.conflicts.iter().any(|c| c.kind == ConflictKind::RollbackOrdering));
    }

    #[test]
    fn unconditional_rollback_is_not_a_conflict() {
        let mut sys = base();
        // This guard fires no matter what the worker does: order is moot.
        sys.execute("create rule guard when inserted into t then rollback").unwrap();
        sys.execute("create rule worker when inserted into t then insert into log values (1)").unwrap();
        let report = analyze(&sys);
        assert!(
            !report.conflicts.iter().any(|c| c.kind == ConflictKind::RollbackOrdering),
            "{report}"
        );
    }

    #[test]
    fn independent_rules_are_clean() {
        let mut sys = base();
        sys.execute("create rule a when inserted into t then insert into u values (1)").unwrap();
        sys.execute("create rule b when deleted from t then insert into log values (1)").unwrap();
        // a writes u, b writes log; both only read t (via predicates):
        // no interference.
        let report = analyze(&sys);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn external_action_is_opaque() {
        let mut sys = base();
        sys.create_rule_external(
            "native",
            "inserted into t",
            None,
            std::sync::Arc::new(|_: &mut setrules_core::ActionCtx<'_>| Ok(())),
        )
        .unwrap();
        sys.execute("create rule b when inserted into u then insert into log values (1)").unwrap();
        let g = TriggerGraph::build(&sys);
        let (n, b) = (sys.rule("native").unwrap().id, sys.rule("b").unwrap().id);
        assert!(g.triggers(n, b), "opaque actions may trigger anything");
    }

    #[test]
    fn dot_export() {
        let mut sys = base();
        sys.execute("create rule ping when inserted into t then insert into u values (1)").unwrap();
        sys.execute("create rule guard when inserted into u then rollback").unwrap();
        let dot = TriggerGraph::build(&sys).to_dot();
        assert!(dot.starts_with("digraph triggering {"), "{dot}");
        assert!(dot.contains("label=\"ping\", shape=box"), "{dot}");
        assert!(dot.contains("label=\"guard\", shape=octagon"), "{dot}");
        assert!(dot.contains("0 -> 1;"), "ping (id 0) triggers guard (id 1): {dot}");
    }

    #[test]
    fn report_display() {
        let mut sys = base();
        sys.execute("create rule bump when updated t.v then update t set v = v + 1").unwrap();
        let report = analyze(&sys);
        let text = report.to_string();
        assert!(text.contains("[loop]"), "{text}");
        assert!(text.contains("bump"), "{text}");
        assert!(analyze(&base()).to_string().contains("no warnings"));
    }
}
