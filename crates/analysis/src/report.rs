//! The analyzer's warnings: potential infinite loops and
//! order-dependence conflicts (§6: "the programmer might benefit from
//! knowing that a set of rules may create an infinite loop, or from
//! knowing that ordering between certain rules may affect the final
//! database state").

use std::collections::BTreeSet;
use std::fmt;

use setrules_core::{CompiledAction, RuleId, RuleSystem};

use crate::events::write_targets;
use crate::graph::TriggerGraph;

/// A set of rules that may trigger each other forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopWarning {
    /// The rules in the cycle (a single self-triggering rule, or a larger
    /// strongly connected component of the triggering graph).
    pub rules: Vec<String>,
}

impl fmt::Display for LoopWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rules.len() == 1 {
            write!(f, "rule '{}' may trigger itself indefinitely", self.rules[0])
        } else {
            write!(f, "rules {{{}}} may trigger each other indefinitely", self.rules.join(", "))
        }
    }
}

/// Why two rules' relative order can matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// One rule writes a table the other reads.
    WriteRead,
    /// Both rules write the same table.
    WriteWrite,
    /// One rule's action is `rollback`: whether the other runs at all
    /// depends on the order.
    RollbackOrdering,
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictKind::WriteRead => write!(f, "write/read interference"),
            ConflictKind::WriteWrite => write!(f, "write/write interference"),
            ConflictKind::RollbackOrdering => write!(f, "rollback ordering"),
        }
    }
}

/// Two unordered rules whose relative execution order may change the
/// final database state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictWarning {
    /// First rule (creation order).
    pub rule_a: String,
    /// Second rule.
    pub rule_b: String,
    /// Why the order matters.
    pub kind: ConflictKind,
    /// The tables involved.
    pub tables: Vec<String>,
}

impl fmt::Display for ConflictWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rules '{}' and '{}' are unordered but interfere ({}) on {{{}}} — \
             consider 'create rule priority'",
            self.rule_a,
            self.rule_b,
            self.kind,
            self.tables.join(", ")
        )
    }
}

/// The full analysis result.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Potential non-termination warnings.
    pub loops: Vec<LoopWarning>,
    /// Order-dependence warnings.
    pub conflicts: Vec<ConflictWarning>,
}

impl AnalysisReport {
    /// Whether the rule set is free of warnings.
    pub fn is_clean(&self) -> bool {
        self.loops.is_empty() && self.conflicts.is_empty()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "rule set analysis: no warnings");
        }
        writeln!(f, "rule set analysis: {} warning(s)", self.loops.len() + self.conflicts.len())?;
        for w in &self.loops {
            writeln!(f, "  [loop]     {w}")?;
        }
        for w in &self.conflicts {
            writeln!(f, "  [conflict] {w}")?;
        }
        Ok(())
    }
}

/// Analyze a system's rule set.
pub fn analyze(sys: &RuleSystem) -> AnalysisReport {
    let graph = TriggerGraph::build(sys);
    let mut report = AnalysisReport::default();

    // ------------------------------------------------------------------
    // Potential infinite loops: SCCs of size > 1, or self-loops.
    // ------------------------------------------------------------------
    for comp in graph.sccs() {
        let looping = comp.len() > 1 || (comp.len() == 1 && graph.triggers(comp[0], comp[0]));
        if looping {
            report.loops.push(LoopWarning {
                rules: comp.iter().map(|r| graph.names[r].clone()).collect(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Order-dependence: unordered pairs whose actions interfere.
    // ------------------------------------------------------------------
    let db = sys.database();
    let rules: Vec<_> = sys.rules().collect();
    let table_name = |t: setrules_storage::TableId| db.schema(t).name.clone();
    for (i, a) in rules.iter().enumerate() {
        for b in rules.iter().skip(i + 1) {
            if ordered(sys, a.id, b.id) {
                continue;
            }
            let fa = &graph.footprints[&a.id];
            let fb = &graph.footprints[&b.id];

            // A *conditional* rollback rule conflicts with any writer: the
            // writer may change data so the rollback condition flips, so
            // order decides whether the transaction survives. An
            // *unconditional* rollback fires regardless of order and is
            // not flagged.
            let conditional_rollback = |r: &setrules_core::Rule| {
                matches!(r.action, CompiledAction::Rollback) && r.condition.is_some()
            };
            if conditional_rollback(a) && !fb.rollback || conditional_rollback(b) && !fa.rollback {
                report.conflicts.push(ConflictWarning {
                    rule_a: a.name.clone(),
                    rule_b: b.name.clone(),
                    kind: ConflictKind::RollbackOrdering,
                    tables: Vec::new(),
                });
                continue;
            }

            let wa = if fa.opaque { fb.reads.clone() } else { write_targets(fa) };
            let wb = if fb.opaque { fa.reads.clone() } else { write_targets(fb) };
            let ww: BTreeSet<_> = wa.intersection(&wb).copied().collect();
            if !ww.is_empty() {
                report.conflicts.push(ConflictWarning {
                    rule_a: a.name.clone(),
                    rule_b: b.name.clone(),
                    kind: ConflictKind::WriteWrite,
                    tables: ww.into_iter().map(table_name).collect(),
                });
                continue;
            }
            let wr: BTreeSet<_> = wa
                .intersection(&fb.reads)
                .copied()
                .chain(wb.intersection(&fa.reads).copied())
                .collect();
            if !wr.is_empty() {
                report.conflicts.push(ConflictWarning {
                    rule_a: a.name.clone(),
                    rule_b: b.name.clone(),
                    kind: ConflictKind::WriteRead,
                    tables: wr.into_iter().map(table_name).collect(),
                });
            }
        }
    }
    report
}

fn ordered(sys: &RuleSystem, a: RuleId, b: RuleId) -> bool {
    sys.priorities().higher_than(a, b) || sys.priorities().higher_than(b, a)
}
