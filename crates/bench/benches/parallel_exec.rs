//! **B13 — deterministic intra-query parallelism** (partitioned scans,
//! parallel hash-join probe, parallel WHERE pass).
//!
//! One `emp` table with 100 000 rows (plus a 10-row `dept` dimension),
//! measured with the worker pool pinned to one thread versus all
//! available cores:
//!
//! * **filter scan**: a row-local predicate over all 100 000 rows,
//!   evaluated in contiguous partitions across the pool;
//! * **hash join**: `emp ⋈ dept` with a residual predicate — the build
//!   side is tiny, the 100 000-row probe side runs partitioned.
//!
//! Acceptance bars, asserted in-bench: both thread budgets return
//! **byte-identical relations** and identical row-level `ExecStats`
//! counters (parallelism is an execution strategy, never a semantics
//! change); the parallel engine's `parallel_scans` counter proves the
//! pool engaged; and on machines with ≥ 4 cores the parallel filter scan
//! is ≥ 2× the single-threaded one.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setrules_bench::write_bench_snapshot;
use setrules_core::{EngineConfig, RuleSystem};
use setrules_json::Json;
use setrules_query::ExecStats;

const ROWS: usize = 100_000;
const FILTER_QUERY: &str =
    "select count(*) from emp where salary > 50999.0 and dept_no <> 3";
const JOIN_QUERY: &str = "select count(*) from emp e, dept d \
     where e.dept_no = d.dept_no and e.salary > 2000.0 and d.mgr_no < 8";

fn system(threads: usize) -> RuleSystem {
    let mut sys =
        RuleSystem::with_config(EngineConfig { parallelism: Some(threads), ..Default::default() });
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
    setrules_bench::load_emps(&mut sys, ROWS);
    let depts: Vec<String> = (0..10).map(|d| format!("({d}, {})", d * 11)).collect();
    sys.transaction_without_rules(&format!("insert into dept values {}", depts.join(", ")))
        .unwrap();
    sys
}

/// Warm measurement: one checked warm-up run, then `reps` timed.
fn millis(sys: &RuleSystem, query: &str, reps: u32) -> f64 {
    sys.query(query).unwrap();
    let start = Instant::now();
    for _ in 0..reps {
        sys.query(query).unwrap();
    }
    start.elapsed().as_secs_f64() * 1e3 / reps as f64
}

/// Row-level counters with the parallelism bookkeeping masked out — the
/// part of `ExecStats` a parallel run must reproduce exactly.
fn row_counters(sys: &RuleSystem, query: &str) -> (ExecStats, ExecStats) {
    let base = sys.exec_stats();
    sys.query(query).unwrap();
    let full = sys.exec_stats().since(&base);
    let mut masked = full;
    masked.parallel_scans = 0;
    masked.parallel_partitions = 0;
    masked.serial_fallbacks = 0;
    (masked, full)
}

fn parallel_snapshot(parallel: &RuleSystem, serial: &RuleSystem, cores: usize, threads: usize) {
    let mut queries = Vec::new();
    for (label, query) in [("filter_scan", FILTER_QUERY), ("hash_join", JOIN_QUERY)] {
        // Determinism bars first: identical relations, identical row-level
        // counters, and proof the pool actually engaged.
        let rel_p = parallel.query(query).unwrap();
        let rel_s = serial.query(query).unwrap();
        assert_eq!(rel_p, rel_s, "{label}: parallel and serial relations must be identical");
        let (rows_p, full_p) = row_counters(parallel, query);
        let (rows_s, full_s) = row_counters(serial, query);
        assert_eq!(rows_p, rows_s, "{label}: row-level counters must be identical");
        assert!(
            full_p.parallel_scans > 0 && full_p.parallel_partitions > 1,
            "{label}: the parallel engine must engage the pool: {full_p:?}"
        );
        assert_eq!(full_s.parallel_scans, 0, "{label}: the pinned engine must stay serial");

        let par_ms = millis(parallel, query, 20);
        let ser_ms = millis(serial, query, 10);
        let speedup = ser_ms / par_ms;
        if label == "filter_scan" && cores >= 4 {
            assert!(
                speedup >= 2.0,
                "acceptance: partitioned filter scan must be ≥2x single-threaded \
                 on {cores} cores ({par_ms:.3}ms vs {ser_ms:.3}ms = {speedup:.2}x)"
            );
        }
        queries.push((
            label,
            Json::obj([
                ("parallel_millis", Json::Float(par_ms)),
                ("serial_millis", Json::Float(ser_ms)),
                ("speedup", Json::Float(speedup)),
                ("partitions", Json::Int(full_p.parallel_partitions as i64)),
                ("rows_scanned", Json::Int(rows_p.rows_scanned as i64)),
            ]),
        ));
    }
    write_bench_snapshot(
        "parallel_exec",
        &Json::obj(
            [("rows", Json::Int(ROWS as i64)), ("threads", Json::Int(threads as i64))]
                .into_iter()
                .chain(queries)
                .collect::<Vec<_>>(),
        ),
    );
}

fn bench(c: &mut Criterion) {
    // Partition even on small machines so the determinism bars always run;
    // the wall-clock bar below only applies from 4 real cores up.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = cores.max(2);
    let parallel = system(threads);
    let serial = system(1);

    parallel_snapshot(&parallel, &serial, cores, threads);

    for (group, query) in [("b13_filter_scan", FILTER_QUERY), ("b13_hash_join", JOIN_QUERY)] {
        let mut g = c.benchmark_group(group);
        g.warm_up_time(std::time::Duration::from_millis(400));
        g.measurement_time(std::time::Duration::from_secs(2));
        g.sample_size(10);
        for (label, sys) in [("parallel", &parallel), ("single_thread", &serial)] {
            g.bench_with_input(BenchmarkId::new(label, ROWS), sys, |b, sys| {
                b.iter(|| {
                    sys.query(query).unwrap();
                });
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
