//! **B14 — write-ahead-log group commit vs sync-per-record.**
//!
//! The same rule-firing workload (multi-row inserts triggering an audit
//! rule, each statement one transaction) run against three engines: pure
//! in-memory, durable with group commit (one sink append + one sync per
//! transaction, rule-action records in the same commit unit), and durable
//! with a sync on every record.
//!
//! Acceptance bars, asserted in-bench before criterion runs:
//!
//! * **semantics are policy-free**: all three engines end byte-identical
//!   (`state_image`), and each durable log recovers to exactly that image;
//! * **group commit really batches**: exactly one sink append and one sync
//!   per transaction, versus one per record for the baseline — a
//!   deterministic ≥ 20× sync-amplification gap on this workload;
//! * recovery replay cost is reported (`recovery_millis`, records
//!   replayed) for both policies.
//!
//! Counters land in `BENCH_wal.json` (`BENCH_OUT_DIR` overrides the
//! directory).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use setrules_bench::write_bench_snapshot;
use setrules_core::{EngineConfig, RuleSystem, SharedMemSink, SyncPolicy, WalConfig};
use setrules_json::Json;

const TXNS: usize = 50;
const ROWS_PER_TXN: usize = 20;

fn durable_config(sink: &SharedMemSink, sync: SyncPolicy) -> EngineConfig {
    EngineConfig {
        durability: Some(WalConfig::memory(sink.clone()).with_sync(sync)),
        ..Default::default()
    }
}

fn setup(sys: &mut RuleSystem) {
    sys.execute("create table t (k int, v float)").unwrap();
    sys.execute("create table audit_log (k int)").unwrap();
    // Fires on every transaction; its action rows ride in the same commit.
    sys.execute(
        "create rule audit when inserted into t \
         then insert into audit_log (select k from inserted t where k < 4)",
    )
    .unwrap();
}

fn stmt(txn: usize) -> String {
    let rows: Vec<String> = (0..ROWS_PER_TXN)
        .map(|r| format!("({}, {r}.5)", txn * ROWS_PER_TXN + r))
        .collect();
    format!("insert into t values {}", rows.join(", "))
}

fn run_workload(sys: &mut RuleSystem, txns: usize) {
    for i in 0..txns {
        sys.transaction(&stmt(i)).unwrap();
    }
}

fn wal_snapshot() {
    // In-memory reference: the semantics and the zero-durability floor.
    let mut mem = RuleSystem::new();
    setup(&mut mem);
    let start = Instant::now();
    run_workload(&mut mem, TXNS);
    let mem_millis = start.elapsed().as_secs_f64() * 1e3;
    let reference = mem.database().state_image();

    let mut policies = Vec::new();
    let mut metrics = Vec::new(); // (appends, syncs) per policy
    for (label, sync) in
        [("group_commit", SyncPolicy::GroupCommit), ("each_record", SyncPolicy::EachRecord)]
    {
        let sink = SharedMemSink::new();
        let mut sys = RuleSystem::open(durable_config(&sink, sync)).unwrap();
        setup(&mut sys);
        let (a0, s0) = (sink.appends(), sink.syncs());
        let start = Instant::now();
        run_workload(&mut sys, TXNS);
        let millis = start.elapsed().as_secs_f64() * 1e3;
        let (appends, syncs) = (sink.appends() - a0, sink.syncs() - s0);

        assert_eq!(
            sys.database().state_image(),
            reference,
            "{label}: durability must not change transaction semantics"
        );
        let start = Instant::now();
        let rec = RuleSystem::open(durable_config(&sink, sync)).unwrap();
        let recovery_millis = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            rec.database().state_image(),
            reference,
            "{label}: recovery must reproduce the committed image"
        );

        metrics.push((appends, syncs));
        policies.push((
            label,
            Json::obj([
                ("workload_millis", Json::Float(millis)),
                ("recovery_millis", Json::Float(recovery_millis)),
                ("sink_appends", Json::Int(appends as i64)),
                ("sink_syncs", Json::Int(syncs as i64)),
                ("log_bytes", Json::Int(sink.bytes().len() as i64)),
                ("replayed_records", Json::Int(rec.stats().wal_replayed_records as i64)),
            ]),
        ));
    }

    // Deterministic amplification bars: group commit is one append + one
    // sync per transaction; the baseline pays one of each per record
    // (begin + rows + rule actions + commit).
    let (group, each) = (metrics[0], metrics[1]);
    assert_eq!(group, (TXNS as u64, TXNS as u64), "group commit: one append+sync per txn");
    assert_eq!(each.0, each.1, "sync-per-record: every append is synced");
    assert!(
        each.0 >= (TXNS * (ROWS_PER_TXN + 2)) as u64,
        "sync-per-record must log begin + each row + commit ({} appends)",
        each.0
    );
    let amplification = each.1 as f64 / group.1 as f64;
    assert!(
        amplification >= 20.0,
        "acceptance: sync-per-record amplification must be >=20x on \
         {ROWS_PER_TXN}-row transactions, got {amplification:.1}x"
    );

    let mut fields = vec![
        ("txns", Json::Int(TXNS as i64)),
        ("rows_per_txn", Json::Int(ROWS_PER_TXN as i64)),
        ("in_memory_millis", Json::Float(mem_millis)),
        ("sync_amplification", Json::Float(amplification)),
    ];
    for (label, json) in policies {
        fields.push((label, json));
    }
    write_bench_snapshot("wal", &Json::obj(fields));
}

fn bench(c: &mut Criterion) {
    wal_snapshot();

    // Transaction throughput per durability mode: each iteration builds a
    // fresh engine (and log) and commits a 10-transaction workload.
    let mut g = c.benchmark_group("b14_wal_commit");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    let modes: [(&str, Option<SyncPolicy>); 3] = [
        ("in_memory", None),
        ("group_commit", Some(SyncPolicy::GroupCommit)),
        ("each_record", Some(SyncPolicy::EachRecord)),
    ];
    for (label, sync) in modes {
        g.bench_with_input(BenchmarkId::from_parameter(label), &sync, |b, &sync| {
            b.iter_batched(
                || {
                    let mut sys = match sync {
                        None => RuleSystem::new(),
                        Some(sync) => {
                            RuleSystem::open(durable_config(&SharedMemSink::new(), sync)).unwrap()
                        }
                    };
                    setup(&mut sys);
                    sys
                },
                |mut sys| {
                    run_workload(&mut sys, 10);
                    sys
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();

    // Recovery replay: reopen a log holding the full 50-transaction
    // workload (group commit keeps it compact; sync-per-record is the
    // same records in more frames).
    let mut g = c.benchmark_group("b14_wal_recovery");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for (label, sync) in
        [("group_commit", SyncPolicy::GroupCommit), ("each_record", SyncPolicy::EachRecord)]
    {
        let sink = SharedMemSink::new();
        let mut sys = RuleSystem::open(durable_config(&sink, sync)).unwrap();
        setup(&mut sys);
        run_workload(&mut sys, TXNS);
        g.bench_with_input(BenchmarkId::from_parameter(label), &sink, |b, sink| {
            b.iter(|| RuleSystem::open(durable_config(sink, sync)).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
