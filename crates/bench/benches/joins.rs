//! **B10 — hash equi-join vs nested-loop join** (ablation for the query
//! engine's join fast path, which rule conditions and actions use like any
//! other query — §1's "extensive optimization").
//!
//! The same N×N join, keyed once on an `int` column (hash-join eligible)
//! and once on a `float` column with identical whole-number values (falls
//! back to the nested loop: float keys are excluded from hashing for
//! `-0.0`/NaN safety). Expected shape: hash join ~linear in N, nested loop
//! quadratic.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use setrules_core::RuleSystem;

fn join_system(n: usize) -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table a (ki int, kf float, v int)").unwrap();
    sys.execute("create table b (ki int, kf float, w int)").unwrap();
    for table in ["a", "b"] {
        let rows: Vec<String> =
            (0..n).map(|i| format!("({}, {}.0, {i})", i % (n / 2 + 1), i % (n / 2 + 1))).collect();
        sys.transaction_without_rules(&format!("insert into {table} values {}", rows.join(", ")))
            .unwrap();
    }
    sys
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("b10_join");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for &n in &[100usize, 400, 1_600] {
        g.bench_with_input(BenchmarkId::new("hash_int_key", n), &n, |b, &n| {
            b.iter_batched(
                || join_system(n),
                |sys| {
                    let rel = sys
                        .query("select count(*) from a x, b y where x.ki = y.ki")
                        .unwrap();
                    assert!(rel.scalar().unwrap().as_i64().unwrap() >= n as i64);
                    sys
                },
                BatchSize::PerIteration,
            );
        });
        g.bench_with_input(BenchmarkId::new("nested_float_key", n), &n, |b, &n| {
            b.iter_batched(
                || join_system(n),
                |sys| {
                    let rel = sys
                        .query("select count(*) from a x, b y where x.kf = y.kf")
                        .unwrap();
                    assert!(rel.scalar().unwrap().as_i64().unwrap() >= n as i64);
                    sys
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
