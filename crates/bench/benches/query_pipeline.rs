//! **B11 — compile-once query pipeline** (ablation for the expression
//! compiler, the N-way join planner, and the per-rule plan cache).
//!
//! Two workloads, each run under `ExecMode::Compiled` (default) and
//! `ExecMode::Interpreted` (the pre-pipeline executor):
//!
//! * **three-way join**: `emp (200) ⋈ dept (40) ⋈ proj (10)` on int keys.
//!   The interpreted executor hashes only 2-item joins and falls back to
//!   the full odometer for three items (200·40·10 = 80 000 predicate
//!   evaluations); the compiled executor plans a greedy hash-join chain,
//!   so `join_combinations` collapses to roughly the number of matches.
//!   The snapshot records the per-row-work ratio — the acceptance bar is
//!   ≥ 2×, the observed ratio is orders of magnitude.
//! * **rule refire**: a countdown rule that fires ~30 times per
//!   transaction. Every consideration after the first hits the per-rule
//!   plan cache, so condition/action expressions compile once, not per
//!   firing; the snapshot records the hit/miss counters.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use setrules_bench::write_bench_snapshot;
use setrules_core::{EngineConfig, ExecMode, RuleSystem};
use setrules_json::Json;

const EMPS: usize = 200;
const DEPTS: usize = 40;
const PROJS: usize = 10;

const JOIN_QUERY: &str = "select count(*) from emp, dept, proj \
     where emp.dept_no = dept.dept_no and dept.proj_no = proj.proj_no";

fn join_system(mode: ExecMode) -> RuleSystem {
    let mut sys = RuleSystem::with_config(EngineConfig { exec_mode: mode, ..Default::default() });
    sys.execute("create table emp (emp_no int, dept_no int)").unwrap();
    sys.execute("create table dept (dept_no int, proj_no int)").unwrap();
    sys.execute("create table proj (proj_no int, budget int)").unwrap();
    let rows: Vec<String> = (0..EMPS).map(|i| format!("({i}, {})", i % DEPTS)).collect();
    sys.transaction_without_rules(&format!("insert into emp values {}", rows.join(", "))).unwrap();
    let rows: Vec<String> = (0..DEPTS).map(|d| format!("({d}, {})", d % PROJS)).collect();
    sys.transaction_without_rules(&format!("insert into dept values {}", rows.join(", "))).unwrap();
    let rows: Vec<String> = (0..PROJS).map(|p| format!("({p}, {p})")).collect();
    sys.transaction_without_rules(&format!("insert into proj values {}", rows.join(", "))).unwrap();
    sys
}

fn refire_system(mode: ExecMode) -> RuleSystem {
    let mut sys = RuleSystem::with_config(EngineConfig { exec_mode: mode, ..Default::default() });
    sys.execute("create table q (v int)").unwrap();
    sys.execute(
        "create rule countdown when inserted into q \
         if exists (select * from inserted q where v > 0) \
         then insert into q (select v - 1 from inserted q where v > 0)",
    )
    .unwrap();
    sys
}

/// One instrumented pass per mode: the work counters behind the
/// wall-clock numbers, written to `BENCH_query_pipeline.json`.
fn pipeline_snapshot() {
    let mode_json = |mode: ExecMode| {
        // Three-way join: per-query exec counters plus wall time.
        let sys = join_system(mode);
        let base = sys.exec_stats();
        let rel = sys.query(JOIN_QUERY).unwrap();
        assert_eq!(rel.scalar().unwrap().as_i64(), Some(EMPS as i64));
        let join = sys.exec_stats().since(&base);
        let reps = 20u32;
        let start = Instant::now();
        for _ in 0..reps {
            sys.query(JOIN_QUERY).unwrap();
        }
        let join_millis = start.elapsed().as_secs_f64() * 1e3 / reps as f64;

        // Rule refire: engine counters for one 30-firing transaction.
        let mut sys = refire_system(mode);
        let start = Instant::now();
        let out = sys.transaction("insert into q values (30)").unwrap();
        let refire_millis = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(out.fired().len(), 30);
        (
            Json::obj([
                ("millis", Json::Float(join_millis)),
                ("join_combinations", Json::Int(join.join_combinations as i64)),
                ("rows_scanned", Json::Int(join.rows_scanned as i64)),
            ]),
            Json::obj([
                ("millis", Json::Float(refire_millis)),
                ("firings", Json::Int(out.fired().len() as i64)),
                ("plan_cache_hits", Json::Int(sys.stats().plan_cache_hits as i64)),
                ("plan_cache_misses", Json::Int(sys.stats().plan_cache_misses as i64)),
            ]),
        )
    };
    let (join_c, refire_c) = mode_json(ExecMode::Compiled);
    let (join_i, refire_i) = mode_json(ExecMode::Interpreted);

    let combos = |j: &Json| j.get("join_combinations").unwrap().as_i64().unwrap() as f64;
    let ratio = combos(&join_i) / combos(&join_c).max(1.0);
    assert!(
        ratio >= 2.0,
        "acceptance: compiled 3-way join must do ≥2x less per-row work (got {ratio:.1}x)"
    );
    let hits = refire_c.get("plan_cache_hits").unwrap().as_i64().unwrap();
    assert!(hits > 0, "acceptance: repeated rule processing must hit the plan cache");

    write_bench_snapshot(
        "query_pipeline",
        &Json::obj([
            (
                "three_way_join",
                Json::obj([
                    (
                        "rows",
                        Json::Array(
                            [EMPS, DEPTS, PROJS].map(|n| Json::Int(n as i64)).to_vec(),
                        ),
                    ),
                    ("compiled", join_c),
                    ("interpreted", join_i),
                    ("combination_ratio", Json::Float(ratio)),
                ]),
            ),
            (
                "rule_refire",
                Json::obj([("compiled", refire_c), ("interpreted", refire_i)]),
            ),
        ]),
    );
}

fn bench(c: &mut Criterion) {
    pipeline_snapshot();

    let mut g = c.benchmark_group("b11_three_way_join");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for (label, mode) in [("compiled", ExecMode::Compiled), ("interpreted", ExecMode::Interpreted)]
    {
        let sys = join_system(mode);
        g.bench_with_input(BenchmarkId::new(label, EMPS), &sys, |b, sys| {
            b.iter(|| {
                let rel = sys.query(JOIN_QUERY).unwrap();
                assert_eq!(rel.scalar().unwrap().as_i64(), Some(EMPS as i64));
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("b11_rule_refire");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for (label, mode) in [("compiled", ExecMode::Compiled), ("interpreted", ExecMode::Interpreted)]
    {
        g.bench_with_input(BenchmarkId::new(label, 30), &mode, |b, &mode| {
            b.iter_batched(
                || refire_system(mode),
                |mut sys| {
                    let out = sys.transaction("insert into q values (30)").unwrap();
                    assert_eq!(out.fired().len(), 30);
                    sys
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
