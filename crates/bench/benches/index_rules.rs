//! **B7 — relational optimization applies to rule bodies** (§1: query
//! optimization "is not inhibited by the presence of our set-oriented
//! production rules; furthermore, it is directly applicable to the rules
//! themselves").
//!
//! A rule's action deletes the ~10 rows of one department out of an `emp`
//! table of N rows, via an equality predicate. With a hash index on
//! `dept_no` the planner probes; without it, the action scans. Expected
//! shape: indexed time ~flat in N, unindexed grows linearly — the gap
//! widens with table size.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use setrules_bench::{emp_system, load_emps};

fn build(n: usize, indexed: bool) -> setrules_core::RuleSystem {
    let mut sys = emp_system(0);
    if indexed {
        sys.execute("create index on emp (dept_no)").unwrap();
    }
    // dept_no cycles 0..10 in the bulk data; to keep the rule's output
    // small and constant, put exactly 10 rows in dept 77.
    load_emps(&mut sys, n);
    let special: Vec<String> =
        (0..10).map(|i| format!("('x{i}', {}, 1.0, 77)", 1_000_000 + i)).collect();
    sys.transaction_without_rules(&format!("insert into emp values {}", special.join(", ")))
        .unwrap();
    sys.execute("create table trigger_t (k int)").unwrap();
    sys.execute(
        "create rule purge when inserted into trigger_t \
         then delete from emp where dept_no = 77",
    )
    .unwrap();
    sys
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("b7_index_in_rule_action");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        for indexed in [false, true] {
            let label = if indexed { "indexed" } else { "scan" };
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter_batched(
                    || build(n, indexed),
                    |mut sys| {
                        let out = sys.transaction("insert into trigger_t values (1)").unwrap();
                        assert_eq!(out.fired()[0].deleted, 10);
                        sys
                    },
                    BatchSize::PerIteration,
                );
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
