//! **B2 — transition-effect composition cost** (Definition 2.1).
//!
//! Compose `k` transitions each touching `m` tuples. Expected shape:
//! roughly linear in `k·m` (set unions dominate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setrules_core::TransitionEffect;
use setrules_storage::{ColumnId, TupleHandle};

/// Build `k` effects over disjoint-ish handle ranges: each inserts `m/3`,
/// deletes `m/3` of the previous window's inserts, and updates `m/3`.
fn make_effects(k: usize, m: usize) -> Vec<TransitionEffect> {
    let third = (m / 3).max(1);
    let mut out = Vec::with_capacity(k);
    let mut next = 1u64;
    let mut prev_inserted: Vec<TupleHandle> = Vec::new();
    for _ in 0..k {
        let inserted: Vec<TupleHandle> = (0..third)
            .map(|_| {
                next += 1;
                TupleHandle(next)
            })
            .collect();
        let deleted: Vec<TupleHandle> = prev_inserted.iter().take(third).copied().collect();
        let updated: Vec<(TupleHandle, ColumnId)> = prev_inserted
            .iter()
            .skip(third)
            .take(third)
            .map(|h| (*h, ColumnId(0)))
            .collect();
        let mut e = TransitionEffect::of_insert(inserted.iter().copied());
        e.deleted.extend(deleted);
        e.updated.extend(updated);
        prev_inserted = inserted;
        out.push(e);
    }
    out
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("b2_effect_composition");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    for &k in &[2usize, 8, 32] {
        for &m in &[30usize, 300, 3_000] {
            let effects = make_effects(k, m);
            g.bench_with_input(BenchmarkId::new(format!("k{k}"), m), &effects, |b, effects| {
                b.iter(|| {
                    let net = effects
                        .iter()
                        .fold(TransitionEffect::new(), |acc, e| acc.compose(e));
                    assert!(net.check_disjoint());
                    net
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
