//! **B5 — self-triggering cascade depth** (§4.1, Example 4.1).
//!
//! Delete the root of a complete management tree; the recursive rule fires
//! once per level (set-oriented: a whole level per transition). Expected
//! shape: time tracks total tree size; the number of rule transitions
//! equals the depth, not the node count.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use setrules_bench::org_tree_system;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("b5_cascade_depth");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    // (depth, fanout) — node counts: 156, 121, 127.
    for &(depth, fanout) in &[(4usize, 5usize), (5, 3), (7, 2)] {
        let label = format!("d{depth}_f{fanout}");
        g.bench_with_input(BenchmarkId::from_parameter(label), &(depth, fanout), |b, &(d, f)| {
            b.iter_batched(
                || org_tree_system(d, f),
                |mut sys| {
                    let out = sys.transaction("delete from emp where emp_no = 0").unwrap();
                    // One set-oriented firing per level (+1 empty closer).
                    assert_eq!(out.fired().len(), d, "one transition per tree level");
                    sys
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
