//! **B3 — per-rule trans-info maintenance overhead** (§4.3: "associating
//! transition information on a rule-by-rule basis will introduce
//! considerable redundancy — there is substantial need and room for
//! optimization here").
//!
//! `R` bystander rules are defined but never triggered; a transaction
//! updates 200 rows of an unrelated table. Figure 1's algorithm still
//! composes the transition into every rule's window. Expected shape: cost
//! grows linearly with R — the redundancy the paper calls out.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use setrules_bench::bystander_system;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("b3_transinfo_overhead");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(20);
    for &rules in &[0usize, 1, 4, 16, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(rules), &rules, |b, &rules| {
            b.iter_batched(
                || bystander_system(rules, 200),
                |mut sys| {
                    let out = sys.transaction("update data set v = v + 1").unwrap();
                    assert!(out.fired().is_empty());
                    sys
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
