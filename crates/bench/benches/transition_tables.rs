//! **B6 — transition-table materialization and condition evaluation**
//! (§3/§4: conditions over `old`/`new updated` tables).
//!
//! Example 3.2's condition (sum over `new updated` vs `old updated`)
//! evaluated over change sets of increasing size. Expected shape: linear
//! in the changed-set size.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use setrules_bench::emp_system;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("b6_transition_tables");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(20);
    for &n in &[10usize, 100, 1_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut sys = emp_system(n);
                    sys.execute(
                        "create rule watch when updated emp.salary \
                         if (select sum(salary) from new updated emp.salary) > \
                            (select sum(salary) from old updated emp.salary) \
                         then select count(*) from new updated emp.salary",
                    )
                    .unwrap();
                    sys
                },
                |mut sys| {
                    // Update every salary: the window holds n updated tuples;
                    // the condition scans old+new transition tables.
                    let out = sys.transaction("update emp set salary = salary + 1").unwrap();
                    assert_eq!(out.fired().len(), 1);
                    sys
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
