//! **B15 — incremental condition evaluation vs per-consideration re-scan.**
//!
//! A refire storm: one transaction updates every row of a large base
//! table (arming 60 watcher rules whose conditions inspect the `updated
//! big` window) and seeds a 150-step driver cascade. Every driver firing
//! clears the considered set, so each watcher's condition is evaluated
//! ~150 times against an unchanged window. The re-scan evaluator pays a
//! full window scan per consideration; the incremental evaluator builds
//! the memo once and repairs it from the (tiny) tick-insert deltas.
//!
//! Acceptance bars, asserted in-bench before criterion runs:
//!
//! * **semantics are evaluator-free**: identical firing traces and
//!   byte-identical `state_image()` on both engines;
//! * **the incremental path actually runs**: repairs (`incr_hits`) and
//!   rebuilds both nonzero, zero fallbacks (every watcher condition is
//!   incrementalizable), zero incremental activity on the re-scan engine;
//! * **>= 10x wall-clock speedup** on the storm transaction.
//!
//! Counters land in `BENCH_incremental.json` (`BENCH_OUT_DIR` overrides
//! the directory).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use setrules_bench::write_bench_snapshot;
use setrules_core::{EngineConfig, RuleSystem};
use setrules_json::Json;

const BASE_ROWS: usize = 8_000;
const WATCHERS: usize = 60;
const DEPTH: i64 = 150;

/// Large watched table, a cascade driver, and a firing sink. Watchers are
/// created *before* the driver so the default partial-order selection
/// reconsiders every watcher between driver firings — the refire storm.
fn build(incremental: bool, base_rows: usize, watchers: usize) -> RuleSystem {
    let mut sys = RuleSystem::with_config(EngineConfig {
        incremental: Some(incremental),
        ..Default::default()
    });
    sys.execute("create table big (k int, v int)").unwrap();
    sys.execute("create table tick (k int)").unwrap();
    sys.execute("create table sink (r int)").unwrap();
    for chunk in (0..base_rows).collect::<Vec<_>>().chunks(500) {
        let rows: Vec<String> = chunk.iter().map(|k| format!("({k}, {})", k % 97)).collect();
        sys.execute(&format!("insert into big values {}", rows.join(", "))).unwrap();
    }
    for i in 0..watchers {
        // Always false (v never goes negative), but deciding that means
        // inspecting the whole updated-big window. Distinct constants keep
        // each rule's plan and memo independent.
        sys.execute(&format!(
            "create rule w{i} when updated big \
             if exists (select * from new updated big where v < {}) \
             then insert into sink values ({i})",
            -(i as i64) - 1
        ))
        .unwrap();
    }
    sys.execute(
        "create rule driver when inserted into tick \
         if exists (select * from inserted tick where k > 0) \
         then insert into tick (select k - 1 from inserted tick where k > 0)",
    )
    .unwrap();
    sys
}

fn storm(depth: i64) -> String {
    format!("update big set v = v + 1; insert into tick values ({depth})")
}

fn incremental_snapshot() {
    let mut inc = build(true, BASE_ROWS, WATCHERS);
    let mut scan = build(false, BASE_ROWS, WATCHERS);

    let start = Instant::now();
    let a = inc.transaction(&storm(DEPTH)).unwrap();
    let inc_millis = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let b = scan.transaction(&storm(DEPTH)).unwrap();
    let scan_millis = start.elapsed().as_secs_f64() * 1e3;

    // Identical semantics: same firings, same final image, same
    // consideration counts.
    assert_eq!(a.fired(), b.fired(), "evaluators must fire the same rules in the same order");
    assert_eq!(a.fired().len(), DEPTH as usize, "driver cascade must run to depth {DEPTH}");
    assert_eq!(
        inc.database().state_image(),
        scan.database().state_image(),
        "incremental evaluation must not change the committed image"
    );
    let (si, ss) = (inc.stats(), scan.stats());
    assert_eq!(si.rules_considered, ss.rules_considered, "same consideration schedule");
    assert_eq!(si.conditions_false, ss.conditions_false, "same condition verdicts");

    // The incremental path really ran: each watcher rebuilds once, then
    // every reconsideration is a delta repair; nothing falls back, and the
    // re-scan engine never touches the incremental machinery.
    assert!(si.incr_rebuilds >= WATCHERS as u64, "one rebuild per watcher, got {}", si.incr_rebuilds);
    assert!(
        si.incr_hits >= (WATCHERS as u64) * (DEPTH as u64 - 1),
        "reconsiderations must repair, not rebuild: {} hits",
        si.incr_hits
    );
    assert_eq!(si.incr_fallbacks, 0, "every storm condition is incrementalizable");
    assert_eq!(
        (ss.incr_hits, ss.incr_rebuilds, ss.incr_fallbacks),
        (0, 0, 0),
        "re-scan engine must not run incremental evaluation"
    );

    let speedup = scan_millis / inc_millis;
    assert!(
        speedup >= 10.0,
        "acceptance: incremental evaluation must be >=10x faster than \
         re-scan on the refire storm ({WATCHERS} watchers x depth {DEPTH} \
         over {BASE_ROWS} rows), got {speedup:.1}x ({inc_millis:.1}ms vs {scan_millis:.1}ms)"
    );

    write_bench_snapshot(
        "incremental",
        &Json::obj([
            ("base_rows", Json::Int(BASE_ROWS as i64)),
            ("watchers", Json::Int(WATCHERS as i64)),
            ("cascade_depth", Json::Int(DEPTH)),
            ("firings", Json::Int(a.fired().len() as i64)),
            ("rules_considered", Json::Int(si.rules_considered as i64)),
            ("incremental_millis", Json::Float(inc_millis)),
            ("rescan_millis", Json::Float(scan_millis)),
            ("speedup", Json::Float(speedup)),
            ("incr_hits", Json::Int(si.incr_hits as i64)),
            ("incr_rebuilds", Json::Int(si.incr_rebuilds as i64)),
            ("incr_fallbacks", Json::Int(si.incr_fallbacks as i64)),
            ("incr_delta_rows", Json::Int(si.incr_delta_rows as i64)),
        ]),
    );
}

fn bench(c: &mut Criterion) {
    incremental_snapshot();

    // Storm-transaction latency per evaluator on a smaller instance (the
    // acceptance-scale comparison already ran in the snapshot above).
    let mut g = c.benchmark_group("b15_incremental_storm");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for (label, incremental) in [("incremental", true), ("rescan", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &incremental, |b, &incremental| {
            b.iter_batched(
                || build(incremental, 2_000, 20),
                |mut sys| {
                    sys.transaction(&storm(10)).unwrap();
                    sys
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();

    // Memo repair throughput: reconsider one watcher across repeated tiny
    // transactions (each one a fresh delta against a warm memo).
    let mut g = c.benchmark_group("b15_incremental_repair");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for (label, incremental) in [("incremental", true), ("rescan", false)] {
        let mut sys = build(incremental, 4_000, 1);
        let mut next = 100_000i64;
        g.bench_function(label, |b| {
            b.iter(|| {
                next += 1;
                sys.transaction(&format!("update big set v = v + 1 where k = {}", next % 4_000))
                    .unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
