//! **B8 — end-to-end transaction cost vs rule work** (§4, Figure 1).
//!
//! Three axes: (a) chained cascades of depth 0/1/4/16 (each firing
//! triggers the next rule); (b) a transaction vetoed by a `rollback` rule
//! (undo cost); (c) the bare no-rules baseline. Expected shape: linear in
//! chain depth with a near-constant per-transition overhead; rollback
//! comparable to commit.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use setrules_bench::chain_system;
use setrules_core::RuleSystem;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("b8_end_to_end");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(30);

    for &depth in &[0usize, 1, 4, 16] {
        g.bench_with_input(BenchmarkId::new("chain", depth), &depth, |b, &depth| {
            b.iter_batched(
                || chain_system(depth),
                |mut sys| {
                    let out = sys.transaction("insert into t0 values (1)").unwrap();
                    assert_eq!(out.fired().len(), depth);
                    sys
                },
                BatchSize::PerIteration,
            );
        });
    }

    g.bench_function("rollback_veto", |b| {
        b.iter_batched(
            || {
                let mut sys = RuleSystem::new();
                sys.execute("create table t (k int)").unwrap();
                sys.execute("create rule veto when inserted into t then rollback").unwrap();
                sys
            },
            |mut sys| {
                let out = sys.transaction("insert into t values (1), (2), (3)").unwrap();
                assert!(!out.committed());
                sys
            },
            BatchSize::PerIteration,
        );
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
