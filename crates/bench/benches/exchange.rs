//! **B16 — exchange-operator parallelism** (two-phase aggregation,
//! partitioned distinct, partitioned top-K).
//!
//! One `emp` table with 100 000 rows spread over 256 departments,
//! measured with the worker pool pinned to one thread versus all
//! available cores:
//!
//! * **group-by aggregation**: five aggregates over 256 groups — the
//!   partial phase accumulates per partition on the pool, the final
//!   phase merges the partial groups in partition order;
//! * **distinct**: dedup of the 100 000-row projection down to the 256
//!   distinct departments via per-partition first-occurrence candidates;
//! * **top-K**: `order by salary desc limit 10` through the partitioned
//!   selection (per-partition top K, then the candidate merge).
//!
//! Acceptance bars, asserted in-bench: every query returns
//! **byte-identical relations** and identical row-level `ExecStats`
//! counters under both thread budgets (the exchange is an execution
//! strategy, never a semantics change); the pooled engine's
//! `parallel_scans` counter proves the exchange engaged on every query;
//! and on machines with ≥ 4 cores the group-by aggregation is ≥ 2× the
//! single-threaded run.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setrules_bench::write_bench_snapshot;
use setrules_core::{EngineConfig, RuleSystem};
use setrules_json::Json;
use setrules_query::ExecStats;

const ROWS: usize = 100_000;
const GROUPS: usize = 256;
const GROUP_QUERY: &str = "select dept_no, count(*), sum(salary), min(salary), max(salary), \
     avg(salary) from emp group by dept_no";
const DISTINCT_QUERY: &str = "select distinct dept_no from emp";
const TOPK_QUERY: &str = "select name, salary from emp order by salary desc limit 10";

fn system(threads: usize) -> RuleSystem {
    let mut sys =
        RuleSystem::with_config(EngineConfig { parallelism: Some(threads), ..Default::default() });
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    // 256 departments (so the final aggregation phase exchanges too) and
    // a salary spread with plenty of duplicates for the top-K tiebreak.
    for chunk in (0..ROWS).collect::<Vec<_>>().chunks(512) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|i| format!("('e{i}', {i}, {}.0, {})", (i * 7) % 10_000, i % GROUPS))
            .collect();
        sys.transaction_without_rules(&format!("insert into emp values {}", rows.join(", ")))
            .unwrap();
    }
    sys
}

/// Warm measurement: one checked warm-up run, then `reps` timed.
fn millis(sys: &RuleSystem, query: &str, reps: u32) -> f64 {
    sys.query(query).unwrap();
    let start = Instant::now();
    for _ in 0..reps {
        sys.query(query).unwrap();
    }
    start.elapsed().as_secs_f64() * 1e3 / reps as f64
}

/// Row-level counters with the parallelism bookkeeping masked out — the
/// part of `ExecStats` a parallel run must reproduce exactly.
fn row_counters(sys: &RuleSystem, query: &str) -> (ExecStats, ExecStats) {
    let base = sys.exec_stats();
    sys.query(query).unwrap();
    let full = sys.exec_stats().since(&base);
    let mut masked = full;
    masked.parallel_scans = 0;
    masked.parallel_partitions = 0;
    masked.serial_fallbacks = 0;
    (masked, full)
}

fn exchange_snapshot(parallel: &RuleSystem, serial: &RuleSystem, cores: usize, threads: usize) {
    let mut queries = Vec::new();
    for (label, query) in
        [("group_by", GROUP_QUERY), ("distinct", DISTINCT_QUERY), ("topk", TOPK_QUERY)]
    {
        // Determinism bars first: identical relations, identical row-level
        // counters, and proof the exchange actually engaged.
        let rel_p = parallel.query(query).unwrap();
        let rel_s = serial.query(query).unwrap();
        assert_eq!(rel_p, rel_s, "{label}: parallel and serial relations must be identical");
        if label != "topk" {
            assert_eq!(rel_p.rows.len(), GROUPS, "{label}: one output row per department");
        }
        let (rows_p, full_p) = row_counters(parallel, query);
        let (rows_s, full_s) = row_counters(serial, query);
        assert_eq!(rows_p, rows_s, "{label}: row-level counters must be identical");
        assert!(
            full_p.parallel_scans > 0 && full_p.parallel_partitions > 1,
            "{label}: the parallel engine must engage the exchange: {full_p:?}"
        );
        assert_eq!(full_s.parallel_scans, 0, "{label}: the pinned engine must stay serial");

        let par_ms = millis(parallel, query, 20);
        let ser_ms = millis(serial, query, 10);
        let speedup = ser_ms / par_ms;
        if label == "group_by" && cores >= 4 {
            assert!(
                speedup >= 2.0,
                "acceptance: two-phase group-by aggregation must be ≥2x single-threaded \
                 on {cores} cores ({par_ms:.3}ms vs {ser_ms:.3}ms = {speedup:.2}x)"
            );
        }
        queries.push((
            label,
            Json::obj([
                ("parallel_millis", Json::Float(par_ms)),
                ("serial_millis", Json::Float(ser_ms)),
                ("speedup", Json::Float(speedup)),
                ("partitions", Json::Int(full_p.parallel_partitions as i64)),
                ("rows_scanned", Json::Int(rows_p.rows_scanned as i64)),
            ]),
        ));
    }
    write_bench_snapshot(
        "exchange",
        &Json::obj(
            [
                ("rows", Json::Int(ROWS as i64)),
                ("groups", Json::Int(GROUPS as i64)),
                ("threads", Json::Int(threads as i64)),
            ]
            .into_iter()
            .chain(queries)
            .collect::<Vec<_>>(),
        ),
    );
}

fn bench(c: &mut Criterion) {
    // Partition even on small machines so the determinism bars always run;
    // the wall-clock bar above only applies from 4 real cores up.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = cores.max(2);
    let parallel = system(threads);
    let serial = system(1);

    exchange_snapshot(&parallel, &serial, cores, threads);

    for (group, query) in [
        ("b16_group_by", GROUP_QUERY),
        ("b16_distinct", DISTINCT_QUERY),
        ("b16_topk", TOPK_QUERY),
    ] {
        let mut g = c.benchmark_group(group);
        g.warm_up_time(std::time::Duration::from_millis(400));
        g.measurement_time(std::time::Duration::from_secs(2));
        g.sample_size(10);
        for (label, sys) in [("parallel", &parallel), ("single_thread", &serial)] {
            g.bench_with_input(BenchmarkId::new(label, ROWS), sys, |b, sys| {
                b.iter(|| {
                    sys.query(query).unwrap();
                });
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
