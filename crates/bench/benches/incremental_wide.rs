//! **B17 — widened incremental evaluation: join memories, aggregate
//! accumulators, and shared delta cursors.**
//!
//! Two refire storms over the shapes PR 10 added to the incremental
//! evaluator (B15 covers the single-view exists/count shapes):
//!
//! * **Join storm** — watcher conditions are two-view equality joins
//!   (`old updated big o, new updated big n where o.k = n.k and ...`).
//!   Re-scan pays a full hash join per consideration; the incremental
//!   engine builds each rule's two-sided join memory once and repairs it
//!   from the (big-free) tick deltas.
//! * **Shared aggregate storm** — 60 watchers hold `sum`/`avg`/`min`/
//!   `max` accumulator thresholds over the *same* window. All sit at the
//!   same delta cursor between driver firings, so the first repair each
//!   round composes the log suffix and the rest consume it from the
//!   per-transaction compose cache (`incr_shared_hits`).
//!
//! Acceptance bars, asserted in-bench before criterion runs:
//!
//! * **semantics are evaluator-free**: identical firing traces and
//!   byte-identical `state_image()` on both engines, same consideration
//!   schedule and condition verdicts;
//! * **the widened shapes stay on the fast path**: zero fallbacks in
//!   both storms (`incr_fallbacks == 0`), repairs dominate rebuilds,
//!   zero incremental activity on the re-scan engine;
//! * **the shared cursor actually fans out**: `incr_shared_hits`
//!   covers most of the aggregate storm's reconsiderations;
//! * **>= 10x wall-clock speedup** on both storm transactions.
//!
//! Counters land in `BENCH_incremental_wide.json` (`BENCH_OUT_DIR`
//! overrides the directory).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use setrules_bench::write_bench_snapshot;
use setrules_core::{EngineConfig, RuleSystem};
use setrules_json::Json;

const JOIN_ROWS: usize = 4_000;
const JOIN_WATCHERS: usize = 20;
const JOIN_DEPTH: i64 = 100;

const AGG_ROWS: usize = 8_000;
const AGG_WATCHERS: usize = 60;
const AGG_DEPTH: i64 = 150;

/// Watched table, cascade driver, firing sink — B15's skeleton. Watchers
/// are created before the driver so the default partial-order selection
/// reconsiders every watcher between driver firings.
fn skeleton(incremental: bool, base_rows: usize) -> RuleSystem {
    let mut sys = RuleSystem::with_config(EngineConfig {
        incremental: Some(incremental),
        ..Default::default()
    });
    sys.execute("create table big (k int, v int)").unwrap();
    sys.execute("create table tick (k int)").unwrap();
    sys.execute("create table sink (r int)").unwrap();
    for chunk in (0..base_rows).collect::<Vec<_>>().chunks(500) {
        let rows: Vec<String> = chunk.iter().map(|k| format!("({k}, {})", k % 97)).collect();
        sys.execute(&format!("insert into big values {}", rows.join(", "))).unwrap();
    }
    sys
}

fn add_driver(sys: &mut RuleSystem) {
    sys.execute(
        "create rule driver when inserted into tick \
         if exists (select * from inserted tick where k > 0) \
         then insert into tick (select k - 1 from inserted tick where k > 0)",
    )
    .unwrap();
}

/// Join storm: every watcher joins the old and new sides of the update
/// window on the key column. Always false (`v` never goes negative), but
/// deciding that by re-scan means a full hash join per consideration.
/// Distinct constants keep each rule's plan and join memory independent.
fn build_join(incremental: bool, base_rows: usize, watchers: usize) -> RuleSystem {
    let mut sys = skeleton(incremental, base_rows);
    for i in 0..watchers {
        sys.execute(&format!(
            "create rule w{i} when updated big \
             if exists (select * from old updated big o, new updated big n \
                        where o.k = n.k and n.v < {}) \
             then insert into sink values ({i})",
            -(i as i64) - 1
        ))
        .unwrap();
    }
    add_driver(&mut sys);
    sys
}

/// Shared aggregate storm: all watchers hold accumulator thresholds over
/// the same `new updated big` window — `sum` and `avg` as running
/// `(sum, count)` pairs, `min` and `max` as ordered multisets. Every
/// threshold is unsatisfiable, so all watchers evaluate false at the same
/// cursor between driver firings and the composed delta fans out.
fn build_agg(incremental: bool, base_rows: usize, watchers: usize) -> RuleSystem {
    let mut sys = skeleton(incremental, base_rows);
    for i in 0..watchers {
        let cond = match i % 4 {
            // v stays in [0, 97 + depth], so these never trip.
            0 => format!("(select sum(v) from new updated big) > {}", 100_000_000 + i),
            1 => format!("(select avg(v) from new updated big) < {}", -(i as i64) - 1),
            2 => format!("(select min(v) from new updated big) < {}", -(i as i64) - 1),
            _ => format!("(select max(v) from new updated big) > {}", 100_000 + i),
        };
        sys.execute(&format!(
            "create rule w{i} when updated big if {cond} then insert into sink values ({i})"
        ))
        .unwrap();
    }
    add_driver(&mut sys);
    sys
}

fn storm(depth: i64) -> String {
    format!("update big set v = v + 1; insert into tick values ({depth})")
}

/// Run one storm on both engines and enforce the shared acceptance bars.
/// Returns (incremental ms, re-scan ms, incremental stats as JSON pairs).
fn run_storm(
    label: &str,
    build: impl Fn(bool) -> RuleSystem,
    depth: i64,
    watchers: usize,
) -> (f64, f64, setrules_core::EngineStats) {
    let mut inc = build(true);
    let mut scan = build(false);

    let start = Instant::now();
    let a = inc.transaction(&storm(depth)).unwrap();
    let inc_millis = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let b = scan.transaction(&storm(depth)).unwrap();
    let scan_millis = start.elapsed().as_secs_f64() * 1e3;

    assert_eq!(a.fired(), b.fired(), "[{label}] evaluators must fire the same rules in order");
    assert_eq!(a.fired().len(), depth as usize, "[{label}] driver cascade must run to depth");
    assert_eq!(
        inc.database().state_image(),
        scan.database().state_image(),
        "[{label}] incremental evaluation must not change the committed image"
    );
    let (si, ss) = (inc.stats().clone(), scan.stats());
    assert_eq!(si.rules_considered, ss.rules_considered, "[{label}] same consideration schedule");
    assert_eq!(si.conditions_false, ss.conditions_false, "[{label}] same condition verdicts");

    assert!(
        si.incr_rebuilds >= watchers as u64,
        "[{label}] one rebuild per watcher, got {}",
        si.incr_rebuilds
    );
    assert!(
        si.incr_hits >= (watchers as u64) * (depth as u64 - 1),
        "[{label}] reconsiderations must repair, not rebuild: {} hits",
        si.incr_hits
    );
    assert_eq!(
        si.incr_fallbacks, 0,
        "[{label}] every storm condition must stay on the incremental path: {:?}",
        si.incr_fallback_reasons
    );
    assert_eq!(
        (ss.incr_hits, ss.incr_rebuilds, ss.incr_fallbacks, ss.incr_shared_hits),
        (0, 0, 0, 0),
        "[{label}] re-scan engine must not run incremental evaluation"
    );

    let speedup = scan_millis / inc_millis;
    assert!(
        speedup >= 10.0,
        "[{label}] acceptance: incremental evaluation must be >=10x faster than \
         re-scan ({watchers} watchers x depth {depth}), got {speedup:.1}x \
         ({inc_millis:.1}ms vs {scan_millis:.1}ms)"
    );

    (inc_millis, scan_millis, si)
}

fn wide_snapshot() {
    let (join_inc, join_scan, join_stats) = run_storm(
        "join",
        |incremental| build_join(incremental, JOIN_ROWS, JOIN_WATCHERS),
        JOIN_DEPTH,
        JOIN_WATCHERS,
    );
    let (agg_inc, agg_scan, agg_stats) = run_storm(
        "agg",
        |incremental| build_agg(incremental, AGG_ROWS, AGG_WATCHERS),
        AGG_DEPTH,
        AGG_WATCHERS,
    );

    // The shared cursor must fan out: between driver firings all 60
    // aggregate watchers repair from the same log position, so each round
    // serves all but the first from the compose cache.
    let reconsiderations = (AGG_WATCHERS as u64) * (AGG_DEPTH as u64 - 1);
    assert!(
        agg_stats.incr_shared_hits >= reconsiderations / 2,
        "shared delta compositions must cover most reconsiderations: \
         {} shared of {} repairs",
        agg_stats.incr_shared_hits,
        agg_stats.incr_hits
    );

    write_bench_snapshot(
        "incremental_wide",
        &Json::obj([
            ("join_rows", Json::Int(JOIN_ROWS as i64)),
            ("join_watchers", Json::Int(JOIN_WATCHERS as i64)),
            ("join_depth", Json::Int(JOIN_DEPTH)),
            ("join_incremental_millis", Json::Float(join_inc)),
            ("join_rescan_millis", Json::Float(join_scan)),
            ("join_speedup", Json::Float(join_scan / join_inc)),
            ("join_incr_hits", Json::Int(join_stats.incr_hits as i64)),
            ("join_incr_rebuilds", Json::Int(join_stats.incr_rebuilds as i64)),
            ("join_incr_fallbacks", Json::Int(join_stats.incr_fallbacks as i64)),
            ("agg_rows", Json::Int(AGG_ROWS as i64)),
            ("agg_watchers", Json::Int(AGG_WATCHERS as i64)),
            ("agg_depth", Json::Int(AGG_DEPTH)),
            ("agg_incremental_millis", Json::Float(agg_inc)),
            ("agg_rescan_millis", Json::Float(agg_scan)),
            ("agg_speedup", Json::Float(agg_scan / agg_inc)),
            ("agg_incr_hits", Json::Int(agg_stats.incr_hits as i64)),
            ("agg_incr_rebuilds", Json::Int(agg_stats.incr_rebuilds as i64)),
            ("agg_incr_fallbacks", Json::Int(agg_stats.incr_fallbacks as i64)),
            ("agg_incr_shared_hits", Json::Int(agg_stats.incr_shared_hits as i64)),
            ("agg_incr_delta_rows", Json::Int(agg_stats.incr_delta_rows as i64)),
        ]),
    );
}

fn bench(c: &mut Criterion) {
    wide_snapshot();

    // Storm-transaction latency per evaluator on smaller instances (the
    // acceptance-scale comparison already ran in the snapshot above).
    let mut g = c.benchmark_group("b17_join_storm");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for (label, incremental) in [("incremental", true), ("rescan", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &incremental, |b, &incremental| {
            b.iter_batched(
                || build_join(incremental, 1_000, 8),
                |mut sys| {
                    sys.transaction(&storm(10)).unwrap();
                    sys
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();

    let mut g = c.benchmark_group("b17_shared_agg_storm");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for (label, incremental) in [("incremental", true), ("rescan", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &incremental, |b, &incremental| {
            b.iter_batched(
                || build_agg(incremental, 2_000, 20),
                |mut sys| {
                    sys.transaction(&storm(10)).unwrap();
                    sys
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
