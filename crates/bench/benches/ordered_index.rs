//! **B12 — ordered secondary indexes** (range-scan access paths, order-by
//! elimination, and min/max short-circuit).
//!
//! One `emp` table with 100 000 rows and distinct salaries, measured with
//! and without an ordered (BTree) index on `salary`:
//!
//! * **range query**: `salary between lo and hi` selecting ~100 rows. The
//!   ordered index walks just the matching key interval; the baseline
//!   scans all 100 000 rows. Acceptance bar: ≥ 10× wall-clock speedup,
//!   and the `range_rows_skipped` counter must show the skipped tuples.
//! * **order by + limit**: `order by salary limit 10`. The ordered index
//!   emits rows in key order and stops after 10, so nothing is
//!   materialized or sorted; the baseline materializes and sorts all
//!   100 000 rows. Acceptance bar: ≥ 5× speedup, `sort_elided` bumped.
//! * **min/max**: `select min(salary), max(salary)` answered from the
//!   index's first/last key without touching a single tuple.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setrules_bench::{emp_system, write_bench_snapshot};
use setrules_core::RuleSystem;
use setrules_json::Json;

const ROWS: usize = 100_000;
// Salaries are 1000.0 + i, all distinct: this interval holds exactly 100.
const RANGE_QUERY: &str =
    "select count(*) from emp where salary between 50000.0 and 50099.0";
const TOP_QUERY: &str = "select name from emp order by salary limit 10";
const MINMAX_QUERY: &str = "select min(salary), max(salary) from emp";

fn check(sys: &RuleSystem, query: &str) {
    match query {
        RANGE_QUERY => {
            assert_eq!(sys.query(query).unwrap().scalar().unwrap().as_i64(), Some(100));
        }
        TOP_QUERY => {
            let rel = sys.query(query).unwrap();
            assert_eq!(rel.rows.len(), 10);
            assert_eq!(rel.rows[0][0].to_string(), "'e0'");
        }
        MINMAX_QUERY => {
            let rel = sys.query(query).unwrap();
            assert_eq!(rel.rows[0][0].to_string(), "1000.0");
            assert_eq!(rel.rows[0][1].to_string(), format!("{}.0", 1000 + ROWS - 1));
        }
        _ => unreachable!(),
    }
}

/// Median-free but warm measurement: one warm-up run, then `reps` timed.
fn millis(sys: &RuleSystem, query: &str, reps: u32) -> f64 {
    check(sys, query);
    let start = Instant::now();
    for _ in 0..reps {
        sys.query(query).unwrap();
    }
    start.elapsed().as_secs_f64() * 1e3 / reps as f64
}

/// One instrumented pass: wall times and the work counters behind them,
/// written to `BENCH_ordered_index.json`, with the acceptance bars
/// asserted in-bench.
fn ordered_snapshot(indexed: &RuleSystem, baseline: &RuleSystem) {
    let counters = |sys: &RuleSystem, query: &str| {
        let base = sys.exec_stats();
        sys.query(query).unwrap();
        sys.exec_stats().since(&base)
    };

    // Range query.
    let range_i = millis(indexed, RANGE_QUERY, 20);
    let range_b = millis(baseline, RANGE_QUERY, 5);
    let ci = counters(indexed, RANGE_QUERY);
    let cb = counters(baseline, RANGE_QUERY);
    assert_eq!(ci.range_scans, 1, "indexed range query must use a range scan");
    assert_eq!(
        ci.range_rows_skipped,
        (ROWS - 100) as u64,
        "range scan must skip every row outside the interval"
    );
    assert_eq!(cb.range_scans, 0);
    assert_eq!(cb.rows_scanned, ROWS as u64);
    let range_speedup = range_b / range_i;
    assert!(
        range_speedup >= 10.0,
        "acceptance: range scan must be ≥10x a full scan on {ROWS} rows \
         (indexed {range_i:.3}ms, full {range_b:.3}ms = {range_speedup:.1}x)"
    );
    let range_json = Json::obj([
        ("indexed_millis", Json::Float(range_i)),
        ("full_scan_millis", Json::Float(range_b)),
        ("speedup", Json::Float(range_speedup)),
        ("rows_visited_indexed", Json::Int(ci.rows_scanned as i64)),
        ("range_rows_skipped", Json::Int(ci.range_rows_skipped as i64)),
        ("rows_visited_full", Json::Int(cb.rows_scanned as i64)),
    ]);

    // Order by + limit.
    let top_i = millis(indexed, TOP_QUERY, 20);
    let top_b = millis(baseline, TOP_QUERY, 5);
    let ci = counters(indexed, TOP_QUERY);
    let cb = counters(baseline, TOP_QUERY);
    assert_eq!(ci.sort_elided, 1, "indexed order-by must elide the sort");
    assert_eq!(ci.rows_scanned, 10, "limit must stop the index walk after 10 rows");
    assert_eq!(cb.sort_elided, 0);
    assert_eq!(cb.rows_scanned, ROWS as u64);
    let top_speedup = top_b / top_i;
    assert!(
        top_speedup >= 5.0,
        "acceptance: order-by-limit via the ordered index must be ≥5x \
         materialize-and-sort (indexed {top_i:.3}ms, sort {top_b:.3}ms = {top_speedup:.1}x)"
    );
    let top_json = Json::obj([
        ("indexed_millis", Json::Float(top_i)),
        ("full_sort_millis", Json::Float(top_b)),
        ("speedup", Json::Float(top_speedup)),
        ("rows_visited_indexed", Json::Int(ci.rows_scanned as i64)),
        ("rows_visited_full", Json::Int(cb.rows_scanned as i64)),
    ]);

    // Min/max short-circuit: answered from the index extremes, no scan.
    let mm_i = millis(indexed, MINMAX_QUERY, 20);
    let mm_b = millis(baseline, MINMAX_QUERY, 5);
    let ci = counters(indexed, MINMAX_QUERY);
    assert_eq!(ci.rows_scanned, 0, "min/max must not visit any tuple");
    assert_eq!(ci.index_lookups, 2);
    let minmax_json = Json::obj([
        ("indexed_millis", Json::Float(mm_i)),
        ("full_scan_millis", Json::Float(mm_b)),
        ("speedup", Json::Float(mm_b / mm_i)),
        ("index_lookups", Json::Int(ci.index_lookups as i64)),
    ]);

    write_bench_snapshot(
        "ordered_index",
        &Json::obj([
            ("rows", Json::Int(ROWS as i64)),
            ("range_query", range_json),
            ("order_by_limit", top_json),
            ("min_max", minmax_json),
        ]),
    );
}

fn bench(c: &mut Criterion) {
    let mut indexed = emp_system(ROWS);
    indexed.execute("create index on emp (salary) using ordered").unwrap();
    let baseline = emp_system(ROWS);

    ordered_snapshot(&indexed, &baseline);

    for (group, query) in [
        ("b12_range_scan", RANGE_QUERY),
        ("b12_order_by_limit", TOP_QUERY),
        ("b12_min_max", MINMAX_QUERY),
    ] {
        let mut g = c.benchmark_group(group);
        g.warm_up_time(std::time::Duration::from_millis(400));
        g.measurement_time(std::time::Duration::from_secs(2));
        g.sample_size(10);
        for (label, sys) in [("ordered", &indexed), ("full_scan", &baseline)] {
            g.bench_with_input(BenchmarkId::new(label, ROWS), sys, |b, sys| {
                b.iter(|| {
                    sys.query(query).unwrap();
                });
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
