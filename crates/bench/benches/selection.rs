//! **B4 — rule selection strategies** (§4.4).
//!
//! `R` independent rules all trigger on one insert; each firing forces a
//! fresh `select-eligible-rule` pass over the triggered set. Compares the
//! strategies (creation order, priority partial order with a declared
//! chain, least/most-recently-considered). Expected shape: all roughly
//! quadratic in R (R selection passes over up to R candidates); partial
//! order costs more per pass (reachability checks).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use setrules_bench::fanout_system;
use setrules_core::{EngineConfig, SelectionStrategy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("b4_selection_strategies");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(20);
    let strategies = [
        ("creation_order", SelectionStrategy::CreationOrder, false),
        ("partial_order_chain", SelectionStrategy::PartialOrder, true),
        ("least_recently", SelectionStrategy::LeastRecentlyConsidered, false),
        ("most_recently", SelectionStrategy::MostRecentlyConsidered, false),
    ];
    for &(name, strategy, chain) in &strategies {
        for &rules in &[2usize, 8, 32] {
            g.bench_with_input(BenchmarkId::new(name, rules), &rules, |b, &rules| {
                b.iter_batched(
                    || {
                        fanout_system(
                            rules,
                            EngineConfig { strategy, ..EngineConfig::default() },
                            chain,
                        )
                    },
                    |mut sys| {
                        let out = sys.transaction("insert into t values (0)").unwrap();
                        assert_eq!(out.fired().len(), rules);
                        sys
                    },
                    BatchSize::PerIteration,
                );
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
