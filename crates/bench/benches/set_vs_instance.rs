//! **B1 — set-oriented rules vs instance-oriented triggers** (§1 claim:
//! "set-oriented processing … permits efficient execution … through
//! extensive optimization", and per-tuple rules pay per-row cost).
//!
//! Three workloads, chosen to show where the win comes from:
//!
//! * **aggregate** (headline): maintain per-department headcounts under a
//!   bulk insert of N employees over D=20 departments. The set-oriented
//!   rule pre-aggregates the change set with one `group by` over
//!   `inserted emp` and applies D counter updates (≈ N + D² work, D
//!   counter writes); the per-row trigger runs one counter update per
//!   inserted row (≈ N·D work, N counter writes + undo records). Grouping
//!   over the change set is exactly what instance-oriented rules cannot
//!   express (§1). Expected shape: set-oriented wins, gap grows with N.
//! * **audit**: bulk salary update with an audit-trail rule. One
//!   insert-select vs N tiny inserts — near parity in a memory-resident
//!   engine with pre-parsed trigger bodies (the paper's per-row costs —
//!   statement startup, optimizer, latching — do not exist here), and the
//!   honest result says so.
//! * **cascade**: Example 3.1's referential cascade, 10 parents × N/10
//!   children. Both designs do O(parents × children) comparisons, so
//!   near-parity is expected; the set-oriented engine leans on hoisting
//!   the uncorrelated transition-table subquery (implemented) to stay
//!   level.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use setrules_bench::{
    instance_cascade_system, load_emps, set_cascade_system, write_bench_snapshot,
};
use setrules_core::RuleSystem;
use setrules_instance::{InstanceEngine, TriggerEvent};
use setrules_json::Json;

const PARENTS: usize = 10;

fn set_audit_system(n: usize) -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table audit (emp_no int, salary float)").unwrap();
    sys.execute(
        "create rule audit_raise when updated emp.salary \
         then insert into audit (select emp_no, salary from new updated emp.salary)",
    )
    .unwrap();
    load_emps(&mut sys, n);
    sys
}

fn instance_audit_system(n: usize) -> InstanceEngine {
    let mut eng = InstanceEngine::new();
    eng.create_table("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    eng.create_table("create table audit (emp_no int, salary float)").unwrap();
    eng.create_trigger(
        "audit_raise",
        "emp",
        TriggerEvent::Update(Some("salary".into())),
        None,
        "insert into audit values (new.emp_no, new.salary)",
    )
    .unwrap();
    for chunk in (0..n).collect::<Vec<_>>().chunks(512) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|i| format!("('e{i}', {i}, {}.0, {})", 1000 + i, i % 10))
            .collect();
        eng.execute(&format!("insert into emp values {}", rows.join(", "))).unwrap();
    }
    eng
}

const DEPTS: usize = 20;

fn set_aggregate_system(_n: usize) -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table cnt (dept_no int, n int)").unwrap();
    sys.execute("create table delta (dept_no int, d int)").unwrap();
    sys.execute(
        "create rule headcount when inserted into emp \
         then delete from delta; \
              insert into delta (select dept_no, count(*) from inserted emp group by dept_no); \
              update cnt set n = n + (select d from delta where delta.dept_no = cnt.dept_no) \
              where dept_no in (select dept_no from delta)",
    )
    .unwrap();
    let rows: Vec<String> = (0..DEPTS).map(|d| format!("({d}, 0)")).collect();
    sys.transaction_without_rules(&format!("insert into cnt values {}", rows.join(", ")))
        .unwrap();
    sys
}

fn instance_aggregate_system(_n: usize) -> InstanceEngine {
    let mut eng = InstanceEngine::new();
    eng.create_table("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    eng.create_table("create table cnt (dept_no int, n int)").unwrap();
    eng.create_trigger(
        "headcount",
        "emp",
        TriggerEvent::Insert,
        None,
        "update cnt set n = n + 1 where dept_no = new.dept_no",
    )
    .unwrap();
    let rows: Vec<String> = (0..DEPTS).map(|d| format!("({d}, 0)")).collect();
    eng.execute(&format!("insert into cnt values {}", rows.join(", "))).unwrap();
    eng
}

fn bulk_emp_insert(n: usize) -> String {
    let rows: Vec<String> = (0..n)
        .map(|i| format!("('e{i}', {i}, 1.0, {})", i % DEPTS))
        .collect();
    format!("insert into emp values {}", rows.join(", "))
}

/// One instrumented pass of the audit workload on each engine: the
/// engine-work counters behind B1's wall-clock numbers. The set engine
/// reports its per-transaction `TxnStats`; the instance engine reports
/// the same three sections from its mirror counters.
fn engine_stats_snapshot(n: usize) {
    let mut sys = set_audit_system(n);
    let out = sys.transaction("update emp set salary = salary + 1").unwrap();
    let set_json = out.stats().to_json();

    let mut eng = instance_audit_system(n);
    let (i0, q0, s0) = (eng.stats(), eng.exec_stats(), eng.storage_stats());
    eng.execute("update emp set salary = salary + 1").unwrap();
    let inst_json = Json::obj([
        ("engine", eng.stats().since(&i0).to_json()),
        ("query", eng.exec_stats().since(&q0).to_json()),
        ("storage", eng.storage_stats().since(&s0).to_json()),
    ]);

    write_bench_snapshot(
        "engine_stats",
        &Json::obj([
            ("workload", Json::Str("b1_audit_bulk_update".into())),
            ("rows", Json::Int(n as i64)),
            ("set_oriented", set_json),
            ("instance_oriented", inst_json),
        ]),
    );
}

fn bench(c: &mut Criterion) {
    engine_stats_snapshot(1_000);
    let mut g = c.benchmark_group("b1_aggregate_maintenance");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for &n in &[100usize, 1_000, 5_000] {
        let block = bulk_emp_insert(n);
        g.bench_with_input(BenchmarkId::new("set_oriented", n), &block, |b, block| {
            b.iter_batched(
                || set_aggregate_system(n),
                |mut sys| {
                    let out = sys.transaction(block).unwrap();
                    assert_eq!(out.fired().len(), 1);
                    sys
                },
                BatchSize::PerIteration,
            );
        });
        let block = bulk_emp_insert(n);
        g.bench_with_input(BenchmarkId::new("instance_oriented", n), &block, |b, block| {
            b.iter_batched(
                || instance_aggregate_system(n),
                |mut eng| {
                    eng.execute(block).unwrap();
                    eng
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();

    let mut g = c.benchmark_group("b1_audit_bulk_update");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for &n in &[100usize, 1_000, 5_000] {
        g.bench_with_input(BenchmarkId::new("set_oriented", n), &n, |b, &n| {
            b.iter_batched(
                || set_audit_system(n),
                |mut sys| {
                    let out = sys.transaction("update emp set salary = salary + 1").unwrap();
                    assert_eq!(out.fired().len(), 1);
                    assert_eq!(out.fired()[0].inserted, n);
                    sys
                },
                BatchSize::PerIteration,
            );
        });
        g.bench_with_input(BenchmarkId::new("instance_oriented", n), &n, |b, &n| {
            b.iter_batched(
                || instance_audit_system(n),
                |mut eng| {
                    eng.execute("update emp set salary = salary + 1").unwrap();
                    assert_eq!(eng.firings() as usize % n, 0);
                    eng
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();

    let mut g = c.benchmark_group("b1_cascade_delete");
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for total_children in [100usize, 1_000, 5_000] {
        let per = total_children / PARENTS;
        g.bench_with_input(
            BenchmarkId::new("set_oriented", total_children),
            &per,
            |b, &per| {
                b.iter_batched(
                    || set_cascade_system(PARENTS, per),
                    |mut sys| {
                        let out = sys.transaction("delete from parent").unwrap();
                        assert_eq!(out.fired()[0].deleted, PARENTS * per);
                        sys
                    },
                    BatchSize::PerIteration,
                );
            },
        );
        g.bench_with_input(
            BenchmarkId::new("instance_oriented", total_children),
            &per,
            |b, &per| {
                b.iter_batched(
                    || instance_cascade_system(PARENTS, per),
                    |mut eng| {
                        eng.execute("delete from parent").unwrap();
                        assert!(eng.query("select * from child").unwrap().is_empty());
                        eng
                    },
                    BatchSize::PerIteration,
                );
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
