//! Shared workload builders for the benchmark suite (DESIGN.md §5).
//!
//! The paper has no quantitative evaluation; these benches regenerate its
//! *qualitative* performance claims — see `EXPERIMENTS.md` for the index
//! and expected shapes.

#![warn(missing_docs)]

use setrules_core::{EngineConfig, RuleSystem};
use setrules_instance::{InstanceEngine, TriggerEvent};
use setrules_json::Json;

/// Write a `BENCH_<name>.json` counters snapshot into the directory named
/// by `BENCH_OUT_DIR` (default: the current directory). Benches call this
/// once per run so perf trajectories can diff engine work counters — rows
/// scanned, tuples touched, undo records — alongside wall-clock numbers.
/// Write failures only warn: counters must never fail a bench run.
pub fn write_bench_snapshot(name: &str, json: &Json) {
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {dir}: {e}");
    }
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    let mut body = json.pretty();
    body.push('\n');
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// Build a parent/child schema with `parents` parent rows, each referenced
/// by `children_per` child rows, plus Example 3.1's set-oriented cascade
/// rule.
pub fn set_cascade_system(parents: usize, children_per: usize) -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table parent (pk int, payload int)").unwrap();
    sys.execute("create table child (fk int, payload int)").unwrap();
    sys.execute(
        "create rule cascade when deleted from parent \
         then delete from child where fk in (select pk from deleted parent)",
    )
    .unwrap();
    load_parent_child(&mut sys, parents, children_per);
    sys
}

/// The same schema and data with a per-row cascade trigger on the
/// instance-oriented engine.
pub fn instance_cascade_system(parents: usize, children_per: usize) -> InstanceEngine {
    let mut eng = InstanceEngine::new();
    eng.create_table("create table parent (pk int, payload int)").unwrap();
    eng.create_table("create table child (fk int, payload int)").unwrap();
    eng.create_trigger(
        "cascade",
        "parent",
        TriggerEvent::Delete,
        None,
        "delete from child where fk = old.pk",
    )
    .unwrap();
    let mut stmts = Vec::new();
    build_parent_child_sql(parents, children_per, &mut stmts);
    for s in stmts {
        eng.execute(&s).unwrap();
    }
    eng
}

/// Load parent/child rows into a rule system without firing rules.
pub fn load_parent_child(sys: &mut RuleSystem, parents: usize, children_per: usize) {
    let mut stmts = Vec::new();
    build_parent_child_sql(parents, children_per, &mut stmts);
    for s in stmts {
        sys.transaction_without_rules(&s).unwrap();
    }
}

fn build_parent_child_sql(parents: usize, children_per: usize, out: &mut Vec<String>) {
    for chunk in (0..parents).collect::<Vec<_>>().chunks(512) {
        let rows: Vec<String> = chunk.iter().map(|p| format!("({p}, {p})")).collect();
        out.push(format!("insert into parent values {}", rows.join(", ")));
    }
    let all: Vec<(usize, usize)> =
        (0..parents).flat_map(|p| (0..children_per).map(move |c| (p, c))).collect();
    for chunk in all.chunks(512) {
        let rows: Vec<String> = chunk.iter().map(|(p, c)| format!("({p}, {c})")).collect();
        out.push(format!("insert into child values {}", rows.join(", ")));
    }
}

/// Build an `emp` table with `n` rows (dept_no cycles 0..10) and no rules.
pub fn emp_system(n: usize) -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    load_emps(&mut sys, n);
    sys
}

/// Append `n` employees to an existing `emp` table.
pub fn load_emps(sys: &mut RuleSystem, n: usize) {
    for chunk in (0..n).collect::<Vec<_>>().chunks(512) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|i| format!("('e{i}', {i}, {}.0, {})", 1000 + i, i % 10))
            .collect();
        sys.transaction_without_rules(&format!("insert into emp values {}", rows.join(", ")))
            .unwrap();
    }
}

/// Build Example 4.1's org tree: a complete `fanout`-ary management tree of
/// the given `depth` (depth 1 = just the root), with the recursive cascade
/// rule installed. Returns the system; deleting employee 0 reaps the tree.
pub fn org_tree_system(depth: usize, fanout: usize) -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
    sys.execute(
        "create rule r41 when deleted from emp \
         then delete from emp where dept_no in \
                (select dept_no from dept where mgr_no in (select emp_no from deleted emp)); \
              delete from dept where mgr_no in (select emp_no from deleted emp)",
    )
    .unwrap();

    // Breadth-first construction: employee k manages dept k (containing
    // its children).
    let mut emp_rows = vec!["('root', 0, 1.0, -1)".to_string()];
    let mut dept_rows = Vec::new();
    let mut frontier = vec![0usize];
    let mut next_id = 1usize;
    for _ in 1..depth {
        let mut next_frontier = Vec::new();
        for mgr in frontier {
            dept_rows.push(format!("({mgr}, {mgr})"));
            for _ in 0..fanout {
                emp_rows.push(format!("('e{next_id}', {next_id}, 1.0, {mgr})"));
                next_frontier.push(next_id);
                next_id += 1;
            }
        }
        frontier = next_frontier;
    }
    for chunk in emp_rows.chunks(512) {
        sys.transaction_without_rules(&format!("insert into emp values {}", chunk.join(", ")))
            .unwrap();
    }
    for chunk in dept_rows.chunks(512) {
        sys.transaction_without_rules(&format!("insert into dept values {}", chunk.join(", ")))
            .unwrap();
    }
    sys
}

/// A system with `n_rules` inert rules watching table `other` (never
/// touched) and a `data` table of `rows` rows — used to measure per-rule
/// trans-info maintenance overhead (B3).
pub fn bystander_system(n_rules: usize, rows: usize) -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table data (k int, v int)").unwrap();
    sys.execute("create table other (k int)").unwrap();
    for i in 0..n_rules {
        sys.execute(&format!(
            "create rule bystander{i} when inserted into other then delete from other"
        ))
        .unwrap();
    }
    for chunk in (0..rows).collect::<Vec<_>>().chunks(512) {
        let vals: Vec<String> = chunk.iter().map(|i| format!("({i}, 0)")).collect();
        sys.transaction_without_rules(&format!("insert into data values {}", vals.join(", ")))
            .unwrap();
    }
    sys
}

/// A system where `n_rules` independent rules all trigger on the same
/// insert, each appending one row to `sink` — used for the selection
/// strategy benches (B4).
pub fn fanout_system(n_rules: usize, config: EngineConfig, chain_priorities: bool) -> RuleSystem {
    let mut sys = RuleSystem::with_config(config);
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table sink (k int)").unwrap();
    for i in 0..n_rules {
        sys.execute(&format!(
            "create rule fan{i} when inserted into t then insert into sink values ({i})"
        ))
        .unwrap();
    }
    if chain_priorities {
        for i in 1..n_rules {
            sys.execute(&format!("create rule priority fan{} before fan{}", i - 1, i)).unwrap();
        }
    }
    sys
}

/// A chain of `depth` rules: inserting into `t0` makes rule `i` copy into
/// `t(i+1)` — used for the end-to-end cascade-depth bench (B8).
pub fn chain_system(depth: usize) -> RuleSystem {
    let mut sys = RuleSystem::new();
    for i in 0..=depth {
        sys.execute(&format!("create table t{i} (k int)")).unwrap();
    }
    for i in 0..depth {
        sys.execute(&format!(
            "create rule link{i} when inserted into t{i} \
             then insert into t{} (select k from inserted t{i})",
            i + 1
        ))
        .unwrap();
    }
    sys
}
