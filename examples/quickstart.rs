//! Quickstart: define the paper's running schema, create Example 3.1's
//! cascaded-delete rule, run a few transactions, and inspect results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use setrules_core::{RuleSystem, TxnOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = RuleSystem::new();

    // The paper's running schema (§3.1).
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)")?;
    sys.execute("create table dept (dept_no int, mgr_no int)")?;

    // Example 3.1: "Whenever departments are deleted, delete all employees
    // in the deleted departments."
    sys.execute(
        "create rule cascade_delete \
         when deleted from dept \
         then delete from emp where dept_no in (select dept_no from deleted dept)",
    )?;

    // Load some data.
    sys.execute("insert into dept values (1, 101), (2, 102), (3, 103)")?;
    sys.execute(
        "insert into emp values \
         ('Jane', 101, 95000.0, 1), ('Mary', 102, 70000.0, 1), \
         ('Jim',  103, 60000.0, 2), ('Bill', 104, 25000.0, 2), \
         ('Sam',  105, 40000.0, 3)",
    )?;

    println!("== before ==");
    println!("{}", sys.query("select name, dept_no from emp order by emp_no")?);

    // One set-oriented transaction deletes two departments; the rule fires
    // once over the whole set of deleted departments.
    let outcome = sys.transaction("delete from dept where dept_no < 3")?;
    match &outcome {
        TxnOutcome::Committed { fired, transitions, .. } => {
            println!("\ncommitted after {transitions} rule transition(s):");
            for f in fired {
                println!(
                    "  rule '{}' fired: +{} inserted, -{} deleted, ~{} updated",
                    f.rule, f.inserted, f.deleted, f.updated
                );
            }
        }
        TxnOutcome::RolledBack { by_rule, .. } => {
            println!("\nrolled back by rule '{by_rule}'");
        }
    }

    println!("\n== after ==");
    println!("{}", sys.query("select name, dept_no from emp order by emp_no")?);
    println!("\n{}", sys.query("select count(*) as depts from dept")?);

    Ok(())
}
