//! A tour of the §5 extensions: select-triggered rules (§5.1), an external
//! native-code action (§5.2), mid-transaction triggering points and
//! deferred cross-transaction processing (§5.3) — plus snapshot/restore.
//!
//! ```sh
//! cargo run --example extensions_tour
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use setrules_core::{EngineConfig, RuleSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // §5.1 needs select tracking switched on.
    let mut sys = RuleSystem::with_config(EngineConfig { track_selects: true, ..Default::default() });
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)")?;
    sys.execute("create table audit (who text, what text)")?;
    sys.execute("insert into emp values ('Jane', 1, 95000.0, 1), ('Bill', 2, 25000.0, 2)")?;

    // ------------------------------------------------------------------
    // §5.1: a rule triggered by data retrieval — audit salary reads.
    // ------------------------------------------------------------------
    sys.execute(
        "create rule audit_reads when selected emp.salary \
         then insert into audit (select name, 'salary-read' from selected emp.salary)",
    )?;
    println!("-- §5.1: reading salaries (as a transaction) triggers the audit rule --");
    let out = sys.transaction("select name, salary from emp where dept_no = 1")?;
    println!("   fired: {:?}", out.fired().iter().map(|f| f.rule.as_str()).collect::<Vec<_>>());
    println!("{}", sys.query("select who, what from audit")?);

    // ------------------------------------------------------------------
    // §5.2: an external (native Rust) action.
    // ------------------------------------------------------------------
    let pages = Arc::new(AtomicUsize::new(0));
    let pages2 = Arc::clone(&pages);
    sys.create_rule_external(
        "page_hr",
        "inserted into emp",
        Some("exists (select * from inserted emp where salary > 90000)"),
        Arc::new(move |ctx: &mut setrules_core::ActionCtx<'_>| {
            // "Page" HR (a side effect) and stamp the audit trail via DML,
            // which joins this rule's transition like any SQL action.
            pages2.fetch_add(1, Ordering::SeqCst);
            ctx.run_sql("insert into audit values ('HR', 'high-salary-hire')")?;
            Ok(())
        }),
    )?;
    println!("-- §5.2: hiring above 90K runs native code --");
    sys.execute("insert into emp values ('Mia', 3, 120000.0, 1)")?;
    sys.execute("insert into emp values ('Lou', 4, 30000.0, 2)")?;
    println!("   HR paged {} time(s)", pages.load(Ordering::SeqCst));

    // ------------------------------------------------------------------
    // §5.3a: a triggering point inside an open transaction.
    // ------------------------------------------------------------------
    println!("\n-- §5.3: process rules mid-transaction --");
    sys.begin()?;
    sys.run_op("select name, salary from emp where dept_no = 1")?;
    let report = sys.process_rules()?;
    println!("   at the triggering point: {} firing(s)", report.fired.len());
    sys.run_op("select name, salary from emp where dept_no = 2")?;
    let out = sys.commit()?;
    println!("   at commit: {} more firing(s)", out.fired().len() - report.fired.len());

    // ------------------------------------------------------------------
    // §5.3b: deferred processing across several transactions.
    // ------------------------------------------------------------------
    println!("\n-- §5.3: deferred processing --");
    sys.transaction_without_rules("insert into emp values ('Ada', 5, 200000.0, 1)")?;
    sys.transaction_without_rules("insert into emp values ('Bob', 6, 210000.0, 1)")?;
    println!("   two hires committed, rules deferred; window holds {} insert(s)",
             sys.deferred_window().ins.len());
    let out = sys.process_deferred()?;
    println!("   deferred pass fired {:?}", out.fired().iter().map(|f| f.rule.as_str()).collect::<Vec<_>>());
    println!("   HR paged {} time(s) total (one set-oriented call for both hires)",
             pages.load(Ordering::SeqCst));

    // ------------------------------------------------------------------
    // Snapshot/restore (external actions cannot serialize: drop it first).
    // ------------------------------------------------------------------
    println!("\n-- snapshot/restore --");
    sys.drop_rule("page_hr")?;
    let snap = sys.snapshot()?;
    println!("   snapshot: {} table(s), {} rule(s)", snap.tables.len(), snap.rules.len());
    let restored = RuleSystem::restore(&snap, EngineConfig { track_selects: true, ..Default::default() })?;
    println!(
        "   restored employees: {}",
        restored.query("select count(*) from emp")?.scalar().unwrap()
    );
    Ok(())
}
