//! An interactive shell for the rule system: type SQL (DDL, DML, rule
//! definitions, `process rules`, `begin`/`commit`/`rollback`) and watch
//! rules fire. Also accepts `\analyze`, `\rules`, `\help`, `\quit`.
//!
//! ```sh
//! cargo run --example repl
//! # durable session (write-ahead log; recovers on reopen):
//! cargo run --example repl -- --wal my.wal
//! # or pipe a script:
//! echo "create table t (k int); insert into t values (1); select * from t" \
//!   | cargo run --example repl
//! ```

use std::io::{BufRead, Write};

use setrules_core::{EngineConfig, ExecOutcome, RuleSystem, TxnOutcome, WalConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut sys = match args.next().as_deref() {
        Some("--wal") => {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("usage: repl [--wal <path>]");
                std::process::exit(2);
            });
            let config = EngineConfig {
                durability: Some(WalConfig::path(&path)),
                ..Default::default()
            };
            match RuleSystem::open(config) {
                Ok(sys) => {
                    let replayed = sys.stats().wal_replayed_records;
                    eprintln!("write-ahead log: {path} ({replayed} records replayed)");
                    sys
                }
                Err(e) => {
                    eprintln!("could not open write-ahead log {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some(other) => {
            eprintln!("unknown argument '{other}' (usage: repl [--wal <path>])");
            std::process::exit(2);
        }
        None => RuleSystem::new(),
    };
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    if interactive {
        println!("setrules — set-oriented production rules (Widom & Finkelstein, SIGMOD 1990)");
        println!("type SQL statements; \\help for meta-commands");
    }
    let mut lock = stdin.lock();
    let mut line = String::new();
    loop {
        if interactive {
            print!("setrules> ");
            std::io::stdout().flush().ok();
        }
        line.clear();
        match lock.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        if let Some(meta) = input.strip_prefix('\\') {
            if !meta_command(&mut sys, meta) {
                break;
            }
            continue;
        }
        match input {
            "begin" => print_result(sys.begin().map(|_| "transaction opened".to_string())),
            "commit" => match sys.commit() {
                Ok(out) => print_txn(&out),
                Err(e) => println!("error: {e}"),
            },
            "rollback" => print_result(sys.rollback().map(|_| "rolled back".to_string())),
            _ => run_statements(&mut sys, input),
        }
    }
}

fn run_statements(sys: &mut RuleSystem, input: &str) {
    match sys.execute_script(input) {
        Ok(outcomes) => {
            for out in outcomes {
                match out {
                    ExecOutcome::Ddl(msg) => println!("{msg}"),
                    ExecOutcome::Txn(t) => print_txn(&t),
                    ExecOutcome::OpExecuted { affected, output } => {
                        if let Some(rel) = output {
                            println!("{rel}");
                        } else {
                            println!("{affected} row(s) affected (transaction open)");
                        }
                    }
                    ExecOutcome::RulesProcessed(rep) => {
                        println!(
                            "processed rules: {} firing(s){}",
                            rep.fired.len(),
                            rep.rolled_back_by
                                .map(|r| format!("; ROLLED BACK by '{r}'"))
                                .unwrap_or_default()
                        );
                    }
                }
            }
        }
        Err(e) => println!("error: {e}"),
    }
}

fn print_txn(out: &TxnOutcome) {
    match out {
        TxnOutcome::Committed { fired, output, .. } => {
            if let Some(rel) = output {
                println!("{rel}");
            }
            if fired.is_empty() {
                println!("ok");
            } else {
                let names: Vec<&str> = fired.iter().map(|f| f.rule.as_str()).collect();
                println!("ok — rules fired: {}", names.join(", "));
            }
        }
        TxnOutcome::RolledBack { by_rule, .. } => println!("ROLLED BACK by rule '{by_rule}'"),
    }
}

fn print_result(r: Result<String, setrules_core::RuleError>) {
    match r {
        Ok(msg) => println!("{msg}"),
        Err(e) => println!("error: {e}"),
    }
}

/// Handle a `\` meta-command; returns `false` to quit.
fn meta_command(sys: &mut RuleSystem, meta: &str) -> bool {
    match meta.trim() {
        "q" | "quit" | "exit" => return false,
        "rules" => {
            for r in sys.rules() {
                let state = if r.active { "active" } else { "inactive" };
                println!("  {} [{state}] when {:?}", r.name, r.when.len());
            }
            for (h, l) in sys.priority_pairs() {
                println!("  priority: {h} before {l}");
            }
        }
        "analyze" => println!("{}", setrules_analysis::analyze(sys)),
        "dot" => print!("{}", setrules_analysis::TriggerGraph::build(sys).to_dot()),
        m if m.starts_with("explain ") => match sys.explain(m.trim_start_matches("explain ")) {
            Ok(plan) => print!("{plan}"),
            Err(e) => println!("error: {e}"),
        },
        m if m.starts_with("json ") => match sys.query(m.trim_start_matches("json ")) {
            Ok(rel) => println!("{}", rel.to_json().pretty()),
            Err(e) => println!("error: {e}"),
        },
        "stats" => println!("{}", sys.full_stats().to_json().pretty()),
        "incr" => print!("{}", sys.incremental_report()),
        "wal" => match sys.wal_status() {
            Some(status) => println!("{}", status.pretty()),
            None => println!("no write-ahead log (in-memory system)"),
        },
        m if m.starts_with("events") => {
            let n: usize = m
                .trim_start_matches("events")
                .trim()
                .parse()
                .unwrap_or(usize::MAX);
            let entries = sys.recent_event_entries();
            let skip = entries.len().saturating_sub(n);
            for (seq, ev) in entries.into_iter().skip(skip) {
                println!("  [{seq}] {ev}");
            }
        }
        "help" => {
            println!("SQL: create table/index/rule, drop ..., insert/delete/update/select,");
            println!("     create rule priority A before B, activate/deactivate rule,");
            println!("     begin / process rules / commit / rollback");
            println!("meta: \\rules  \\analyze  \\dot  \\explain <select>  \\json <select>");
            println!("      \\stats  \\events [n]  \\incr  \\wal  \\quit");
        }
        other => println!("unknown meta-command '\\{other}' (try \\help)"),
    }
    true
}

/// Crude interactivity detection without extra dependencies: honor a
/// SETRULES_FORCE_PROMPT env var, otherwise assume non-interactive when
/// stdin is redirected (best effort — prompts to a pipe are harmless).
fn atty_stdin() -> bool {
    std::env::var_os("SETRULES_FORCE_PROMPT").is_some()
}
