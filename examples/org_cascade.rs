//! The paper's Example 4.3, end to end: the recursive manager cascade
//! (Example 4.1) and the salary controller (Example 4.2) defined together
//! with `r2` prioritized over `r1`, driven by the exact operation block
//! from the text — printing the full execution trace the paper walks
//! through ("Rule R2 executes its action, deleting employee Mary; …").
//!
//! ```sh
//! cargo run --example org_cascade
//! ```

use setrules_core::RuleSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = RuleSystem::new();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)")?;
    sys.execute("create table dept (dept_no int, mgr_no int)")?;

    // R1 (Example 4.1): whenever managers are deleted, delete all
    // employees in the departments they managed, and those departments.
    sys.execute(
        "create rule r1 when deleted from emp \
         then delete from emp where dept_no in \
                (select dept_no from dept where mgr_no in \
                  (select emp_no from deleted emp)); \
              delete from dept where mgr_no in \
                (select emp_no from deleted emp)",
    )?;

    // R2 (Example 4.2): whenever salaries are updated, if the average of
    // the updated salaries exceeds 50K, delete every updated employee now
    // above 80K.
    sys.execute(
        "create rule r2 when updated emp.salary \
         if (select avg(salary) from new updated emp.salary) > 50000 \
         then delete from emp where emp_no in \
                (select emp_no from new updated emp.salary) \
              and salary > 80000",
    )?;

    // "Let the rules be ordered so that rule R2 has priority over rule R1."
    sys.execute("create rule priority r2 before r1")?;

    // The org chart: Jane manages Mary and Jim; Mary manages Bill; Jim
    // manages Sam and Sue.
    sys.execute("insert into dept values (1, 1), (2, 2), (3, 3)")?;
    sys.execute(
        "insert into emp values \
         ('Jane', 1, 100000.0, 0), ('Mary', 2, 70000.0, 1), ('Jim', 3, 60000.0, 1), \
         ('Bill', 4, 25000.0, 2), ('Sam', 5, 40000.0, 3), ('Sue', 6, 45000.0, 3)",
    )?;

    // Static analysis first (§6): R1 is intentionally recursive and the
    // analyzer says so.
    println!("{}", setrules_analysis::analyze(&sys));

    println!("== org chart ==");
    println!("{}", sys.query("select name, emp_no, salary, dept_no from emp order by emp_no")?);

    // The paper's externally-generated operation block: delete Jane and
    // raise Mary's & Bill's salaries (avg of updates 57.5K; Mary > 80K).
    println!("\nexecuting: delete Jane; Bill 25K→30K; Mary 70K→85K\n");
    let out = sys.transaction(
        "delete from emp where name = 'Jane'; \
         update emp set salary = 30000.0 where name = 'Bill'; \
         update emp set salary = 85000.0 where name = 'Mary'",
    )?;

    println!("== trace (compare §4.5, Example 4.3) ==");
    for (i, f) in out.fired().iter().enumerate() {
        println!(
            "  step {}: rule '{}' — deleted {} tuple(s), updated {}, inserted {}",
            i + 1,
            f.rule,
            f.deleted,
            f.updated,
            f.inserted
        );
    }

    println!("\n== aftermath ==");
    println!("{}", sys.query("select count(*) as employees from emp")?);
    println!("{}", sys.query("select count(*) as departments from dept")?);
    println!("\n(the paper: R2 deletes Mary; R1 deletes Bill+Jim, then Sam+Sue, then nothing)");
    Ok(())
}
