//! Constraint maintenance via derived rules ([CW90] / §6): declare
//! high-level integrity constraints, inspect the production rules they
//! compile to, and watch them repair or reject violations.
//!
//! ```sh
//! cargo run --example integrity
//! ```

use setrules_constraints::{compile, install, Constraint, RepairPolicy};
use setrules_core::RuleSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = RuleSystem::new();
    sys.execute("create table dept (dept_no int, mgr_no int)")?;
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)")?;

    let constraints = [
        Constraint::referential("fk_dept", "emp", "dept_no", "dept", "dept_no", RepairPolicy::Cascade),
        Constraint::Unique { name: "uq_emp".into(), table: "emp".into(), column: "emp_no".into() },
        Constraint::NotNull { name: "nn_name".into(), table: "emp".into(), column: "name".into() },
        Constraint::Check {
            name: "pay".into(),
            table: "emp".into(),
            predicate: "salary between 0 and 1000000".into(),
        },
    ];

    println!("== compiled rules (the semi-automatic translation of [CW90]) ==");
    for c in &constraints {
        println!("\nconstraint '{}':", c.name());
        for sql in compile(c) {
            println!("  {sql}");
        }
        install(&mut sys, c)?;
    }

    sys.execute("insert into dept values (1, 10), (2, 20)")?;
    sys.execute("insert into emp values ('Jane', 1, 95000.0, 1), ('Bill', 2, 25000.0, 2)")?;

    println!("\n== enforcement ==");
    let attempts = [
        ("insert into emp values ('dup', 1, 1.0, 1)", "duplicate emp_no"),
        ("insert into emp values (NULL, 3, 1.0, 1)", "null name"),
        ("insert into emp values ('neg', 3, -5.0, 1)", "negative salary"),
        ("insert into emp values ('orphan', 3, 1.0, 99)", "unknown department"),
        ("insert into emp values ('ok', 3, 50000.0, 2)", "a valid insert"),
    ];
    for (sql, what) in attempts {
        let out = sys.transaction(sql)?;
        println!("  {what:<22} → {}", if out.committed() { "committed" } else { "rejected (rollback)" });
    }

    println!("\n== repair: cascade on department delete ==");
    println!("before: {} employees", sys.query("select count(*) from emp")?.scalar().unwrap());
    sys.execute("delete from dept where dept_no = 2")?;
    println!("after deleting dept 2: {} employees", sys.query("select count(*) from emp")?.scalar().unwrap());
    println!("{}", sys.query("select name, dept_no from emp order by emp_no")?);

    println!("\n== static analysis of the generated rule set ==");
    println!("{}", setrules_analysis::analyze(&sys));

    // The analyzer flags the repair rules as unordered w.r.t. the
    // conditional-rollback checks (a repair can flip a check's condition,
    // so order matters). Declare the intended policy — repair first, then
    // validate the repaired state — and the warnings disappear.
    println!("== after declaring repair-before-check priorities ==");
    for repair in ["fk_dept_parent_delete", "fk_dept_parent_update"] {
        for check in ["fk_dept_child_check", "uq_emp_unique", "nn_name_notnull", "pay_check"] {
            sys.execute(&format!("create rule priority {repair} before {check}"))?;
        }
    }
    // The two repairs both write emp; delete-repair first is the
    // conventional order.
    sys.execute("create rule priority fk_dept_parent_delete before fk_dept_parent_update")?;
    println!("{}", setrules_analysis::analyze(&sys));
    Ok(())
}
