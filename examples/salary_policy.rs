//! Salary-policy rules: Example 3.2's total-salary compensation rule plus
//! a rollback guard, showing conditions over `old`/`new` transition tables
//! and transaction rollback as an integrity mechanism.
//!
//! ```sh
//! cargo run --example salary_policy
//! ```

use setrules_core::{RuleSystem, TxnOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = RuleSystem::new();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)")?;

    // Example 3.2: if the total of updated salaries rose, cut department 2
    // by 5% and department 3 by 15%.
    sys.execute(
        "create rule rebalance when updated emp.salary \
         if (select sum(salary) from new updated emp.salary) > \
            (select sum(salary) from old updated emp.salary) \
         then update emp set salary = 0.95 * salary where dept_no = 2; \
              update emp set salary = 0.85 * salary where dept_no = 3",
    )?;

    // A hard cap: any salary above 500K rolls the whole transaction back.
    sys.execute(
        "create rule cap when updated emp.salary or inserted into emp \
         if exists (select * from emp where salary > 500000) \
         then rollback",
    )?;
    // The cap is checked before the rebalance runs.
    sys.execute("create rule priority cap before rebalance")?;

    sys.execute(
        "insert into emp values \
         ('u1', 1, 100000.0, 1), ('u2', 2, 110000.0, 1), \
         ('v1', 3, 90000.0, 2), ('w1', 4, 80000.0, 3)",
    )?;

    println!("== initial salaries ==");
    println!("{}", sys.query("select name, salary, dept_no from emp order by emp_no")?);

    // 1. A raise for department 1: total rises, departments 2/3 get cut.
    println!("\n-- raising dept 1 by 20% --");
    let out = sys.transaction("update emp set salary = 1.2 * salary where dept_no = 1")?;
    report(&out);
    println!("{}", sys.query("select name, salary from emp order by emp_no")?);

    // 2. A salary cut: the rebalance condition is false, nothing fires.
    println!("\n-- cutting u1 back --");
    let out = sys.transaction("update emp set salary = 100000.0 where name = 'u1'")?;
    report(&out);

    // 3. An absurd raise: the cap rule rolls the transaction back before
    //    the rebalance ever runs.
    println!("\n-- trying to set u2 to 1M --");
    let out = sys.transaction("update emp set salary = 1000000.0 where name = 'u2'")?;
    report(&out);
    println!("{}", sys.query("select name, salary from emp order by emp_no")?);

    Ok(())
}

fn report(out: &TxnOutcome) {
    match out {
        TxnOutcome::Committed { fired, .. } if fired.is_empty() => {
            println!("committed; no rules fired");
        }
        TxnOutcome::Committed { fired, .. } => {
            println!("committed; fired: {:?}", fired.iter().map(|f| f.rule.as_str()).collect::<Vec<_>>());
        }
        TxnOutcome::RolledBack { by_rule, .. } => {
            println!("ROLLED BACK by rule '{by_rule}'");
        }
    }
}
