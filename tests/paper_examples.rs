//! Exact reproductions of every worked example in the paper (§3.1 and
//! §4.5), asserted against the traces the text specifies.
//!
//! Running schema (§3.1): `emp(name, emp_no, salary, dept_no)`,
//! `dept(dept_no, mgr_no)`.

use setrules_core::{RuleSystem, TxnOutcome};
use setrules_storage::Value;

fn paper_db() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
    sys
}

fn names(sys: &RuleSystem) -> Vec<String> {
    sys.query("select name from emp order by emp_no")
        .unwrap()
        .rows
        .into_iter()
        .map(|r| r[0].as_str().unwrap().to_string())
        .collect()
}

fn count(sys: &RuleSystem, sql: &str) -> i64 {
    sys.query(sql).unwrap().scalar().unwrap().as_i64().unwrap()
}

/// The engine's event stream rendered one line per event — the golden
/// traces below assert these against the execution narratives in the
/// paper's prose.
fn trace(sys: &RuleSystem) -> Vec<String> {
    // Plan-cache and incremental-eval events are execution-strategy
    // details, not part of the paper's semantics; the golden narratives
    // stay mode-independent.
    sys.recent_events()
        .iter()
        .filter(|e| e.kind() != "plan_cache" && e.kind() != "incremental_eval")
        .map(|e| e.to_string())
        .collect()
}

/// Example 3.1: cascaded delete for referential integrity.
#[test]
fn example_3_1_cascaded_delete() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r31 when deleted from dept \
         then delete from emp where dept_no in (select dept_no from deleted dept)",
    )
    .unwrap();
    sys.execute("insert into dept values (1, 10), (2, 20)").unwrap();
    sys.execute(
        "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 10.0, 1), ('c', 3, 10.0, 2)",
    )
    .unwrap();

    // Deleting department 1 deletes exactly its two employees. The rule's
    // own transition deletes from emp, not dept, so it fires exactly once.
    let out = sys.transaction("delete from dept where dept_no = 1").unwrap();
    let TxnOutcome::Committed { fired, .. } = out else { panic!("must commit") };
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].rule, "r31");
    assert_eq!(fired[0].deleted, 2);
    assert_eq!(names(&sys), vec!["c"]);

    // A delete that touches no departments does not trigger the rule.
    let out = sys.transaction("delete from dept where dept_no = 99").unwrap();
    assert!(out.fired().is_empty());
}

/// Example 3.1, set-orientation: one transition deleting *several*
/// departments is handled by a single rule firing over the whole set.
#[test]
fn example_3_1_is_set_oriented() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r31 when deleted from dept \
         then delete from emp where dept_no in (select dept_no from deleted dept)",
    )
    .unwrap();
    sys.execute("insert into dept values (1, 10), (2, 20), (3, 30)").unwrap();
    sys.execute(
        "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 10.0, 2), ('c', 3, 10.0, 3)",
    )
    .unwrap();
    let out = sys.transaction("delete from dept where dept_no < 3").unwrap();
    assert_eq!(out.fired().len(), 1, "one set-oriented firing covers both departments");
    assert_eq!(out.fired()[0].deleted, 2);
    assert_eq!(names(&sys), vec!["c"]);
}

/// Example 3.2: salary-total control with old/new transition tables.
#[test]
fn example_3_2_salary_totals() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r32 when updated emp.salary \
         if (select sum(salary) from new updated emp.salary) > \
            (select sum(salary) from old updated emp.salary) \
         then update emp set salary = 0.95 * salary where dept_no = 2; \
              update emp set salary = 0.85 * salary where dept_no = 3",
    )
    .unwrap();
    sys.execute(
        "insert into emp values \
         ('u', 1, 1000.0, 1), ('v', 2, 1000.0, 2), ('w', 3, 1000.0, 3)",
    )
    .unwrap();

    // Raise u's salary: total of updated salaries rose, so dept 2 takes a
    // 5% cut and dept 3 a 15% cut.
    let out = sys.transaction("update emp set salary = 2000.0 where name = 'u'").unwrap();
    let fired = out.fired();
    assert_eq!(fired.len(), 1, "the rule re-triggers on its own cuts, but they lowered the total");
    assert_eq!(fired[0].rule, "r32");
    assert_eq!(fired[0].updated, 2, "one firing updates both departments");
    let rel = sys.query("select salary from emp order by emp_no").unwrap();
    assert_eq!(
        rel.rows,
        vec![
            vec![Value::Float(2000.0)],
            vec![Value::Float(950.0)],
            vec![Value::Float(850.0)],
        ]
    );

    // Lowering a salary leaves the condition false: no firing at all.
    let out = sys.transaction("update emp set salary = 1.0 where name = 'u'").unwrap();
    assert!(out.fired().is_empty());
}

/// An update that assigns the same values still triggers the rule (`U` is
/// recorded even for no-op assignments, §2.1) but Example 3.2's strict `>`
/// condition is false.
#[test]
fn example_3_2_no_op_update_triggers_but_condition_false() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r32 when updated emp.salary \
         if (select sum(salary) from new updated emp.salary) > \
            (select sum(salary) from old updated emp.salary) \
         then update emp set salary = 0.95 * salary where dept_no = 2",
    )
    .unwrap();
    sys.execute("insert into emp values ('v', 2, 1000.0, 2)").unwrap();
    let out = sys.transaction("update emp set salary = salary where name = 'v'").unwrap();
    assert!(out.fired().is_empty());
    assert_eq!(count(&sys, "select count(*) from emp where salary = 1000.0"), 1);
}

/// Example 3.3: composite transition predicate with a correlated
/// aggregate condition.
#[test]
fn example_3_3_composite_predicate() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r33 when inserted into emp or deleted from emp \
           or updated emp.salary or updated emp.dept_no \
         if exists (select * from emp e1 where salary > \
             2 * (select avg(salary) from emp e2 where e2.dept_no = e1.dept_no)) \
         then delete from emp where emp_no = \
             (select mgr_no from dept where dept_no = 5)",
    )
    .unwrap();
    sys.execute("insert into dept values (5, 50)").unwrap();
    sys.execute(
        "insert into emp values ('mgr5', 50, 100.0, 4), \
         ('x', 10, 100.0, 1), ('y', 11, 100.0, 1)",
    )
    .unwrap();
    // So far nobody is overpaid (dept 4 has one member: salary == avg).
    assert_eq!(count(&sys, "select count(*) from emp"), 3);

    // Insert an employee earning more than twice dept 1's average:
    // avg(100, 100, 1000) = 400; 1000 > 800. The manager of dept 5 dies.
    let out = sys.transaction("insert into emp values ('z', 12, 1000.0, 1)").unwrap();
    let fired = out.fired();
    // First firing deletes mgr5; the rule re-triggers on that deletion and
    // the condition still holds, but the second delete matches nobody —
    // and an empty transition ends the cascade.
    assert_eq!(fired.len(), 2);
    assert_eq!(fired[0].deleted, 1);
    assert_eq!(fired[1].deleted, 0);
    assert_eq!(names(&sys), vec!["x", "y", "z"]);

    // The same rule also watches dept_no updates.
    sys.execute("insert into emp values ('mgr5b', 51, 100.0, 4)").unwrap();
    sys.execute("update dept set mgr_no = 51 where dept_no = 5").unwrap();
    let out = sys.transaction("update emp set dept_no = 1 where name = 'mgr5b'").unwrap();
    assert_eq!(out.fired().len(), 2, "updated emp.dept_no triggers it; mgr5b deleted, then empty");
    assert_eq!(names(&sys), vec!["x", "y", "z"]);
}

/// Example 4.1: recursive manager-cascade delete — a self-triggering rule
/// whose cascade terminates when a transition deletes no employees.
#[test]
fn example_4_1_recursive_cascade() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r41 when deleted from emp \
         then delete from emp where dept_no in \
                (select dept_no from dept where mgr_no in \
                  (select emp_no from deleted emp)); \
              delete from dept where mgr_no in \
                (select emp_no from deleted emp)",
    )
    .unwrap();
    // Three-level hierarchy: root r (emp 1) manages dept 1 = {m1, m2};
    // m1 (emp 2) manages dept 2 = {w1, w2}; m2 manages nothing.
    sys.execute("insert into dept values (1, 1), (2, 2)").unwrap();
    sys.execute(
        "insert into emp values ('r', 1, 1.0, 0), ('m1', 2, 1.0, 1), \
         ('m2', 3, 1.0, 1), ('w1', 4, 1.0, 2), ('w2', 5, 1.0, 2)",
    )
    .unwrap();

    let out = sys.transaction("delete from emp where name = 'r'").unwrap();
    let fired = out.fired();
    // Firing 1 (deleted {r}): deletes m1, m2 and dept 1 → 3 tuples.
    // Firing 2 (deleted {m1, m2}): deletes w1, w2 and dept 2 → 3 tuples.
    // Firing 3 (deleted {w1, w2}): nothing managed → 0 tuples; the empty
    // transition ends the cascade ("until execution of the rule's action
    // deletes no further employees").
    assert_eq!(fired.iter().map(|f| f.deleted).collect::<Vec<_>>(), vec![3, 3, 0]);
    assert_eq!(count(&sys, "select count(*) from emp"), 0);
    assert_eq!(count(&sys, "select count(*) from dept"), 0);
}

/// Example 4.2: the paper's Bill/Mary salary scenario, verbatim.
#[test]
fn example_4_2_salary_update_control() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r42 when updated emp.salary \
         if (select avg(salary) from new updated emp.salary) > 50000 \
         then delete from emp where emp_no in \
                (select emp_no from new updated emp.salary) \
              and salary > 80000",
    )
    .unwrap();
    sys.execute(
        "insert into emp values ('Bill', 1, 25000.0, 1), ('Mary', 2, 70000.0, 1)",
    )
    .unwrap();

    // "updates Bill's salary from 25K to 30K and updates Mary's salary
    // from 70K to 85K" — avg(30K, 85K) = 57.5K > 50K, so the action runs
    // and "employee Mary is deleted".
    let out = sys
        .transaction(
            "update emp set salary = 30000.0 where name = 'Bill'; \
             update emp set salary = 85000.0 where name = 'Mary'",
        )
        .unwrap();
    assert_eq!(out.fired().len(), 1);
    assert_eq!(out.fired()[0].deleted, 1);
    assert_eq!(names(&sys), vec!["Bill"]);
}

/// Example 4.2, negative case: if the average stays at or below 50K the
/// rule is triggered but its condition fails.
#[test]
fn example_4_2_condition_false() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r42 when updated emp.salary \
         if (select avg(salary) from new updated emp.salary) > 50000 \
         then delete from emp where emp_no in \
                (select emp_no from new updated emp.salary) \
              and salary > 80000",
    )
    .unwrap();
    sys.execute("insert into emp values ('Bill', 1, 25000.0, 1)").unwrap();
    let out = sys.transaction("update emp set salary = 30000.0").unwrap();
    assert!(out.fired().is_empty());
    assert_eq!(names(&sys), vec!["Bill"]);
}

fn define_r1_r2(sys: &mut RuleSystem) {
    // R1 = Example 4.1's recursive cascade.
    sys.execute(
        "create rule r1 when deleted from emp \
         then delete from emp where dept_no in \
                (select dept_no from dept where mgr_no in \
                  (select emp_no from deleted emp)); \
              delete from dept where mgr_no in \
                (select emp_no from deleted emp)",
    )
    .unwrap();
    // R2 = Example 4.2's salary control.
    sys.execute(
        "create rule r2 when updated emp.salary \
         if (select avg(salary) from new updated emp.salary) > 50000 \
         then delete from emp where emp_no in \
                (select emp_no from new updated emp.salary) \
              and salary > 80000",
    )
    .unwrap();
}

fn load_org(sys: &mut RuleSystem) {
    // "Jane manages Mary and Jim; Mary manages Bill; Jim manages Sam and
    // Sue." Jane=1, Mary=2, Jim=3, Bill=4, Sam=5, Sue=6; Jane manages
    // dept 1 = {Mary, Jim}, Mary dept 2 = {Bill}, Jim dept 3 = {Sam, Sue}.
    sys.execute("insert into dept values (1, 1), (2, 2), (3, 3)").unwrap();
    sys.execute(
        "insert into emp values \
         ('Jane', 1, 100000.0, 0), ('Mary', 2, 70000.0, 1), ('Jim', 3, 60000.0, 1), \
         ('Bill', 4, 25000.0, 2), ('Sam', 5, 40000.0, 3), ('Sue', 6, 45000.0, 3)",
    )
    .unwrap();
}

const EXAMPLE_4_3_BLOCK: &str = "delete from emp where name = 'Jane'; \
     update emp set salary = 30000.0 where name = 'Bill'; \
     update emp set salary = 85000.0 where name = 'Mary'";

/// Example 4.3: rules R1 (Example 4.1) and R2 (Example 4.2) defined
/// together, with R2 prioritized over R1 — the paper's full interaction
/// trace.
#[test]
fn example_4_3_rule_interaction_trace() {
    let mut sys = paper_db();
    define_r1_r2(&mut sys);
    // "Let the rules be ordered so that rule R2 has priority over rule R1."
    sys.execute("create rule priority r2 before r1").unwrap();
    load_org(&mut sys);

    // One externally-generated operation block: delete Jane; update Bill's
    // and Mary's salaries so the updated average exceeds 50K and Mary's
    // exceeds 80K.
    let out = sys.transaction(EXAMPLE_4_3_BLOCK).unwrap();

    let fired = out.fired();
    let summary: Vec<(&str, usize)> =
        fired.iter().map(|f| (f.rule.as_str(), f.deleted)).collect();
    assert_eq!(
        summary,
        vec![
            // "Rule R2 executes its action, deleting employee Mary; R2 is
            // not triggered again."
            ("r2", 1),
            // "Rule R1 is considered with respect to the composite change
            // since the initial state, thus the set of deleted employees is
            // now {Jane, Mary}. … Employees Bill and Jim are deleted by
            // this transition" (plus departments 1 and 2).
            ("r1", 4),
            // "Now the rule is considered only relative to the effect of
            // the most recent transition, so the set of deleted employees
            // is {Bill, Jim}. … employees Sam and Sue are deleted" (plus
            // department 3).
            ("r1", 3),
            // "executes a third time relative to set {Sam, Sue} of deleted
            // employees, but no additional employees are deleted."
            ("r1", 0),
        ],
        "the paper's exact interaction trace"
    );
    assert_eq!(count(&sys, "select count(*) from emp"), 0);
    assert_eq!(count(&sys, "select count(*) from dept"), 0);
}

/// Example 4.3 variant with the priority reversed: R1 reaps the whole
/// tree first, and composition then *untriggers* R2 — the salary-update
/// entries vanish from its window because the updated tuples were
/// subsequently deleted (the "trigger permanence" question of §1,
/// answered by Definition 2.1).
#[test]
fn example_4_3_reversed_priority_untriggers_r2() {
    let mut sys = paper_db();
    define_r1_r2(&mut sys);
    sys.execute("create rule priority r1 before r2").unwrap();
    load_org(&mut sys);

    let out = sys.transaction(EXAMPLE_4_3_BLOCK).unwrap();
    let fired = out.fired();
    let summary: Vec<(&str, usize)> =
        fired.iter().map(|f| (f.rule.as_str(), f.deleted)).collect();
    assert_eq!(
        summary,
        vec![
            // R1 w.r.t. {Jane}: deletes Mary, Jim + dept 1.
            ("r1", 3),
            // R1 w.r.t. {Mary, Jim}: deletes Bill, Sam, Sue + depts 2, 3.
            ("r1", 5),
            // R1 w.r.t. {Bill, Sam, Sue}: nothing left.
            ("r1", 0),
            // R2 never fires: Mary's and Bill's salary updates composed
            // away when the tuples were deleted.
        ],
    );
    assert_eq!(count(&sys, "select count(*) from emp"), 0);
}

// ----------------------------------------------------------------------
// Golden event traces: the same examples, asserted at the granularity of
// the engine's structured event stream. Each trace is checked line by
// line against the paper's execution narrative.
// ----------------------------------------------------------------------

/// Example 3.1 as a golden trace: one external transition, one rule
/// firing, and a window restart after the action (the rule's own
/// transition deletes no departments, so the cascade ends).
#[test]
fn example_3_1_golden_trace() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r31 when deleted from dept \
         then delete from emp where dept_no in (select dept_no from deleted dept)",
    )
    .unwrap();
    sys.execute("insert into dept values (1, 10), (2, 20)").unwrap();
    sys.execute(
        "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 10.0, 1), ('c', 3, 10.0, 2)",
    )
    .unwrap();
    sys.clear_events();
    sys.transaction("delete from dept where dept_no = 1").unwrap();
    assert_eq!(
        trace(&sys),
        vec![
            "txn begin",
            "external block absorbed (I=0 D=1 U=0 S=0)",
            "trans-info init for 'r31'",
            "rule 'r31' considered",
            "rule 'r31' executed (I=0 D=2 U=0)",
            "trans-info init for 'r31'",
            "txn commit (1 fired, 1 transitions)",
        ],
    );
}

/// Example 3.2's no-op update as a golden trace: the update still
/// triggers the rule (§2.1 records `U` even for identity assignments),
/// but the strict `>` condition is false — consideration without
/// execution.
#[test]
fn example_3_2_condition_false_golden_trace() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r32 when updated emp.salary \
         if (select sum(salary) from new updated emp.salary) > \
            (select sum(salary) from old updated emp.salary) \
         then update emp set salary = 0.95 * salary where dept_no = 2",
    )
    .unwrap();
    sys.execute("insert into emp values ('v', 2, 1000.0, 2)").unwrap();
    sys.clear_events();
    sys.transaction("update emp set salary = salary where name = 'v'").unwrap();
    assert_eq!(
        trace(&sys),
        vec![
            "txn begin",
            "external block absorbed (I=0 D=0 U=1 S=0)",
            "trans-info init for 'r32'",
            "rule 'r32' considered",
            "rule 'r32' condition false",
            "txn commit (0 fired, 0 transitions)",
        ],
    );
}

/// Example 4.1 as a golden trace: the recursive cascade shows the §4.2
/// re-triggering discipline — after each execution the acting rule's
/// window restarts (`trans-info init`), and each further consideration is
/// flagged as a re-trigger.
#[test]
fn example_4_1_golden_trace() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r41 when deleted from emp \
         then delete from emp where dept_no in \
                (select dept_no from dept where mgr_no in \
                  (select emp_no from deleted emp)); \
              delete from dept where mgr_no in \
                (select emp_no from deleted emp)",
    )
    .unwrap();
    sys.execute("insert into dept values (1, 1), (2, 2)").unwrap();
    sys.execute(
        "insert into emp values ('r', 1, 1.0, 0), ('m1', 2, 1.0, 1), \
         ('m2', 3, 1.0, 1), ('w1', 4, 1.0, 2), ('w2', 5, 1.0, 2)",
    )
    .unwrap();
    sys.clear_events();
    sys.transaction("delete from emp where name = 'r'").unwrap();
    assert_eq!(
        trace(&sys),
        vec![
            "txn begin",
            "external block absorbed (I=0 D=1 U=0 S=0)",
            "trans-info init for 'r41'",
            // Firing 1 w.r.t. deleted {r}: m1, m2 and dept 1 go.
            "rule 'r41' considered",
            "rule 'r41' executed (I=0 D=3 U=0)",
            "trans-info init for 'r41'",
            // Firing 2 w.r.t. deleted {m1, m2}: w1, w2 and dept 2 go.
            "rule 'r41' re-triggered",
            "rule 'r41' considered",
            "rule 'r41' executed (I=0 D=3 U=0)",
            "trans-info init for 'r41'",
            // Firing 3 w.r.t. deleted {w1, w2}: nothing managed — the
            // empty transition ends the cascade.
            "rule 'r41' re-triggered",
            "rule 'r41' considered",
            "rule 'r41' executed (I=0 D=0 U=0)",
            "trans-info init for 'r41'",
            "txn commit (3 fired, 3 transitions)",
        ],
    );
}

/// Example 4.3 as a golden trace: the paper's full R1/R2 interleaving,
/// event by event. The `trans-info modify for 'r1'` line after R2's
/// execution is the composition step the prose describes: "Rule R1 is
/// considered with respect to the composite change since the initial
/// state, thus the set of deleted employees is now {Jane, Mary}."
#[test]
fn example_4_3_golden_trace() {
    let mut sys = paper_db();
    define_r1_r2(&mut sys);
    sys.execute("create rule priority r2 before r1").unwrap();
    load_org(&mut sys);
    sys.clear_events();
    sys.transaction(EXAMPLE_4_3_BLOCK).unwrap();
    assert_eq!(
        trace(&sys),
        vec![
            "txn begin",
            // One external block: delete Jane, update Bill's and Mary's
            // salaries. Both rules are triggered and get fresh windows.
            "external block absorbed (I=0 D=1 U=2 S=0)",
            "trans-info init for 'r1'",
            "trans-info init for 'r2'",
            // R2 has priority: it executes, deleting Mary. Its deletion
            // composes into R1's window (Jane + Mary) and cancels Mary's
            // salary update out of its own restarted window — "R2 is not
            // triggered again".
            "rule 'r2' considered",
            "rule 'r2' executed (I=0 D=1 U=0)",
            "trans-info modify for 'r1'",
            "trans-info init for 'r2'",
            // R1 w.r.t. deleted {Jane, Mary}: Bill, Jim and depts 1, 2.
            "rule 'r1' considered",
            "rule 'r1' executed (I=0 D=4 U=0)",
            "trans-info init for 'r1'",
            // R1 re-triggered w.r.t. deleted {Bill, Jim}: Sam, Sue, dept 3.
            "rule 'r1' re-triggered",
            "rule 'r1' considered",
            "rule 'r1' executed (I=0 D=3 U=0)",
            "trans-info init for 'r1'",
            // R1 re-triggered w.r.t. deleted {Sam, Sue}: "no additional
            // employees are deleted".
            "rule 'r1' re-triggered",
            "rule 'r1' considered",
            "rule 'r1' executed (I=0 D=0 U=0)",
            "trans-info init for 'r1'",
            "txn commit (4 fired, 4 transitions)",
        ],
        "the paper's Example 4.3 interleaving, at event granularity"
    );
}

/// The reversed-priority variant at event granularity: R2 receives its
/// initial window but is never even *considered* — R1's deletions
/// composed the salary updates away before R2's turn came (Definition
/// 2.1 untriggering).
#[test]
fn example_4_3_reversed_golden_trace() {
    let mut sys = paper_db();
    define_r1_r2(&mut sys);
    sys.execute("create rule priority r1 before r2").unwrap();
    load_org(&mut sys);
    sys.clear_events();
    sys.transaction(EXAMPLE_4_3_BLOCK).unwrap();
    let t = trace(&sys);
    assert_eq!(
        t,
        vec![
            "txn begin",
            "external block absorbed (I=0 D=1 U=2 S=0)",
            "trans-info init for 'r1'",
            "trans-info init for 'r2'",
            "rule 'r1' considered",
            "rule 'r1' executed (I=0 D=3 U=0)",
            "trans-info init for 'r1'",
            "rule 'r1' re-triggered",
            "rule 'r1' considered",
            "rule 'r1' executed (I=0 D=5 U=0)",
            "trans-info init for 'r1'",
            "rule 'r1' re-triggered",
            "rule 'r1' considered",
            "rule 'r1' executed (I=0 D=0 U=0)",
            "trans-info init for 'r1'",
            "txn commit (3 fired, 3 transitions)",
        ],
    );
    assert!(
        !t.iter().any(|l| l.contains("'r2' considered")),
        "r2 was untriggered before it could be considered"
    );
}
