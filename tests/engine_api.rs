//! Surface-level API tests for [`setrules_core::RuleSystem`]: statement
//! routing, outcomes, error cases, and introspection.

use setrules_core::{EngineConfig, ExecOutcome, RuleError, RuleSystem, TxnOutcome};
use setrules_storage::Value;

#[test]
fn execute_routes_statements() {
    let mut sys = RuleSystem::new();
    assert!(matches!(sys.execute("create table t (k int)").unwrap(), ExecOutcome::Ddl(_)));
    assert!(matches!(sys.execute("create index on t (k)").unwrap(), ExecOutcome::Ddl(_)));
    assert!(matches!(sys.execute("drop index on t (k)").unwrap(), ExecOutcome::Ddl(_)));
    assert!(matches!(
        sys.execute("create rule r when inserted into t then delete from t where k < 0").unwrap(),
        ExecOutcome::Ddl(_)
    ));
    assert!(matches!(sys.execute("insert into t values (1)").unwrap(), ExecOutcome::Txn(_)));
    // A select outside a transaction runs as a transaction and returns rows.
    let ExecOutcome::Txn(TxnOutcome::Committed { output: Some(rel), .. }) =
        sys.execute("select k from t").unwrap()
    else {
        panic!("select must produce output");
    };
    assert_eq!(rel.rows, vec![vec![Value::Int(1)]]);
}

#[test]
fn execute_script_stops_at_first_error() {
    let mut sys = RuleSystem::new();
    let err = sys
        .execute_script("create table t (k int); insert into t values ('bad'); insert into t values (2)")
        .unwrap_err();
    assert!(matches!(err, RuleError::Query(_) | RuleError::Storage(_)), "{err}");
    // The table exists (first statement ran), but neither insert survives.
    assert_eq!(sys.query("select count(*) from t").unwrap().scalar().unwrap(), &Value::Int(0));
}

#[test]
fn query_rejects_non_select() {
    let sys = RuleSystem::new();
    assert!(matches!(sys.query("process rules"), Err(RuleError::Unsupported(_))));
    assert!(matches!(sys.query("drop rule x"), Err(RuleError::Unsupported(_))));
}

#[test]
fn duplicate_and_missing_rules() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create rule r when inserted into t then delete from t where k < 0").unwrap();
    let err = sys
        .execute("create rule r when inserted into t then delete from t where k < 0")
        .unwrap_err();
    assert!(matches!(err, RuleError::DuplicateRule(_)));
    assert!(matches!(sys.execute("drop rule nope"), Err(RuleError::NoSuchRule(_))));
    assert!(matches!(sys.execute("activate rule nope"), Err(RuleError::NoSuchRule(_))));
}

#[test]
fn rule_referencing_unknown_table_or_column_rejected() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    assert!(sys
        .execute("create rule r when inserted into ghost then delete from t")
        .is_err());
    assert!(sys
        .execute("create rule r when updated t.ghost then delete from t")
        .is_err());
    // Actions referencing unknown tables fail at first execution (they
    // compile — name resolution for plain tables is dynamic)...
    sys.execute("create rule r when inserted into t then delete from ghost").unwrap();
    let err = sys.transaction("insert into t values (1)");
    assert!(err.is_err());
    assert_eq!(
        sys.query("select count(*) from t").unwrap().scalar().unwrap(),
        &Value::Int(0),
        "...and roll the transaction back"
    );
}

#[test]
fn introspection() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create rule a when inserted into t then delete from t where k < 0").unwrap();
    sys.execute("create rule b when deleted from t then insert into t values (0)").unwrap();
    sys.execute("create rule priority a before b").unwrap();
    assert_eq!(sys.rules().count(), 2);
    assert_eq!(sys.rule("a").unwrap().name, "a");
    assert!(sys.rule("zzz").is_none());
    assert_eq!(sys.priority_pairs(), vec![("a".to_string(), "b".to_string())]);
    sys.execute("drop rule b").unwrap();
    assert_eq!(sys.rules().count(), 1);
    assert!(sys.priority_pairs().is_empty());
    assert!(sys.deferred_window().is_empty());
}

#[test]
fn rule_output_surfaces_in_transaction_outcome() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    // The external block's select output is superseded by a later
    // rule-action select.
    sys.execute(
        "create rule reporter when inserted into t then select count(*) from inserted t",
    )
    .unwrap();
    sys.begin().unwrap();
    sys.run_op("insert into t values (1), (2)").unwrap();
    let first = sys.run_op("select k from t").unwrap().unwrap();
    assert_eq!(first.len(), 2);
    let TxnOutcome::Committed { output: Some(rel), .. } = sys.commit().unwrap() else {
        panic!()
    };
    assert_eq!(rel.rows, vec![vec![Value::Int(2)]], "the rule's select is the last output");
}

#[test]
fn config_defaults() {
    let cfg = EngineConfig::default();
    assert_eq!(cfg.max_rule_transitions, 10_000);
    assert!(!cfg.track_selects);
    let sys = RuleSystem::new();
    assert!(!sys.in_transaction());
    assert_eq!(sys.database().table_ids().count(), 0);
}

#[test]
fn same_name_table_can_be_recreated_after_drop() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("insert into t values (1)").unwrap();
    sys.execute("drop table t").unwrap();
    sys.execute("create table t (k int, extra text)").unwrap();
    assert_eq!(sys.query("select count(*) from t").unwrap().scalar().unwrap(), &Value::Int(0));
    sys.execute("insert into t values (5, 'x')").unwrap();
    assert_eq!(sys.query("select count(*) from t").unwrap().scalar().unwrap(), &Value::Int(1));
}

#[test]
fn queries_see_uncommitted_state_inside_txn() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.begin().unwrap();
    sys.run_op("insert into t values (1)").unwrap();
    assert_eq!(
        sys.query("select count(*) from t").unwrap().scalar().unwrap(),
        &Value::Int(1),
        "query() reads the current (uncommitted) state"
    );
    sys.rollback().unwrap();
    assert_eq!(sys.query("select count(*) from t").unwrap().scalar().unwrap(), &Value::Int(0));
}

#[test]
fn create_rule_str_validates_statement_kind() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    assert!(matches!(
        sys.create_rule_str("drop table t"),
        Err(RuleError::Unsupported(_))
    ));
    assert!(sys
        .create_rule_str("create rule ok when inserted into t then delete from t where k < 0")
        .is_ok());
}
