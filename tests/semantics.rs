//! Engine-level tests of the paper's execution semantics: §2.2 net
//! effects, transition-table contents, consideration rounds, retriggering
//! windows (§4.2 + footnote 8), and the footnote-7 divergence guard.

use setrules_core::{EngineConfig, RetriggerSemantics, RuleError, RuleSystem, SelectionStrategy};
use setrules_storage::Value;

fn sys_with_log() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int, v int)").unwrap();
    sys.execute("create table log (tag text, n int)").unwrap();
    sys
}

fn log_rows(sys: &RuleSystem) -> Vec<(String, i64)> {
    sys.query("select tag, n from log order by n, tag")
        .unwrap()
        .rows
        .into_iter()
        .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_i64().unwrap()))
        .collect()
}

// ----------------------------------------------------------------------
// §2.2 net effects, observed through rule triggering
// ----------------------------------------------------------------------

/// "an insertion followed by a deletion is not considered at all": a rule
/// watching inserts must not trigger when the block deletes the tuple
/// again.
#[test]
fn net_effect_insert_then_delete_triggers_nothing() {
    let mut sys = sys_with_log();
    sys.execute(
        "create rule on_ins when inserted into t \
         then insert into log values ('ins', 1)",
    )
    .unwrap();
    sys.execute(
        "create rule on_del when deleted from t \
         then insert into log values ('del', 1)",
    )
    .unwrap();
    let out = sys
        .transaction("insert into t values (1, 1); delete from t where k = 1")
        .unwrap();
    assert!(out.fired().is_empty(), "no net change, no rule fires");
    assert!(log_rows(&sys).is_empty());
}

/// "an insertion followed by an update is considered as an insertion of
/// the updated tuple": the update rule stays silent, and `inserted t`
/// shows the post-update values.
#[test]
fn net_effect_insert_then_update_is_insert_of_updated_tuple() {
    let mut sys = sys_with_log();
    sys.execute(
        "create rule on_upd when updated t.v \
         then insert into log values ('upd', 1)",
    )
    .unwrap();
    sys.execute(
        "create rule on_ins when inserted into t \
         then insert into log (select 'ins', v from inserted t)",
    )
    .unwrap();
    let out = sys
        .transaction("insert into t values (1, 10); update t set v = 99 where k = 1")
        .unwrap();
    let rules: Vec<&str> = out.fired().iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(rules, vec!["on_ins"], "only the insert rule fires");
    assert_eq!(log_rows(&sys), vec![("ins".to_string(), 99)], "inserted t carries current values");
}

/// "if a tuple is updated by several operations and then deleted, we
/// consider only the deletion" — and `deleted t` shows the value from the
/// start of the transition, not the intermediate update.
#[test]
fn net_effect_update_then_delete_is_delete_with_window_start_value() {
    let mut sys = sys_with_log();
    sys.execute("insert into t values (1, 10)").unwrap();
    sys.execute(
        "create rule on_upd when updated t.v then insert into log values ('upd', 1)",
    )
    .unwrap();
    sys.execute(
        "create rule on_del when deleted from t \
         then insert into log (select 'del', v from deleted t)",
    )
    .unwrap();
    let out = sys
        .transaction(
            "update t set v = 20 where k = 1; update t set v = 30 where k = 1; \
             delete from t where k = 1",
        )
        .unwrap();
    let rules: Vec<&str> = out.fired().iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(rules, vec!["on_del"]);
    assert_eq!(
        log_rows(&sys),
        vec![("del".to_string(), 10)],
        "deleted t shows the pre-transition value 10, not 20 or 30"
    );
}

/// "we never consider deletion of a tuple followed by insertion of a new
/// tuple as an update to the original tuple": delete and insert rules
/// fire, the update rule does not.
#[test]
fn net_effect_delete_then_insert_is_not_update() {
    let mut sys = sys_with_log();
    sys.execute("insert into t values (1, 10)").unwrap();
    sys.execute("create rule on_upd when updated t then insert into log values ('upd', 1)").unwrap();
    sys.execute("create rule on_del when deleted from t then insert into log values ('del', 1)").unwrap();
    sys.execute("create rule on_ins when inserted into t then insert into log values ('ins', 1)").unwrap();
    let out = sys
        .transaction("delete from t where k = 1; insert into t values (1, 10)")
        .unwrap();
    let mut rules: Vec<&str> = out.fired().iter().map(|f| f.rule.as_str()).collect();
    rules.sort_unstable();
    assert_eq!(rules, vec!["on_del", "on_ins"]);
}

/// Multiple updates to one tuple collapse into a single update whose old
/// value is the window start and whose new value is current.
#[test]
fn net_effect_multiple_updates_collapse() {
    let mut sys = sys_with_log();
    sys.execute("insert into t values (1, 10)").unwrap();
    sys.execute(
        "create rule on_upd when updated t.v \
         then insert into log (select 'old', v from old updated t.v); \
              insert into log (select 'new', v from new updated t.v)",
    )
    .unwrap();
    sys.transaction("update t set v = 20 where k = 1; update t set v = 30 where k = 1")
        .unwrap();
    assert_eq!(
        log_rows(&sys),
        vec![("old".to_string(), 10), ("new".to_string(), 30)]
    );
}

/// Column-granular `updated t.c` predicates: updating only `k` must not
/// trigger a rule watching `t.v`.
#[test]
fn column_granular_update_predicates() {
    let mut sys = sys_with_log();
    sys.execute("insert into t values (1, 10)").unwrap();
    sys.execute("create rule on_v when updated t.v then insert into log values ('v', 1)").unwrap();
    sys.execute("create rule on_any when updated t then insert into log values ('any', 1)").unwrap();
    let out = sys.transaction("update t set k = 2 where k = 1").unwrap();
    let rules: Vec<&str> = out.fired().iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(rules, vec!["on_any"], "only the whole-table predicate matches");
}

/// `old updated t.c` / `new updated t.c` are restricted to tuples where
/// *that column* changed.
#[test]
fn column_specific_transition_tables_filter_rows() {
    let mut sys = sys_with_log();
    sys.execute("insert into t values (1, 10), (2, 20)").unwrap();
    sys.execute(
        "create rule on_v when updated t.v \
         then insert into log (select 'n', v from new updated t.v)",
    )
    .unwrap();
    // Update v of tuple 1 but only k of tuple 2.
    sys.transaction("update t set v = 11 where k = 1; update t set k = 3 where k = 2")
        .unwrap();
    assert_eq!(log_rows(&sys), vec![("n".to_string(), 11)], "tuple 2 is not in new updated t.v");
}

// ----------------------------------------------------------------------
// Consideration rounds and windows (§4.2)
// ----------------------------------------------------------------------

/// A rule whose condition was false is reconsidered after another rule's
/// transition (§4.2: "a rule that was triggered in S1 but whose condition
/// was found to be false may be reconsidered in S2").
#[test]
fn false_condition_rule_reconsidered_after_new_transition() {
    let mut sys = sys_with_log();
    // `late` needs at least 1 row in log; `early` inserts one.
    sys.execute(
        "create rule late when inserted into t \
         if (select count(*) from log) >= 1 \
         then insert into log values ('late', 2)",
    )
    .unwrap();
    sys.execute(
        "create rule early when inserted into t \
         then insert into log values ('early', 1)",
    )
    .unwrap();
    // Make `late` be considered first so its condition fails once.
    sys.execute("create rule priority late before early").unwrap();
    let out = sys.transaction("insert into t values (1, 1)").unwrap();
    let rules: Vec<&str> = out.fired().iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(rules, vec!["early", "late"], "late fails, early fires, late reconsidered");
}

/// A rule untriggered by the external transition can become triggered by
/// a later rule-generated transition (the `Rk` case of §4.2).
#[test]
fn rule_triggered_by_rule_generated_transition() {
    let mut sys = sys_with_log();
    sys.execute("create table sink (n int)").unwrap();
    sys.execute(
        "create rule chain1 when inserted into t \
         then insert into log values ('one', 1)",
    )
    .unwrap();
    sys.execute(
        "create rule chain2 when inserted into log \
         then insert into sink values (2)",
    )
    .unwrap();
    let out = sys.transaction("insert into t values (1, 1)").unwrap();
    let rules: Vec<&str> = out.fired().iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(rules, vec!["chain1", "chain2"]);
    assert_eq!(
        sys.query("select count(*) from sink").unwrap().scalar().unwrap(),
        &Value::Int(1)
    );
}

// ----------------------------------------------------------------------
// Footnote 7: divergence guard
// ----------------------------------------------------------------------

/// A rule that always re-triggers itself trips the transition limit and
/// the transaction rolls back.
#[test]
fn loop_limit_rolls_back() {
    let mut sys = RuleSystem::with_config(EngineConfig {
        max_rule_transitions: 25,
        ..EngineConfig::default()
    });
    sys.execute("create table t (k int, v int)").unwrap();
    sys.execute("insert into t values (1, 0)").unwrap();
    sys.execute(
        "create rule diverge when updated t.v then update t set v = v + 1",
    )
    .unwrap();
    let err = sys.transaction("update t set v = 1").unwrap_err();
    assert_eq!(err, RuleError::LoopLimitExceeded { limit: 25 });
    // Rolled back to the pre-transaction state.
    let v = sys.query("select v from t").unwrap().rows[0][0].clone();
    assert_eq!(v, Value::Int(0));
    assert!(!sys.in_transaction());
    // The system remains usable.
    sys.execute("drop rule diverge").unwrap();
    sys.execute("update t set v = 7").unwrap();
    assert_eq!(sys.query("select v from t").unwrap().rows[0][0], Value::Int(7));
}

// ----------------------------------------------------------------------
// Footnote 8: alternative retriggering semantics
// ----------------------------------------------------------------------

/// Scenario distinguishing the paper's default from `SinceLastConsidered`:
/// a rule is considered (condition false); a later transition alone does
/// not satisfy its condition, but the composite does. Default semantics
/// fire it; `SinceLastConsidered` resets its window at consideration, so
/// it never fires.
#[test]
fn retrigger_since_last_considered_resets_window() {
    let run = |retrigger: RetriggerSemantics| -> usize {
        let mut sys = RuleSystem::with_config(EngineConfig {
            retrigger,
            strategy: SelectionStrategy::PartialOrder,
            ..EngineConfig::default()
        });
        sys.execute("create table t (k int, v int)").unwrap();
        sys.execute("create table log (tag text, n int)").unwrap();
        // Watcher: needs ≥ 2 inserted t-rows in its window.
        sys.execute(
            "create rule watcher when inserted into t \
             if (select count(*) from inserted t) >= 2 \
             then insert into log values ('fired', 0)",
        )
        .unwrap();
        // Helper inserts one more t-row (once).
        sys.execute(
            "create rule helper when inserted into t \
             if (select count(*) from t) < 2 \
             then insert into t values (2, 0)",
        )
        .unwrap();
        // watcher considered first.
        sys.execute("create rule priority watcher before helper").unwrap();
        let out = sys.transaction("insert into t values (1, 0)").unwrap();
        out.fired().iter().filter(|f| f.rule == "watcher").count()
    };
    assert_eq!(run(RetriggerSemantics::SinceLastAction), 1, "composite window has 2 inserts");
    assert_eq!(
        run(RetriggerSemantics::SinceLastConsidered),
        0,
        "window reset at first consideration; helper's single insert is not enough"
    );
}

/// Scenario distinguishing `SinceLastTriggering`: each new triggering
/// transition *replaces* the window instead of extending it.
#[test]
fn retrigger_since_last_triggering_restarts_window() {
    let run = |retrigger: RetriggerSemantics| -> usize {
        let mut sys = RuleSystem::with_config(EngineConfig {
            retrigger,
            ..EngineConfig::default()
        });
        sys.execute("create table t (k int, v int)").unwrap();
        sys.execute("create table log (tag text, n int)").unwrap();
        // Helper (higher priority) inserts one more t-row, so the watcher
        // is re-triggered by that single-row transition.
        sys.execute(
            "create rule helper when inserted into t \
             if (select count(*) from t) < 3 \
             then insert into t values (9, 9)",
        )
        .unwrap();
        sys.execute(
            "create rule watcher when inserted into t \
             if (select count(*) from inserted t) >= 2 \
             then insert into log values ('fired', 0)",
        )
        .unwrap();
        sys.execute("create rule priority helper before watcher").unwrap();
        // External block inserts 2 rows: watcher's initial window has 2.
        let out = sys.transaction("insert into t values (1, 0), (2, 0)").unwrap();
        out.fired().iter().filter(|f| f.rule == "watcher").count()
    };
    // Default: watcher's window accumulates 2 external + 1 helper row; it
    // fires (once — its own action doesn't insert into t).
    assert_eq!(run(RetriggerSemantics::SinceLastAction), 1);
    // [WF89b]: helper's one-row transition re-triggers the watcher and
    // *replaces* its window with just that row — count 1 < 2, never fires.
    assert_eq!(run(RetriggerSemantics::SinceLastTriggering), 0);
}

// ----------------------------------------------------------------------
// Transition-table licensing (§3 restriction)
// ----------------------------------------------------------------------

#[test]
fn illegal_transition_table_reference_rejected_at_creation() {
    let mut sys = sys_with_log();
    let err = sys
        .execute(
            "create rule bad when inserted into t \
             then insert into log (select 'x', v from deleted t)",
        )
        .unwrap_err();
    assert!(matches!(err, RuleError::IllegalTransitionTable { .. }), "{err}");

    // Column-granular: predicate on t.v does not license old updated t.
    let err = sys
        .execute(
            "create rule bad2 when updated t.v \
             then insert into log (select 'x', v from old updated t)",
        )
        .unwrap_err();
    assert!(matches!(err, RuleError::IllegalTransitionTable { .. }), "{err}");

    // The matching reference is fine.
    sys.execute(
        "create rule good when updated t.v \
         then insert into log (select 'x', v from old updated t.v)",
    )
    .unwrap();
}

#[test]
fn transition_tables_unavailable_in_plain_queries() {
    let sys = sys_with_log();
    let err = sys.query("select * from inserted t").unwrap_err();
    assert!(matches!(err, RuleError::Query(_)), "{err}");
}

// ----------------------------------------------------------------------
// Empty external transitions and error handling
// ----------------------------------------------------------------------

/// "If all three sets in E1 are empty, then no rules can be triggered."
#[test]
fn empty_external_effect_triggers_nothing() {
    let mut sys = sys_with_log();
    sys.execute(
        "create rule any when inserted into t or deleted from t or updated t \
         then insert into log values ('x', 1)",
    )
    .unwrap();
    let out = sys.transaction("delete from t where k = 42").unwrap();
    assert!(out.fired().is_empty());
}

/// DML errors inside a transaction roll the whole transaction back.
#[test]
fn op_error_aborts_transaction() {
    let mut sys = sys_with_log();
    sys.execute("insert into t values (1, 1)").unwrap();
    let err = sys.transaction("insert into t values (2, 2); insert into t values ('bad', 3)");
    assert!(err.is_err());
    assert_eq!(
        sys.query("select count(*) from t").unwrap().scalar().unwrap(),
        &Value::Int(1),
        "the first insert was rolled back"
    );
    assert!(!sys.in_transaction());
}

/// Errors raised while evaluating a rule's condition also roll back.
#[test]
fn condition_error_aborts_transaction() {
    let mut sys = sys_with_log();
    // Scalar subquery over a two-row table → cardinality error when the
    // rule's condition is evaluated.
    sys.execute("insert into log values ('a', 1), ('b', 2)").unwrap();
    sys.execute(
        "create rule bad_cond when inserted into t \
         if (select n from log) > 0 then delete from t",
    )
    .unwrap();
    let err = sys.transaction("insert into t values (1, 1)");
    assert!(err.is_err());
    assert_eq!(
        sys.query("select count(*) from t").unwrap().scalar().unwrap(),
        &Value::Int(0),
        "insert rolled back"
    );
}

/// Deactivated rules never trigger; reactivated ones do.
#[test]
fn deactivate_and_activate() {
    let mut sys = sys_with_log();
    sys.execute("create rule r when inserted into t then insert into log values ('x', 1)").unwrap();
    sys.execute("deactivate rule r").unwrap();
    let out = sys.transaction("insert into t values (1, 1)").unwrap();
    assert!(out.fired().is_empty());
    sys.execute("activate rule r").unwrap();
    let out = sys.transaction("insert into t values (2, 2)").unwrap();
    assert_eq!(out.fired().len(), 1);
}

/// Dropping a rule removes it from triggering; dropping a table referenced
/// by a rule is refused.
#[test]
fn drop_rule_and_table_protection() {
    let mut sys = sys_with_log();
    sys.execute("create rule r when inserted into t then insert into log values ('x', 1)").unwrap();
    let err = sys.execute("drop table t").unwrap_err();
    assert!(matches!(err, RuleError::TableReferencedByRules { .. }));
    let err = sys.execute("drop table log").unwrap_err();
    assert!(matches!(err, RuleError::TableReferencedByRules { .. }));
    sys.execute("drop rule r").unwrap();
    sys.execute("drop table log").unwrap();
    let out = sys.transaction("insert into t values (1, 1)").unwrap();
    assert!(out.fired().is_empty());
}
