//! Snapshot/restore round-trips: data, indexes, rules, priorities, and
//! deactivation state survive serialization; restored systems behave
//! identically.

use setrules_core::{EngineConfig, RuleError, RuleSystem};
use setrules_storage::Value;

fn build() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create index on emp (dept_no)").unwrap();
    sys.execute(
        "create rule cascade when deleted from dept \
         then delete from emp where dept_no in (select dept_no from deleted dept)",
    )
    .unwrap();
    sys.execute(
        "create rule guard when updated emp.salary \
         if exists (select * from emp where salary < 0) then rollback",
    )
    .unwrap();
    sys.execute("create rule dormant when inserted into emp then delete from emp where salary < 0")
        .unwrap();
    sys.execute("deactivate rule dormant").unwrap();
    sys.execute("create rule priority guard before cascade").unwrap();
    sys.execute("insert into dept values (1, 10), (2, 20)").unwrap();
    sys.execute(
        "insert into emp values ('Jane', 10, 95000.0, 1), ('Bill', 20, 25000.0, 2), \
         ('Nil', 30, NULL, NULL)",
    )
    .unwrap();
    sys
}

#[test]
fn snapshot_round_trips_through_json() {
    let sys = build();
    let snap = sys.snapshot().unwrap();
    let json = snap.to_json_string();
    let back = setrules_core::Snapshot::from_json_str(&json).unwrap();
    let restored = RuleSystem::restore(&back, EngineConfig::default()).unwrap();

    // Data identical (including NULLs).
    for q in [
        "select name, emp_no, salary, dept_no from emp order by emp_no",
        "select dept_no, mgr_no from dept order by dept_no",
    ] {
        assert_eq!(sys.query(q).unwrap().rows, restored.query(q).unwrap().rows, "{q}");
    }
    // Metadata identical.
    assert_eq!(restored.rules().count(), 3);
    assert!(!restored.rule("dormant").unwrap().active);
    assert_eq!(restored.priority_pairs(), vec![("guard".to_string(), "cascade".to_string())]);
    // Index restored (observable through explain).
    let plan = restored.explain("select * from emp where dept_no = 1").unwrap();
    assert!(plan.contains("index probe"), "{plan}");
}

#[test]
fn ordered_index_kind_survives_the_round_trip() {
    let mut sys = build();
    sys.execute("create index on emp (salary) using ordered").unwrap();
    let snap = sys.snapshot().unwrap();
    let json = snap.to_json_string();
    // The hash index encodes as a bare column name, the ordered one as a
    // [column, kind] pair.
    assert!(json.contains("\"dept_no\""), "{json}");
    assert!(json.contains("\"ordered\""), "{json}");
    let back = setrules_core::Snapshot::from_json_str(&json).unwrap();
    let restored = RuleSystem::restore(&back, EngineConfig::default()).unwrap();
    // The restored index is still ordered: range scans and sort elision
    // remain available.
    let plan = restored.explain("select * from emp where salary > 50000.0").unwrap();
    assert!(plan.contains("index range scan on emp.salary"), "{plan}");
    let plan = restored.explain("select name from emp order by salary").unwrap();
    assert!(plan.contains("order by: elided via ordered index on emp.salary"), "{plan}");
    assert_eq!(
        sys.query("select name from emp order by salary").unwrap().rows,
        restored.query("select name from emp order by salary").unwrap().rows,
    );
}

#[test]
fn restored_rules_behave_identically() {
    let sys = build();
    let snap = sys.snapshot().unwrap();
    let mut restored = RuleSystem::restore(&snap, EngineConfig::default()).unwrap();
    // The cascade still cascades.
    let out = restored.transaction("delete from dept where dept_no = 1").unwrap();
    assert_eq!(out.fired().len(), 1);
    assert_eq!(
        restored.query("select count(*) from emp").unwrap().scalar().unwrap(),
        &Value::Int(2)
    );
    // The guard still vetoes.
    let out = restored.transaction("update emp set salary = -1.0 where emp_no = 20").unwrap();
    assert!(!out.committed());
    // The dormant rule stays dormant.
    let out = restored.transaction("insert into emp values ('x', 99, -5.0, NULL)").unwrap();
    assert!(out.committed());
}

#[test]
fn snapshot_refuses_external_actions_and_open_txns() {
    let mut sys = build();
    sys.begin().unwrap();
    assert!(matches!(sys.snapshot(), Err(RuleError::TransactionOpen)));
    sys.rollback().unwrap();

    sys.create_rule_external(
        "native",
        "inserted into emp",
        None,
        std::sync::Arc::new(|_: &mut setrules_core::ActionCtx<'_>| Ok(())),
    )
    .unwrap();
    assert!(matches!(sys.snapshot(), Err(RuleError::Unsupported(_))));
}

/// A snapshot taken while deferred transitions are pending would silently
/// drop them — the rules they owe would never fire on the restored
/// system. The engine must refuse until the window is processed (or
/// explicitly cleared).
#[test]
fn snapshot_refuses_pending_deferred_transitions() {
    let mut sys = build();
    sys.transaction_without_rules("delete from dept where dept_no = 1").unwrap();
    assert!(
        !sys.deferred_window().is_empty(),
        "flat transaction must leave a deferred window"
    );
    assert!(matches!(sys.snapshot(), Err(RuleError::Unsupported(_))));

    // Processing the window makes the snapshot legal again.
    sys.process_deferred().unwrap();
    sys.snapshot().unwrap();

    // Clearing (consciously discarding) it also works.
    sys.transaction_without_rules("delete from dept where dept_no = 2").unwrap();
    assert!(matches!(sys.snapshot(), Err(RuleError::Unsupported(_))));
    sys.clear_deferred();
    sys.snapshot().unwrap();
}

#[test]
fn dropped_tables_and_rules_are_omitted() {
    let mut sys = build();
    sys.execute("drop rule dormant").unwrap();
    sys.execute("create table scratch (k int)").unwrap();
    sys.execute("drop table scratch").unwrap();
    let snap = sys.snapshot().unwrap();
    assert_eq!(snap.tables.len(), 2);
    assert_eq!(snap.rules.len(), 2);
    let restored = RuleSystem::restore(&snap, EngineConfig::default()).unwrap();
    assert!(restored.rule("dormant").is_none());
}

#[test]
fn empty_system_snapshot() {
    let sys = RuleSystem::new();
    let snap = sys.snapshot().unwrap();
    assert!(snap.tables.is_empty() && snap.rules.is_empty());
    let restored = RuleSystem::restore(&snap, EngineConfig::default()).unwrap();
    assert_eq!(restored.rules().count(), 0);
}
