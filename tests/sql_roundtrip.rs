//! Property test: printing any AST and reparsing it yields the same AST.
//!
//! Literal caveat baked into the generators: negative numeric literals are
//! excluded (`-2` parses as unary negation of `2`, as in standard SQL),
//! floats are finite non-negative, and identifiers avoid keywords and the
//! transition-table soft keywords.

use proptest::prelude::*;
use setrules_sql::ast::*;
use setrules_sql::token::Keyword;
use setrules_sql::{parse_expr, parse_statement};
use setrules_storage::Value;

const SOFT_KEYWORDS: &[&str] = &["inserted", "deleted", "updated", "selected", "old", "new"];

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,7}".prop_filter("not a keyword", |s| {
        Keyword::from_str(s).is_none() && !SOFT_KEYWORDS.contains(&s.as_str())
    })
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (0i64..=i64::MAX).prop_map(Value::Int),
        (0.0f64..1e12).prop_map(Value::Float),
        "[ -~]{0,12}".prop_map(Value::Text),
    ]
}

fn agg_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

fn binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Mod),
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
    ]
}

fn expr() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        literal().prop_map(Expr::Literal),
        ident().prop_map(|name| Expr::Column { qualifier: None, name }),
        (ident(), ident()).prop_map(|(q, name)| Expr::Column { qualifier: Some(q), name }),
        Just(Expr::Aggregate { func: AggFunc::Count, arg: None, distinct: false }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), binop(), inner.clone()).prop_map(|(l, op, r)| Expr::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r),
            }),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Neg, expr: Box::new(e) }),
            (inner.clone(), any::<bool>())
                .prop_map(|(e, n)| Expr::IsNull { expr: Box::new(e), negated: n }),
            (inner.clone(), prop::collection::vec(inner.clone(), 1..3), any::<bool>()).prop_map(
                |(e, list, n)| Expr::InList { expr: Box::new(e), list, negated: n }
            ),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, n)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: n,
                }
            ),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::Like {
                expr: Box::new(e.clone()),
                pattern: Box::new(e),
                negated: n,
            }),
            (agg_func(), inner.clone(), any::<bool>()).prop_map(|(func, a, distinct)| {
                Expr::Aggregate { func, arg: Some(Box::new(a)), distinct }
            }),
            // Subquery forms over a one-item select.
            (inner.clone(), simple_select(inner.clone()), any::<bool>()).prop_map(
                |(e, s, n)| Expr::InSubquery {
                    expr: Box::new(e),
                    subquery: Box::new(s),
                    negated: n,
                }
            ),
            (simple_select(inner.clone()), any::<bool>())
                .prop_map(|(s, n)| Expr::Exists { subquery: Box::new(s), negated: n }),
            simple_select(inner).prop_map(|s| Expr::ScalarSubquery(Box::new(s))),
        ]
    })
    .boxed()
}

fn transition_source() -> impl Strategy<Value = TableSource> {
    prop_oneof![
        ident().prop_map(|t| TableSource::Transition {
            kind: TransitionKind::Inserted,
            table: t,
            column: None
        }),
        ident().prop_map(|t| TableSource::Transition {
            kind: TransitionKind::Deleted,
            table: t,
            column: None
        }),
        (ident(), prop::option::of(ident()), any::<bool>()).prop_map(|(t, c, old)| {
            TableSource::Transition {
                kind: if old { TransitionKind::OldUpdated } else { TransitionKind::NewUpdated },
                table: t,
                column: c,
            }
        }),
        (ident(), prop::option::of(ident())).prop_map(|(t, c)| TableSource::Transition {
            kind: TransitionKind::Selected,
            table: t,
            column: c
        }),
    ]
}

fn table_ref() -> impl Strategy<Value = TableRef> {
    prop_oneof![
        (ident(), prop::option::of(ident()))
            .prop_map(|(n, alias)| TableRef { source: TableSource::Named(n), alias }),
        (transition_source(), prop::option::of(ident()))
            .prop_map(|(source, alias)| TableRef { source, alias }),
    ]
}

fn simple_select(e: BoxedStrategy<Expr>) -> BoxedStrategy<SelectStmt> {
    (
        prop::collection::vec(
            prop_oneof![
                Just(SelectItem::Wildcard),
                ident().prop_map(SelectItem::QualifiedWildcard),
                (e.clone(), prop::option::of(ident()))
                    .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
            ],
            1..3,
        ),
        prop::collection::vec(table_ref(), 1..3),
        prop::option::of(e.clone()),
        any::<bool>(),
    )
        .prop_map(|(projection, from, predicate, distinct)| SelectStmt {
            distinct,
            projection,
            from,
            predicate,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        })
        .boxed()
}

fn full_select() -> impl Strategy<Value = SelectStmt> {
    (
        simple_select(expr()),
        prop::collection::vec(expr(), 0..2),
        prop::option::of(expr()),
        prop::collection::vec((expr(), any::<bool>()), 0..2),
        prop::option::of(0u64..1000),
    )
        .prop_map(|(mut s, group_by, having, order_by, limit)| {
            s.group_by = group_by;
            s.having = having;
            s.order_by = order_by;
            s.limit = limit;
            s
        })
}

fn dml_op() -> impl Strategy<Value = DmlOp> {
    prop_oneof![
        full_select().prop_map(DmlOp::Select),
        (ident(), prop::collection::vec(prop::collection::vec(expr(), 1..4), 1..3)).prop_map(
            |(table, rows)| DmlOp::Insert(InsertStmt { table, source: InsertSource::Values(rows) })
        ),
        (ident(), full_select()).prop_map(|(table, s)| DmlOp::Insert(InsertStmt {
            table,
            source: InsertSource::Select(Box::new(s)),
        })),
        (ident(), prop::option::of(expr()))
            .prop_map(|(table, predicate)| DmlOp::Delete(DeleteStmt { table, predicate })),
        (
            ident(),
            prop::collection::vec((ident(), expr()), 1..3),
            prop::option::of(expr())
        )
            .prop_map(|(table, sets, predicate)| DmlOp::Update(UpdateStmt {
                table,
                sets,
                predicate
            })),
    ]
}

fn basic_pred() -> impl Strategy<Value = BasicTransPred> {
    prop_oneof![
        ident().prop_map(BasicTransPred::InsertedInto),
        ident().prop_map(BasicTransPred::DeletedFrom),
        (ident(), prop::option::of(ident()))
            .prop_map(|(table, column)| BasicTransPred::Updated { table, column }),
        (ident(), prop::option::of(ident()))
            .prop_map(|(table, column)| BasicTransPred::Selected { table, column }),
    ]
}

fn statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        dml_op().prop_map(Statement::Dml),
        (
            ident(),
            prop::collection::vec(basic_pred(), 1..4),
            prop::option::of(expr()),
            prop_oneof![
                Just(RuleAction::Rollback),
                prop::collection::vec(dml_op(), 1..3).prop_map(RuleAction::Block),
            ],
        )
            .prop_map(|(name, when, condition, action)| {
                Statement::CreateRule(CreateRule { name, when, condition, action })
            }),
        (ident(), prop::collection::vec((ident(), data_type()), 1..4)).prop_map(
            |(name, columns)| Statement::CreateTable(CreateTable { name, columns })
        ),
        (ident(), ident()).prop_map(|(higher, lower)| Statement::CreatePriority { higher, lower }),
        ident().prop_map(Statement::DropRule),
    ]
}

fn data_type() -> impl Strategy<Value = setrules_storage::DataType> {
    use setrules_storage::DataType::*;
    prop_oneof![Just(Int), Just(Float), Just(Text), Just(Bool)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_round_trips(e in expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed for `{printed}`: {err}"));
        prop_assert_eq!(e, reparsed, "printed: {}", printed);
    }

    #[test]
    fn statement_round_trips(s in statement()) {
        let printed = s.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|err| panic!("reparse failed for `{printed}`: {err}"));
        prop_assert_eq!(s, reparsed, "printed: {}", printed);
    }
}
