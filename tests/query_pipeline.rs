//! The compile-once query pipeline, end to end:
//!
//! * **differential property**: every randomly generated (type-correct)
//!   select returns byte-identical relations under `ExecMode::Compiled`
//!   and `ExecMode::Interpreted` — compilation is an execution strategy,
//!   never a semantics change;
//! * **golden plans**: `explain` output for the paper's Example 3.1 / 4.1
//!   query shapes and for a three-way join is locked down exactly;
//! * **plan cache**: repeated rule processing hits the per-rule cache,
//!   any DDL invalidates it, and the `plan_cache` events narrate both;
//! * **access-path determinism**: index-backed scans return handles in
//!   the same order a full scan would (sorted), even after updates have
//!   scrambled index-bucket insertion order.

use setrules_core::{EngineConfig, FiredRule, RuleSystem};
use setrules_query::planner::{scan_handles, Access};
use setrules_query::{
    execute_op, execute_query_ext, execute_query_with_opts, ExecMode, ExecOpts, NoTransitionTables,
    OpStatsCell, Relation,
};
use setrules_sql::ast::{DmlOp, SelectStmt, Statement};
use setrules_sql::parse_statement;
use setrules_storage::{tuple, ColumnId, Database, TableId, Value};
use setrules_testkit::{check, Rng};

fn exec(db: &mut Database, sql: &str) {
    let Statement::Dml(op) = parse_statement(sql).unwrap() else { panic!("not DML: {sql}") };
    execute_op(db, &NoTransitionTables, &op).unwrap();
}

fn sel(sql: &str) -> SelectStmt {
    match parse_statement(sql).unwrap() {
        Statement::Dml(DmlOp::Select(s)) => s,
        _ => panic!("not a select: {sql}"),
    }
}

// ----------------------------------------------------------------------
// Differential property: compiled ≡ interpreted
// ----------------------------------------------------------------------

/// Tables for the generator: `(name, int columns, text columns)`.
const TABLES: &[(&str, &[&str], &[&str])] =
    &[("t1", &["a", "b"], &["s"]), ("t2", &["a", "c"], &[]), ("t3", &["a", "d"], &[])];

fn random_database(rng: &mut Rng) -> Database {
    let mut db = Database::new();
    let mut create = |sql: &str| {
        let Statement::CreateTable(ct) = parse_statement(sql).unwrap() else { panic!() };
        let cols = ct
            .columns
            .into_iter()
            .map(|(n, ty)| setrules_storage::ColumnDef::new(n, ty))
            .collect();
        db.create_table(setrules_storage::TableSchema::new(ct.name, cols)).unwrap()
    };
    let t1 = create("create table t1 (a int, b int, s text)");
    let t2 = create("create table t2 (a int, c int)");
    let t3 = create("create table t3 (a int, d int)");
    // Index column `a` of a random subset of tables, so the same queries
    // run through probe, multi-probe, and seq-scan access paths.
    for t in [t1, t2, t3] {
        if rng.chance(1, 2) {
            db.create_index(t, ColumnId(0)).unwrap();
        }
    }
    let int_lit = |rng: &mut Rng| {
        if rng.chance(1, 6) {
            "NULL".to_string()
        } else {
            rng.range_i64(-2, 5).to_string()
        }
    };
    for (name, ints, texts) in TABLES {
        for _ in 0..rng.below(8) {
            let mut vals: Vec<String> = ints.iter().map(|_| int_lit(rng)).collect();
            for _ in texts.iter() {
                vals.push(rng.pick(&["'ab'", "'ba'", "'abc'", "NULL"]).to_string());
            }
            exec(&mut db, &format!("insert into {name} values ({})", vals.join(", ")));
        }
    }
    db
}

/// A random predicate over the given qualified column names; always
/// type-correct (int comparisons on int columns, `like` on text).
fn random_pred(rng: &mut Rng, ints: &[String], texts: &[String], depth: usize) -> String {
    if depth > 0 && rng.chance(1, 2) {
        let left = random_pred(rng, ints, texts, depth - 1);
        let right = random_pred(rng, ints, texts, depth - 1);
        return match rng.below(3) {
            0 => format!("({left} and {right})"),
            1 => format!("({left} or {right})"),
            _ => format!("not ({left})"),
        };
    }
    let term = |rng: &mut Rng| {
        if rng.chance(1, 3) {
            rng.range_i64(-2, 5).to_string()
        } else {
            rng.pick_cloned(ints)
        }
    };
    match rng.below(if texts.is_empty() { 5 } else { 6 }) {
        0 | 1 => {
            let op = rng.pick(&["=", "<>", "<", "<=", ">", ">="]);
            format!("{} {op} {}", term(rng), term(rng))
        }
        2 => {
            let vals: Vec<String> =
                (0..1 + rng.below(3)).map(|_| rng.range_i64(-2, 5).to_string()).collect();
            let not = if rng.chance(1, 4) { "not " } else { "" };
            format!("{} {not}in ({})", rng.pick_cloned(ints), vals.join(", "))
        }
        3 => {
            let lo = rng.range_i64(-2, 3);
            format!("{} between {lo} and {}", rng.pick_cloned(ints), lo + rng.range_i64(0, 3))
        }
        4 => {
            let not = if rng.chance(1, 2) { " not" } else { "" };
            format!("{} is{not} null", rng.pick_cloned(ints))
        }
        _ => {
            let pat = rng.pick(&["'a%'", "'%b'", "'_b%'", "'ab'"]);
            format!("{} like {pat}", rng.pick_cloned(texts))
        }
    }
}

#[test]
fn compiled_and_interpreted_agree_on_random_queries() {
    check("compiled_vs_interpreted", 300, 0xc0_4411ed, |rng| {
        let db = random_database(rng);
        // 1–3 from items (repeats allowed — distinct aliases).
        let n_items = 1 + rng.below(3);
        let aliases = ["x", "y", "z"];
        let mut from = Vec::new();
        let mut ints = Vec::new();
        let mut texts = Vec::new();
        for alias in aliases.iter().take(n_items) {
            let (table, tints, ttexts) = rng.pick(TABLES);
            from.push(format!("{table} {alias}"));
            ints.extend(tints.iter().map(|c| format!("{alias}.{c}")));
            texts.extend(ttexts.iter().map(|c| format!("{alias}.{c}")));
        }
        let proj = match rng.below(3) {
            0 => "*".to_string(),
            1 => "count(*)".to_string(),
            _ => {
                let k = 1 + rng.below(ints.len().min(3));
                (0..k).map(|_| rng.pick_cloned(&ints)).collect::<Vec<_>>().join(", ")
            }
        };
        let mut sql = format!("select {proj} from {}", from.join(", "));
        if rng.chance(3, 4) {
            sql.push_str(&format!(" where {}", random_pred(rng, &ints, &texts, 2)));
        }
        let stmt = sel(&sql);
        let grouped = proj == "count(*)";
        let run = |mode: ExecMode| {
            let ops = OpStatsCell::new();
            let r = execute_query_ext(
                &db,
                &NoTransitionTables,
                &stmt,
                &ExecOpts { mode, op_stats: Some(&ops), ..Default::default() },
            );
            if let Ok(rel) = &r {
                check_op_stats(&ops, rel, grouped, &sql);
            }
            r
        };
        match (run(ExecMode::Compiled), run(ExecMode::Interpreted)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "result diverged for: {sql}"),
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "error diverged for: {sql}")
            }
            (a, b) => panic!("outcome diverged for {sql}: {a:?} vs {b:?}"),
        }
    });
}

/// Per-operator counter invariants for one successful run of the random
/// differential: every operator name comes from the executor's fixed
/// vocabulary, batch emission agrees with row emission, row flow is
/// conserved between adjacent operators, and the top operator's output is
/// the returned relation.
fn check_op_stats(ops: &OpStatsCell, rel: &Relation, grouped: bool, sql: &str) {
    const VOCAB: &[&str] = &[
        "seq-scan",
        "index-scan",
        "index-range-scan",
        "empty-scan",
        "transition-scan",
        "join", // JoinExec's drain label (also its emit label for a sole item)
        "hash-join",
        "nested-loop",
        "filter",
        "project",
        "aggregate",
        "partial-aggregate",
        "final-aggregate",
        "exchange",
        "distinct",
        "sort",
        "topk",
        "limit",
    ];
    for (name, c) in ops.snapshot() {
        assert!(VOCAB.contains(&name), "[{sql}] unknown operator {name:?} in op stats");
        assert_eq!(
            c.batches > 0,
            c.rows_out > 0,
            "[{sql}] {name}: batches={} vs rows_out={}",
            c.batches,
            c.rows_out
        );
    }
    // The join stage consumes exactly what the scans emitted...
    let scan_out: u64 = ["seq-scan", "index-scan", "index-range-scan", "empty-scan"]
        .iter()
        .map(|n| ops.get(n).rows_out)
        .sum();
    assert_eq!(ops.get("join").rows_in, scan_out, "[{sql}] join input != scan output");
    // ...and the filter consumes exactly the combinations the join
    // emitted, whichever label the join finished under.
    let join_out: u64 =
        ["join", "hash-join", "nested-loop"].iter().map(|n| ops.get(n).rows_out).sum();
    assert_eq!(ops.get("filter").rows_in, join_out, "[{sql}] filter input != join output");
    // The projection stage consumes the filter's survivors and produces
    // the relation (the generator adds no distinct/sort/limit tail).
    // Grouped statements aggregate either in one pass ("aggregate": the
    // interpreter and ineligible shapes) or in two phases
    // ("partial-aggregate" consumes, "final-aggregate" emits); exactly
    // one label set is populated per run, so the sums conserve flow in
    // both modes.
    if grouped {
        let agg_in = ops.get("aggregate").rows_in + ops.get("partial-aggregate").rows_in;
        let agg_out = ops.get("aggregate").rows_out + ops.get("final-aggregate").rows_out;
        assert_eq!(agg_in, ops.get("filter").rows_out, "[{sql}] aggregate input");
        assert_eq!(agg_out, rel.rows.len() as u64, "[{sql}] aggregate output");
    } else {
        assert_eq!(ops.get("project").rows_in, ops.get("filter").rows_out, "[{sql}] project input");
        assert_eq!(ops.get("project").rows_out, rel.rows.len() as u64, "[{sql}] project output");
    }
}

/// An error-producing predicate: division/modulo by zero, int/text type
/// mismatches, a bad `like ... escape`, or an unknown column — all
/// reached *lazily*, only when a row actually flows through the
/// expression (an empty scan must succeed in both modes).
fn error_prone_pred(rng: &mut Rng, ints: &[String], texts: &[String]) -> String {
    let a = rng.pick_cloned(ints);
    match rng.below(if texts.is_empty() { 4 } else { 6 }) {
        0 => format!("{a} / ({a} - {a}) = 1"),
        1 => format!("{a} % ({a} - {a}) = 0"),
        2 => format!("{a} = 'oops'"),
        3 => format!("no_such_column = {a}"),
        4 => format!("{} > 3", rng.pick_cloned(texts)),
        _ => format!("{} like 'a%' escape '!!'", rng.pick_cloned(texts)),
    }
}

/// The differential extended to error paths: queries that divide by
/// zero, compare across types, hit unknown names, or pass a bad escape
/// must fail identically (same error text) — or succeed identically when
/// no row reaches the poisoned expression — in both modes.
#[test]
fn compiled_and_interpreted_agree_on_error_producing_queries() {
    check("compiled_vs_interpreted_errors", 200, 0xe740_4411, |rng| {
        let db = random_database(rng);
        let (table, tints, ttexts) = rng.pick(TABLES);
        let ints: Vec<String> = tints.iter().map(|c| format!("x.{c}")).collect();
        let texts: Vec<String> = ttexts.iter().map(|c| format!("x.{c}")).collect();
        // Half the time the poison hides behind a guard that may or may
        // not short-circuit it away, so some cases succeed in both modes.
        let poison = error_prone_pred(rng, &ints, &texts);
        let pred = if rng.chance(1, 2) {
            format!("({} and {poison})", random_pred(rng, &ints, &texts, 1))
        } else {
            poison
        };
        let sql = format!("select count(*) from {table} x where {pred}");
        let stmt = sel(&sql);
        let run = |mode: ExecMode| {
            execute_query_with_opts(&db, &NoTransitionTables, &stmt, None, mode, None)
        };
        match (run(ExecMode::Compiled), run(ExecMode::Interpreted)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "result diverged for: {sql}"),
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "error diverged for: {sql}")
            }
            (a, b) => panic!("outcome diverged for {sql}: {a:?} vs {b:?}"),
        }
    });
}

/// Statement-level error agreement: running the same multi-statement
/// script through full engines in both modes fails at the same statement
/// index with the same error text, and both leave identical final state.
#[test]
fn engine_modes_fail_at_the_same_statement() {
    let scripts: &[&[&str]] = &[
        &[
            "insert into t values (1, 'a'), (2, 'b')",
            "update t set k = k / (k - k)", // division by zero on row 1
            "insert into t values (3, 'c')",
        ],
        &[
            "insert into t values (1, 'a')",
            "select * from t where s > 5", // text/int mismatch, lazily
        ],
        &[
            "insert into t values (1, 'a')",
            "delete from t where ghost = 1", // unknown column, lazily
        ],
        &[
            "insert into t values (1, 'a')",
            "select * from t where s like 'a%' escape 'no'", // bad escape
        ],
    ];
    for script in scripts {
        let run = |mode: ExecMode| -> (Option<(usize, String)>, Relation) {
            let mut sys =
                RuleSystem::with_config(EngineConfig { exec_mode: mode, ..Default::default() });
            sys.execute("create table t (k int, s text)").unwrap();
            let mut failure = None;
            for (i, stmt) in script.iter().enumerate() {
                if let Err(e) = sys.execute(stmt) {
                    failure = Some((i, e.to_string()));
                    break;
                }
            }
            (failure, sys.query("select k from t order by k").unwrap())
        };
        let compiled = run(ExecMode::Compiled);
        let interpreted = run(ExecMode::Interpreted);
        assert_eq!(compiled, interpreted, "modes diverged on script {script:?}");
        assert!(compiled.0.is_some(), "script {script:?} was expected to fail");
    }
}

/// The full engine produces identical rule firings and final state in
/// both modes on the paper's cascading-delete scenarios.
#[test]
fn engine_modes_agree_end_to_end() {
    let run = |mode: ExecMode| -> (Vec<FiredRule>, Relation, Relation) {
        let mut sys = RuleSystem::with_config(EngineConfig { exec_mode: mode, ..Default::default() });
        sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
        sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
        sys.execute("create index on emp (dept_no)").unwrap();
        sys.execute(
            "create rule r31 when deleted from dept \
             then delete from emp where dept_no in (select dept_no from deleted dept)",
        )
        .unwrap();
        sys.execute(
            "create rule r41 when deleted from emp \
             then delete from dept where mgr_no in (select emp_no from deleted emp)",
        )
        .unwrap();
        sys.execute("insert into dept values (1, 2), (2, 3), (3, 99)").unwrap();
        sys.execute(
            "insert into emp values ('r', 1, 1.0, 0), ('m1', 2, 1.0, 1), \
             ('m2', 3, 1.0, 2), ('w', 4, 1.0, 3)",
        )
        .unwrap();
        let out = sys.transaction("delete from dept where dept_no = 1").unwrap();
        let emp = sys.query("select name, emp_no, salary, dept_no from emp order by emp_no").unwrap();
        let dept = sys.query("select dept_no, mgr_no from dept order by dept_no").unwrap();
        (out.fired().to_vec(), emp, dept)
    };
    assert_eq!(run(ExecMode::Compiled), run(ExecMode::Interpreted));
}

// ----------------------------------------------------------------------
// Golden explain plans
// ----------------------------------------------------------------------

fn paper_system() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("insert into dept values (1, 10), (2, 20)").unwrap();
    sys.execute(
        "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 10.0, 1), ('c', 3, 10.0, 2)",
    )
    .unwrap();
    sys
}

/// Example 3.1's action body: `delete from emp where dept_no in (select
/// dept_no from deleted dept)`. The subquery's probe values exist only
/// per firing, so the general plan is a seq scan; once the values are
/// literal (what the firing sees), an index turns it into a multi-probe.
#[test]
fn golden_explain_example_3_1_action_shape() {
    let mut sys = paper_system();
    let shape = "select * from emp where dept_no in (select dept_no from deleted dept)";
    let generic = "emp: seq scan (3 rows)\nplan: seq-scan(emp) -> filter -> project\n";
    assert_eq!(sys.explain(shape).unwrap(), generic);
    sys.execute("create index on emp (dept_no)").unwrap();
    assert_eq!(sys.explain(shape).unwrap(), generic);
    assert_eq!(
        sys.explain("select * from emp where dept_no in (1, 2)").unwrap(),
        "emp: index multi-probe on emp.dept_no in (1, 2)\n\
         plan: index-scan(emp) -> filter -> project\n\
         parallel: where\n"
    );
}

/// Example 4.1's recursive-cascade action body, with its two-level
/// subquery chain: `delete from emp where dept_no in (select dept_no from
/// dept where mgr_no in (select emp_no from deleted emp))`.
#[test]
fn golden_explain_example_4_1_action_shape() {
    let mut sys = paper_system();
    sys.execute("create index on emp (dept_no)").unwrap();
    assert_eq!(
        sys.explain(
            "select * from emp where dept_no in \
             (select dept_no from dept where mgr_no in (select emp_no from deleted emp))"
        )
        .unwrap(),
        "emp: seq scan (3 rows)\nplan: seq-scan(emp) -> filter -> project\n"
    );
    // The inner dept lookup, as the executor sees it with literal probe
    // values, keys on the equality probe.
    assert_eq!(
        sys.explain("select dept_no from dept where dept_no = 1").unwrap(),
        "dept: seq scan (2 rows)\nplan: seq-scan(dept) -> filter -> project\nparallel: where\n"
    );
}

#[test]
fn golden_explain_three_way_join_order() {
    let mut sys = paper_system();
    sys.execute("create table proj (proj_no int, dept_no int)").unwrap();
    sys.execute("insert into proj values (100, 1)").unwrap();
    let plan = sys
        .explain(
            "select name from emp, dept, proj \
             where emp.dept_no = dept.dept_no and proj.dept_no = dept.dept_no",
        )
        .unwrap();
    assert_eq!(
        plan,
        "emp: seq scan (3 rows)\n\
         dept: seq scan (2 rows)\n\
         proj: seq scan (1 rows)\n\
         join order: proj (1 rows) -> dept (hash on dept.dept_no = proj.dept_no, 2 rows) \
         -> emp (hash on emp.dept_no = dept.dept_no, 3 rows)\n\
         plan: seq-scan(emp) -> seq-scan(dept) -> seq-scan(proj) -> hash-join -> filter -> project\n\
         parallel: join, where\n"
    );
    // Disconnected item: the planner attaches it as a cross step, last.
    let plan = sys.explain("select name from emp, dept, proj where emp.dept_no = dept.dept_no").unwrap();
    assert!(plan.contains("(cross, "), "{plan}");
}

/// Every line `explain` emits maps to either an access choice for a
/// `from` binding or a node of the lowered operator tree — no orphan
/// diagnostics, and no `plan:` operator outside the executor's fixed
/// name vocabulary. Drives explain across statements that exercise every
/// operator kind and asserts full vocabulary coverage, so adding an
/// operator (or renaming one) without teaching `explain` fails here.
#[test]
fn every_explain_line_maps_to_an_operator_or_access_choice() {
    let mut sys = paper_system();
    sys.execute("create index on emp (dept_no)").unwrap();
    sys.execute("create index on emp (salary) using ordered").unwrap();

    // Exact (parameterless) operator names, and the parameterized ones
    // that print as `base(arg)` — together, the executor vocabulary.
    const EXACT_OPS: &[&str] = &[
        "hash-join",
        "nested-loop",
        "filter",
        "project",
        "aggregate",
        "partial-aggregate",
        "exchange",
        "final-aggregate",
        "distinct",
        "sort",
        "limit",
    ];
    const PARAM_OPS: &[&str] = &[
        "seq-scan",
        "index-scan",
        "index-range-scan",
        "empty-scan",
        "transition-scan",
        "index-minmax",
        "index-order-scan",
    ];

    let queries = [
        "select * from emp",                                             // seq-scan, project
        "select * from emp where dept_no = 1",                           // index-scan, filter
        "select * from emp where salary > 5.0 order by name limit 2",    // range, sort, limit
        "select * from emp where dept_no = NULL",                        // empty-scan
        "select name from emp order by salary",                          // index-order-scan
        "select min(salary) from emp",                                   // index-minmax
        "select distinct dept_no from emp",                              // distinct
        "select dept_no, count(*) from emp group by dept_no",            // two-phase aggregate
        // A subquery beside the aggregate is not row-local, so this
        // grouped statement keeps the one-pass aggregate.
        "select count(*) from emp having count(*) > (select count(*) from dept)",
        "select name from emp, dept where emp.dept_no = dept.dept_no",   // hash-join
        "select name from emp, dept",                                    // nested-loop
        "select * from inserted emp",                                    // transition-scan
        "select * from nosuch",                                          // unknown table
    ];

    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for sql in queries {
        let plan = sys.explain(sql).unwrap();
        for line in plan.lines() {
            let is_access_line = [
                ": seq scan (",
                ": index probe on ",
                ": index multi-probe on ",
                ": index range scan on ",
                ": empty (predicate unsatisfiable)",
                ": transition table ",
                ": unknown table '",
            ]
            .iter()
            .any(|p| line.contains(p));
            if is_access_line {
                continue;
            }
            if line.starts_with("order by: elided via ordered index on ")
                || (line.starts_with("limit: top-") && line.contains(" selection eligible"))
                || line.starts_with("join order: ")
                || line.starts_with("parallel: ")
            {
                continue; // lowering-choice reports (elision / top-K / join
                          // plan / exchange eligibility)
            }
            let Some(ops) = line.strip_prefix("plan: ") else {
                panic!("[{sql}] unmapped explain line: {line:?}");
            };
            for op in ops.split(" -> ") {
                let base = op.split_once('(').map_or(op, |(b, _)| b);
                let known = EXACT_OPS.contains(&op)
                    || (PARAM_OPS.contains(&base) && op.ends_with(')'));
                assert!(known, "[{sql}] operator {op:?} outside the executor vocabulary");
                seen.insert(base.to_string());
            }
        }
    }

    // The query set above must light up the whole vocabulary; a new
    // operator that no query reaches would silently shrink this test.
    let want: std::collections::BTreeSet<String> =
        EXACT_OPS.iter().chain(PARAM_OPS).map(|s| s.to_string()).collect();
    assert_eq!(seen, want, "explain vocabulary coverage drifted");
}

// ----------------------------------------------------------------------
// Plan cache lifecycle
// ----------------------------------------------------------------------

#[test]
fn plan_cache_hits_on_repeated_processing_and_clears_on_ddl() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table log (k int)").unwrap();
    sys.execute(
        "create rule copy when inserted into t \
         if exists (select * from inserted t) \
         then insert into log (select k from inserted t)",
    )
    .unwrap();

    sys.execute("insert into t values (1)").unwrap();
    let s1 = sys.stats().clone();
    assert_eq!(s1.plan_cache_hits, 0, "first consideration compiles fresh");
    assert!(s1.plan_cache_misses >= 1);

    sys.execute("insert into t values (2)").unwrap();
    let s2 = sys.stats().clone();
    assert!(s2.plan_cache_hits >= 1, "second transaction reuses the rule's plans");

    // The event stream narrates the cache: at least one miss then a hit.
    let kinds: Vec<String> = sys
        .recent_events()
        .iter()
        .filter(|e| e.kind() == "plan_cache")
        .map(|e| e.to_string())
        .collect();
    assert!(kinds.contains(&"plan cache miss for 'copy'".to_string()), "{kinds:?}");
    assert!(kinds.contains(&"plan cache hit for 'copy'".to_string()), "{kinds:?}");

    // Any DDL drops every cached plan: the next consideration is a miss.
    sys.execute("create index on t (k)").unwrap();
    sys.execute("insert into t values (3)").unwrap();
    let s3 = sys.stats().clone();
    assert_eq!(s3.plan_cache_misses, s2.plan_cache_misses + 1, "DDL invalidated the cache");
    assert_eq!(s3.plan_cache_hits, s2.plan_cache_hits, "no stale hit after DDL");

    // Interpreted mode never touches the cache.
    let mut isys = RuleSystem::with_config(EngineConfig {
        exec_mode: ExecMode::Interpreted,
        ..Default::default()
    });
    isys.execute("create table t (k int)").unwrap();
    isys.execute("create table log (k int)").unwrap();
    isys.execute(
        "create rule copy when inserted into t then insert into log (select k from inserted t)",
    )
    .unwrap();
    isys.execute("insert into t values (1)").unwrap();
    isys.execute("insert into t values (2)").unwrap();
    assert_eq!(isys.stats().plan_cache_hits, 0);
    assert_eq!(isys.stats().plan_cache_misses, 0);
    assert!(isys.recent_events().iter().all(|e| e.kind() != "plan_cache"));
}

/// Regression: DDL executed *inside a rule action* mid-`process rules`
/// (an external action calling [`setrules_core::ActionCtx::create_index`])
/// must invalidate the plan cache just like top-level DDL — cached plans
/// embed catalog-derived slot positions. (`create rule` mid-processing is
/// architecturally impossible: statement-level DDL requires no open
/// transaction, and `ActionCtx` exposes no rule-definition surface.)
#[test]
fn mid_processing_ddl_in_rule_action_invalidates_plan_cache() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table log (k int)").unwrap();
    sys.execute(
        "create rule copy when inserted into t \
         if exists (select * from inserted t) \
         then insert into log (select k from inserted t)",
    )
    .unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let flag = done.clone();
    sys.create_rule_external(
        "indexer",
        "inserted into t",
        None,
        Arc::new(move |ctx: &mut setrules_core::ActionCtx<'_>| {
            if !flag.swap(true, Ordering::Relaxed) {
                ctx.create_index("t", "k")?;
            }
            Ok(())
        }),
    )
    .unwrap();
    sys.execute("create rule priority copy before indexer").unwrap();

    // Txn 1: both rules compile fresh; indexer then creates the index,
    // dropping every cached plan.
    sys.execute("insert into t values (1)").unwrap();
    let s1 = sys.stats().clone();
    assert_eq!(s1.plan_cache_hits, 0);
    assert!(s1.plan_cache_misses >= 2);
    assert!(done.load(Ordering::Relaxed), "the external action ran its DDL");

    // Txn 2: the mid-processing DDL invalidated the cache, so both rules
    // miss again — no stale hit against the pre-index catalog.
    sys.execute("insert into t values (2)").unwrap();
    let s2 = sys.stats().clone();
    assert_eq!(s2.plan_cache_hits, 0, "a hit here would be a stale plan surviving mid-txn DDL");
    assert!(s2.plan_cache_misses >= s1.plan_cache_misses + 2);

    // Txn 3: no further DDL — the rebuilt plans are reused.
    sys.execute("insert into t values (3)").unwrap();
    let s3 = sys.stats().clone();
    assert!(s3.plan_cache_hits >= 2, "both rules reuse plans once the catalog is stable");

    // The rule pipeline stayed correct throughout.
    assert_eq!(
        sys.query("select count(*) from log").unwrap().scalar().unwrap(),
        &Value::Int(3)
    );
    assert!(sys.explain("select * from t where k = 2").unwrap().contains("index"));
}

// ----------------------------------------------------------------------
// Access-path determinism
// ----------------------------------------------------------------------

/// NaN float semantics, scan vs index: comparisons involving NaN are
/// UNKNOWN (never true), and NaN literals are excluded from index
/// equi-probes (falling back to scan / skipping the `in` item) — so an
/// indexed table must return exactly the rows an unindexed one does, in
/// both execution modes.
#[test]
fn nan_rows_scan_vs_index_differential() {
    let build = |indexed: bool| -> Database {
        let mut db = Database::new();
        let cols = vec![
            setrules_storage::ColumnDef::new("k", setrules_storage::DataType::Int),
            setrules_storage::ColumnDef::new("v", setrules_storage::DataType::Float),
        ];
        let t = db.create_table(setrules_storage::TableSchema::new("f", cols)).unwrap();
        if indexed {
            db.create_index(t, ColumnId(1)).unwrap();
        }
        // Two NaN rows (0.0 / 0.0 evaluates to NaN for floats) amid
        // ordinary values; the index stores NaN under its bit pattern.
        exec(
            &mut db,
            "insert into f values (1, 1.0), (2, 0.0 / 0.0), (3, 2.0), (4, 0.0 / 0.0), (5, 1.0)",
        );
        db
    };
    let queries = [
        "select k from f where v = 1.0",
        "select k from f where v = 0.0 / 0.0",
        "select k from f where v <> 1.0",
        "select k from f where v in (1.0, 0.0 / 0.0)",
        "select k from f where v in (0.0 / 0.0)",
        "select k from f where v between 0.5 and 1.5",
        "select k from f where not (v = 0.0 / 0.0)",
    ];
    let scan_db = build(false);
    let index_db = build(true);
    for sql in queries {
        let stmt = sel(sql);
        for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
            let via_scan =
                execute_query_with_opts(&scan_db, &NoTransitionTables, &stmt, None, mode, None)
                    .unwrap();
            let via_index =
                execute_query_with_opts(&index_db, &NoTransitionTables, &stmt, None, mode, None)
                    .unwrap();
            assert_eq!(via_scan, via_index, "scan/index diverged for {sql} ({mode:?})");
        }
    }
    // Spot-check the semantics themselves: NaN comparisons are UNKNOWN,
    // so `v = NaN`, `v <> 1.0` on NaN rows, and `not (v = NaN)` all
    // exclude the NaN rows.
    let rows = |sql: &str| {
        execute_query_with_opts(
            &index_db,
            &NoTransitionTables,
            &sel(sql),
            None,
            ExecMode::Compiled,
            None,
        )
        .unwrap()
        .rows
        .into_iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect::<Vec<_>>()
    };
    assert_eq!(rows("select k from f where v = 1.0 order by k"), vec![1, 5]);
    assert_eq!(rows("select k from f where v = 0.0 / 0.0"), Vec::<i64>::new());
    assert_eq!(rows("select k from f where v <> 1.0"), vec![3]);
    assert_eq!(rows("select k from f where not (v = 0.0 / 0.0)"), Vec::<i64>::new());
    assert_eq!(rows("select k from f where v in (1.0, 0.0 / 0.0) order by k"), vec![1, 5]);
}

#[test]
fn index_scans_return_handles_in_full_scan_order() {
    let mut db = Database::new();
    let t = {
        let cols = vec![setrules_storage::ColumnDef::new("k", setrules_storage::DataType::Int)];
        db.create_table(setrules_storage::TableSchema::new("t", cols)).unwrap()
    };
    db.create_index(t, ColumnId(0)).unwrap();
    for k in [3i64, 5, 7, 5, 3, 7, 5] {
        db.insert(t, tuple![k]).unwrap();
    }
    // Move early-handle rows across buckets so bucket insertion order no
    // longer matches handle order.
    exec(&mut db, "update t set k = 5 where k = 3");
    exec(&mut db, "update t set k = 7 where k = 5");
    exec(&mut db, "update t set k = 5 where k = 7");

    let expect = |db: &Database, t: TableId, keys: &[i64]| {
        scan_handles(db, t, &Access::FullScan)
            .into_iter()
            .filter(|h| {
                let row = db.table(t).get(*h).unwrap();
                keys.iter().any(|k| row.0[0] == Value::Int(*k))
            })
            .collect::<Vec<_>>()
    };
    let eq5 = scan_handles(&db, t, &Access::IndexEq { column: ColumnId(0), value: Value::Int(5) });
    assert_eq!(eq5, expect(&db, t, &[5]), "IndexEq must match full-scan order");
    let multi = scan_handles(
        &db,
        t,
        &Access::IndexIn { column: ColumnId(0), values: vec![Value::Int(5), Value::Int(7)] },
    );
    assert_eq!(multi, expect(&db, t, &[5, 7]), "IndexIn must match full-scan order");
    assert!(multi.windows(2).all(|w| w[0] < w[1]), "sorted and deduplicated");
}
