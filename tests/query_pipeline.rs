//! The compile-once query pipeline, end to end:
//!
//! * **differential property**: every randomly generated (type-correct)
//!   select returns byte-identical relations under `ExecMode::Compiled`
//!   and `ExecMode::Interpreted` — compilation is an execution strategy,
//!   never a semantics change;
//! * **golden plans**: `explain` output for the paper's Example 3.1 / 4.1
//!   query shapes and for a three-way join is locked down exactly;
//! * **plan cache**: repeated rule processing hits the per-rule cache,
//!   any DDL invalidates it, and the `plan_cache` events narrate both;
//! * **access-path determinism**: index-backed scans return handles in
//!   the same order a full scan would (sorted), even after updates have
//!   scrambled index-bucket insertion order.

use setrules_core::{EngineConfig, FiredRule, RuleSystem};
use setrules_query::planner::{scan_handles, Access};
use setrules_query::{execute_op, execute_query_with_opts, ExecMode, NoTransitionTables, Relation};
use setrules_sql::ast::{DmlOp, SelectStmt, Statement};
use setrules_sql::parse_statement;
use setrules_storage::{tuple, ColumnId, Database, TableId, Value};
use setrules_testkit::{check, Rng};

fn exec(db: &mut Database, sql: &str) {
    let Statement::Dml(op) = parse_statement(sql).unwrap() else { panic!("not DML: {sql}") };
    execute_op(db, &NoTransitionTables, &op).unwrap();
}

fn sel(sql: &str) -> SelectStmt {
    match parse_statement(sql).unwrap() {
        Statement::Dml(DmlOp::Select(s)) => s,
        _ => panic!("not a select: {sql}"),
    }
}

// ----------------------------------------------------------------------
// Differential property: compiled ≡ interpreted
// ----------------------------------------------------------------------

/// Tables for the generator: `(name, int columns, text columns)`.
const TABLES: &[(&str, &[&str], &[&str])] =
    &[("t1", &["a", "b"], &["s"]), ("t2", &["a", "c"], &[]), ("t3", &["a", "d"], &[])];

fn random_database(rng: &mut Rng) -> Database {
    let mut db = Database::new();
    let mut create = |sql: &str| {
        let Statement::CreateTable(ct) = parse_statement(sql).unwrap() else { panic!() };
        let cols = ct
            .columns
            .into_iter()
            .map(|(n, ty)| setrules_storage::ColumnDef::new(n, ty))
            .collect();
        db.create_table(setrules_storage::TableSchema::new(ct.name, cols)).unwrap()
    };
    let t1 = create("create table t1 (a int, b int, s text)");
    let t2 = create("create table t2 (a int, c int)");
    let t3 = create("create table t3 (a int, d int)");
    // Index column `a` of a random subset of tables, so the same queries
    // run through probe, multi-probe, and seq-scan access paths.
    for t in [t1, t2, t3] {
        if rng.chance(1, 2) {
            db.create_index(t, ColumnId(0)).unwrap();
        }
    }
    let int_lit = |rng: &mut Rng| {
        if rng.chance(1, 6) {
            "NULL".to_string()
        } else {
            rng.range_i64(-2, 5).to_string()
        }
    };
    for (name, ints, texts) in TABLES {
        for _ in 0..rng.below(8) {
            let mut vals: Vec<String> = ints.iter().map(|_| int_lit(rng)).collect();
            for _ in texts.iter() {
                vals.push(rng.pick(&["'ab'", "'ba'", "'abc'", "NULL"]).to_string());
            }
            exec(&mut db, &format!("insert into {name} values ({})", vals.join(", ")));
        }
    }
    db
}

/// A random predicate over the given qualified column names; always
/// type-correct (int comparisons on int columns, `like` on text).
fn random_pred(rng: &mut Rng, ints: &[String], texts: &[String], depth: usize) -> String {
    if depth > 0 && rng.chance(1, 2) {
        let left = random_pred(rng, ints, texts, depth - 1);
        let right = random_pred(rng, ints, texts, depth - 1);
        return match rng.below(3) {
            0 => format!("({left} and {right})"),
            1 => format!("({left} or {right})"),
            _ => format!("not ({left})"),
        };
    }
    let term = |rng: &mut Rng| {
        if rng.chance(1, 3) {
            rng.range_i64(-2, 5).to_string()
        } else {
            rng.pick_cloned(ints)
        }
    };
    match rng.below(if texts.is_empty() { 5 } else { 6 }) {
        0 | 1 => {
            let op = rng.pick(&["=", "<>", "<", "<=", ">", ">="]);
            format!("{} {op} {}", term(rng), term(rng))
        }
        2 => {
            let vals: Vec<String> =
                (0..1 + rng.below(3)).map(|_| rng.range_i64(-2, 5).to_string()).collect();
            let not = if rng.chance(1, 4) { "not " } else { "" };
            format!("{} {not}in ({})", rng.pick_cloned(ints), vals.join(", "))
        }
        3 => {
            let lo = rng.range_i64(-2, 3);
            format!("{} between {lo} and {}", rng.pick_cloned(ints), lo + rng.range_i64(0, 3))
        }
        4 => {
            let not = if rng.chance(1, 2) { " not" } else { "" };
            format!("{} is{not} null", rng.pick_cloned(ints))
        }
        _ => {
            let pat = rng.pick(&["'a%'", "'%b'", "'_b%'", "'ab'"]);
            format!("{} like {pat}", rng.pick_cloned(texts))
        }
    }
}

#[test]
fn compiled_and_interpreted_agree_on_random_queries() {
    check("compiled_vs_interpreted", 300, 0xc0_4411ed, |rng| {
        let db = random_database(rng);
        // 1–3 from items (repeats allowed — distinct aliases).
        let n_items = 1 + rng.below(3);
        let aliases = ["x", "y", "z"];
        let mut from = Vec::new();
        let mut ints = Vec::new();
        let mut texts = Vec::new();
        for alias in aliases.iter().take(n_items) {
            let (table, tints, ttexts) = rng.pick(TABLES);
            from.push(format!("{table} {alias}"));
            ints.extend(tints.iter().map(|c| format!("{alias}.{c}")));
            texts.extend(ttexts.iter().map(|c| format!("{alias}.{c}")));
        }
        let proj = match rng.below(3) {
            0 => "*".to_string(),
            1 => "count(*)".to_string(),
            _ => {
                let k = 1 + rng.below(ints.len().min(3));
                (0..k).map(|_| rng.pick_cloned(&ints)).collect::<Vec<_>>().join(", ")
            }
        };
        let mut sql = format!("select {proj} from {}", from.join(", "));
        if rng.chance(3, 4) {
            sql.push_str(&format!(" where {}", random_pred(rng, &ints, &texts, 2)));
        }
        let stmt = sel(&sql);
        let run = |mode: ExecMode| {
            execute_query_with_opts(&db, &NoTransitionTables, &stmt, None, mode, None)
        };
        match (run(ExecMode::Compiled), run(ExecMode::Interpreted)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "result diverged for: {sql}"),
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "error diverged for: {sql}")
            }
            (a, b) => panic!("outcome diverged for {sql}: {a:?} vs {b:?}"),
        }
    });
}

/// The full engine produces identical rule firings and final state in
/// both modes on the paper's cascading-delete scenarios.
#[test]
fn engine_modes_agree_end_to_end() {
    let run = |mode: ExecMode| -> (Vec<FiredRule>, Relation, Relation) {
        let mut sys = RuleSystem::with_config(EngineConfig { exec_mode: mode, ..Default::default() });
        sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
        sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
        sys.execute("create index on emp (dept_no)").unwrap();
        sys.execute(
            "create rule r31 when deleted from dept \
             then delete from emp where dept_no in (select dept_no from deleted dept)",
        )
        .unwrap();
        sys.execute(
            "create rule r41 when deleted from emp \
             then delete from dept where mgr_no in (select emp_no from deleted emp)",
        )
        .unwrap();
        sys.execute("insert into dept values (1, 2), (2, 3), (3, 99)").unwrap();
        sys.execute(
            "insert into emp values ('r', 1, 1.0, 0), ('m1', 2, 1.0, 1), \
             ('m2', 3, 1.0, 2), ('w', 4, 1.0, 3)",
        )
        .unwrap();
        let out = sys.transaction("delete from dept where dept_no = 1").unwrap();
        let emp = sys.query("select name, emp_no, salary, dept_no from emp order by emp_no").unwrap();
        let dept = sys.query("select dept_no, mgr_no from dept order by dept_no").unwrap();
        (out.fired().to_vec(), emp, dept)
    };
    assert_eq!(run(ExecMode::Compiled), run(ExecMode::Interpreted));
}

// ----------------------------------------------------------------------
// Golden explain plans
// ----------------------------------------------------------------------

fn paper_system() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("insert into dept values (1, 10), (2, 20)").unwrap();
    sys.execute(
        "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 10.0, 1), ('c', 3, 10.0, 2)",
    )
    .unwrap();
    sys
}

/// Example 3.1's action body: `delete from emp where dept_no in (select
/// dept_no from deleted dept)`. The subquery's probe values exist only
/// per firing, so the general plan is a seq scan; once the values are
/// literal (what the firing sees), an index turns it into a multi-probe.
#[test]
fn golden_explain_example_3_1_action_shape() {
    let mut sys = paper_system();
    let shape = "select * from emp where dept_no in (select dept_no from deleted dept)";
    assert_eq!(sys.explain(shape).unwrap(), "emp: seq scan (3 rows)\n");
    sys.execute("create index on emp (dept_no)").unwrap();
    assert_eq!(sys.explain(shape).unwrap(), "emp: seq scan (3 rows)\n");
    assert_eq!(
        sys.explain("select * from emp where dept_no in (1, 2)").unwrap(),
        "emp: index multi-probe on emp.dept_no in (1, 2)\n"
    );
}

/// Example 4.1's recursive-cascade action body, with its two-level
/// subquery chain: `delete from emp where dept_no in (select dept_no from
/// dept where mgr_no in (select emp_no from deleted emp))`.
#[test]
fn golden_explain_example_4_1_action_shape() {
    let mut sys = paper_system();
    sys.execute("create index on emp (dept_no)").unwrap();
    assert_eq!(
        sys.explain(
            "select * from emp where dept_no in \
             (select dept_no from dept where mgr_no in (select emp_no from deleted emp))"
        )
        .unwrap(),
        "emp: seq scan (3 rows)\n"
    );
    // The inner dept lookup, as the executor sees it with literal probe
    // values, keys on the equality probe.
    assert_eq!(
        sys.explain("select dept_no from dept where dept_no = 1").unwrap(),
        "dept: seq scan (2 rows)\n"
    );
}

#[test]
fn golden_explain_three_way_join_order() {
    let mut sys = paper_system();
    sys.execute("create table proj (proj_no int, dept_no int)").unwrap();
    sys.execute("insert into proj values (100, 1)").unwrap();
    let plan = sys
        .explain(
            "select name from emp, dept, proj \
             where emp.dept_no = dept.dept_no and proj.dept_no = dept.dept_no",
        )
        .unwrap();
    assert_eq!(
        plan,
        "emp: seq scan (3 rows)\n\
         dept: seq scan (2 rows)\n\
         proj: seq scan (1 rows)\n\
         join order: proj (1 rows) -> dept (hash on dept.dept_no = proj.dept_no, 2 rows) \
         -> emp (hash on emp.dept_no = dept.dept_no, 3 rows)\n"
    );
    // Disconnected item: the planner attaches it as a cross step, last.
    let plan = sys.explain("select name from emp, dept, proj where emp.dept_no = dept.dept_no").unwrap();
    assert!(plan.contains("(cross, "), "{plan}");
}

// ----------------------------------------------------------------------
// Plan cache lifecycle
// ----------------------------------------------------------------------

#[test]
fn plan_cache_hits_on_repeated_processing_and_clears_on_ddl() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table log (k int)").unwrap();
    sys.execute(
        "create rule copy when inserted into t \
         if exists (select * from inserted t) \
         then insert into log (select k from inserted t)",
    )
    .unwrap();

    sys.execute("insert into t values (1)").unwrap();
    let s1 = sys.stats().clone();
    assert_eq!(s1.plan_cache_hits, 0, "first consideration compiles fresh");
    assert!(s1.plan_cache_misses >= 1);

    sys.execute("insert into t values (2)").unwrap();
    let s2 = sys.stats().clone();
    assert!(s2.plan_cache_hits >= 1, "second transaction reuses the rule's plans");

    // The event stream narrates the cache: at least one miss then a hit.
    let kinds: Vec<String> = sys
        .recent_events()
        .iter()
        .filter(|e| e.kind() == "plan_cache")
        .map(|e| e.to_string())
        .collect();
    assert!(kinds.contains(&"plan cache miss for 'copy'".to_string()), "{kinds:?}");
    assert!(kinds.contains(&"plan cache hit for 'copy'".to_string()), "{kinds:?}");

    // Any DDL drops every cached plan: the next consideration is a miss.
    sys.execute("create index on t (k)").unwrap();
    sys.execute("insert into t values (3)").unwrap();
    let s3 = sys.stats().clone();
    assert_eq!(s3.plan_cache_misses, s2.plan_cache_misses + 1, "DDL invalidated the cache");
    assert_eq!(s3.plan_cache_hits, s2.plan_cache_hits, "no stale hit after DDL");

    // Interpreted mode never touches the cache.
    let mut isys = RuleSystem::with_config(EngineConfig {
        exec_mode: ExecMode::Interpreted,
        ..Default::default()
    });
    isys.execute("create table t (k int)").unwrap();
    isys.execute("create table log (k int)").unwrap();
    isys.execute(
        "create rule copy when inserted into t then insert into log (select k from inserted t)",
    )
    .unwrap();
    isys.execute("insert into t values (1)").unwrap();
    isys.execute("insert into t values (2)").unwrap();
    assert_eq!(isys.stats().plan_cache_hits, 0);
    assert_eq!(isys.stats().plan_cache_misses, 0);
    assert!(isys.recent_events().iter().all(|e| e.kind() != "plan_cache"));
}

// ----------------------------------------------------------------------
// Access-path determinism
// ----------------------------------------------------------------------

#[test]
fn index_scans_return_handles_in_full_scan_order() {
    let mut db = Database::new();
    let t = {
        let cols = vec![setrules_storage::ColumnDef::new("k", setrules_storage::DataType::Int)];
        db.create_table(setrules_storage::TableSchema::new("t", cols)).unwrap()
    };
    db.create_index(t, ColumnId(0)).unwrap();
    for k in [3i64, 5, 7, 5, 3, 7, 5] {
        db.insert(t, tuple![k]).unwrap();
    }
    // Move early-handle rows across buckets so bucket insertion order no
    // longer matches handle order.
    exec(&mut db, "update t set k = 5 where k = 3");
    exec(&mut db, "update t set k = 7 where k = 5");
    exec(&mut db, "update t set k = 5 where k = 7");

    let expect = |db: &Database, t: TableId, keys: &[i64]| {
        scan_handles(db, t, &Access::FullScan)
            .into_iter()
            .filter(|h| {
                let row = db.table(t).get(*h).unwrap();
                keys.iter().any(|k| row.0[0] == Value::Int(*k))
            })
            .collect::<Vec<_>>()
    };
    let eq5 = scan_handles(&db, t, &Access::IndexEq { column: ColumnId(0), value: Value::Int(5) });
    assert_eq!(eq5, expect(&db, t, &[5]), "IndexEq must match full-scan order");
    let multi = scan_handles(
        &db,
        t,
        &Access::IndexIn { column: ColumnId(0), values: vec![Value::Int(5), Value::Int(7)] },
    );
    assert_eq!(multi, expect(&db, t, &[5, 7]), "IndexIn must match full-scan order");
    assert!(multi.windows(2).all(|w| w[0] < w[1]), "sorted and deduplicated");
}
