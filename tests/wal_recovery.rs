//! Crash-recovery sweep for the write-ahead log: kill the engine at
//! EVERY WAL append and sync site reachable from the paper-example
//! workloads, reopen from the surviving log, and assert the recovered
//! image is byte-identical to the last committed state — with zero ghost
//! rule-action effects — under both sync policies.
//!
//! The crash model: an injected `wal_append`/`wal_sync` fault marks the
//! log crashed and discards its unsynced suffix, which is exactly what a
//! real kill would have lost. The dying system is then dropped and a new
//! one recovers from the shared in-memory sink (the "disk").
//!
//! Also here: exhaustive torn-tail truncation (recovery from every byte
//! prefix of a log), single-byte corruption properties, the 300-case
//! durable-vs-in-memory differential with a reopen after every
//! statement, checkpoint kill/restore coverage, and the durability
//! semantics of graceful rollbacks and deferred processing.
//!
//! Set `FAULT_SWEEP_FAST=1` to probe only the first, middle, and last
//! site of each kind (the CI-bounded mode used by `scripts/ci.sh`).

use setrules_core::{
    EngineConfig, EngineEvent, RuleError, RuleSystem, SharedMemSink, SyncPolicy, WalConfig,
};
use setrules_query::QueryError;
use setrules_storage::{FaultKind, StorageError};
use setrules_testkit::check;
use setrules_wal::{scan, WalRecord};

// ----------------------------------------------------------------------
// Scenarios: the paper's running examples (as in tests/fault_injection.rs).
// ----------------------------------------------------------------------

struct Scenario {
    name: &'static str,
    /// DDL and rule definitions; logged, but its fault-site counters are
    /// reset before the workload so site numbering starts at the
    /// workload's first operation.
    setup: &'static [&'static str],
    /// Workload statements, each run as one transaction (operation block
    /// + rule processing). Every WAL append and sync any of them performs
    ///   — directly or through rule actions — is a kill site.
    workload: &'static [&'static str],
}

const RULE_R41: &str = "create rule r41 when deleted from emp \
     then delete from emp where dept_no in \
            (select dept_no from dept where mgr_no in \
              (select emp_no from deleted emp)); \
          delete from dept where mgr_no in \
            (select emp_no from deleted emp)";

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "example_3_1",
        setup: &[
            "create table emp (name text, emp_no int, salary float, dept_no int)",
            "create table dept (dept_no int, mgr_no int)",
            "create rule r31 when deleted from dept \
             then delete from emp where dept_no in (select dept_no from deleted dept)",
            "create index on emp (dept_no)",
        ],
        workload: &[
            "insert into dept values (1, 10), (2, 20)",
            "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 10.0, 1), ('c', 3, 10.0, 2)",
            "delete from dept where dept_no = 1",
        ],
    },
    Scenario {
        name: "example_3_2",
        setup: &[
            "create table emp (name text, emp_no int, salary float, dept_no int)",
            "create table dept (dept_no int, mgr_no int)",
            "create rule r32 when updated emp.salary \
             if (select sum(salary) from new updated emp.salary) > \
                (select sum(salary) from old updated emp.salary) \
             then update emp set salary = 0.95 * salary where dept_no = 2; \
                  update emp set salary = 0.85 * salary where dept_no = 3",
            "create index on emp (salary)",
        ],
        workload: &[
            "insert into emp values ('u', 1, 1000.0, 1), ('v', 2, 1000.0, 2), \
             ('w', 3, 1000.0, 3)",
            "update emp set salary = 2000.0 where name = 'u'",
        ],
    },
    Scenario {
        name: "example_4_1",
        setup: &[
            "create table emp (name text, emp_no int, salary float, dept_no int)",
            "create table dept (dept_no int, mgr_no int)",
            RULE_R41,
        ],
        workload: &[
            "insert into dept values (1, 1), (2, 2)",
            "insert into emp values ('r', 1, 1.0, 0), ('m1', 2, 1.0, 1), \
             ('m2', 3, 1.0, 1), ('w1', 4, 1.0, 2), ('w2', 5, 1.0, 2)",
            "delete from emp where name = 'r'",
        ],
    },
    Scenario {
        name: "example_4_3",
        setup: &[
            "create table emp (name text, emp_no int, salary float, dept_no int)",
            "create table dept (dept_no int, mgr_no int)",
            RULE_R41,
            "create rule r2 when updated emp.salary \
             if (select avg(salary) from new updated emp.salary) > 50000 \
             then delete from emp where emp_no in \
                    (select emp_no from new updated emp.salary) \
                  and salary > 80000",
            "create rule priority r2 before r41",
        ],
        workload: &[
            "insert into dept values (1, 1), (2, 2), (3, 3)",
            "insert into emp values \
             ('Jane', 1, 100000.0, 0), ('Mary', 2, 70000.0, 1), ('Jim', 3, 60000.0, 1), \
             ('Bill', 4, 25000.0, 2), ('Sam', 5, 40000.0, 3), ('Sue', 6, 45000.0, 3)",
            "delete from emp where name = 'Jane'; \
             update emp set salary = 30000.0 where name = 'Bill'; \
             update emp set salary = 85000.0 where name = 'Mary'",
        ],
    },
];

// ----------------------------------------------------------------------
// Harness.
// ----------------------------------------------------------------------

fn durable_config(sink: &SharedMemSink, sync: SyncPolicy) -> EngineConfig {
    EngineConfig {
        durability: Some(WalConfig::memory(sink.clone()).with_sync(sync)),
        ..Default::default()
    }
}

/// "Restart the process": recover a fresh system from the sink's bytes.
fn reopen(sink: &SharedMemSink) -> RuleSystem {
    RuleSystem::open(durable_config(sink, SyncPolicy::GroupCommit))
        .expect("recovery from a crashed log must succeed")
}

fn fresh_durable(scenario: &Scenario, sink: &SharedMemSink, sync: SyncPolicy) -> RuleSystem {
    let mut sys = RuleSystem::open(durable_config(sink, sync)).expect("open durable system");
    for stmt in scenario.setup {
        sys.execute(stmt).unwrap();
    }
    // Rebase site numbering: setup's WAL operations are not kill sites.
    sys.fault_injector_mut().reset_counts();
    sys
}

/// The injected-fault payload of an engine error, if that is what it is.
fn fault_of(e: &RuleError) -> Option<(FaultKind, u64)> {
    let se = match e {
        RuleError::Storage(se) => se,
        RuleError::Query(QueryError::Storage(se)) => se,
        _ => return None,
    };
    match se {
        StorageError::FaultInjected { kind, op } => Some((*kind, *op)),
        _ => None,
    }
}

/// Which site numbers of `total` to probe: all of them, or (under
/// `FAULT_SWEEP_FAST`) the first, middle, and last.
fn sites(total: u64) -> Vec<u64> {
    if std::env::var_os("FAULT_SWEEP_FAST").is_some() {
        let mut s = vec![1, total.div_ceil(2), total];
        s.dedup();
        s
    } else {
        (1..=total).collect()
    }
}

const WAL_KINDS: [FaultKind; 2] = [FaultKind::WalAppend, FaultKind::WalSync];

/// Kill `scenario` at WAL site `(kind, n)`: the dying run must roll back
/// to its pre-statement image, the reopened system must recover exactly
/// that committed image (no ghost rule-action effects), and re-running
/// the rest of the workload must land byte-identical to the fault-free
/// final image.
fn kill_and_recover(scenario: &Scenario, sync: SyncPolicy, kind: FaultKind, n: u64, final_image: &str) {
    let sink = SharedMemSink::new();
    let mut sys = fresh_durable(scenario, &sink, sync);
    sys.fault_injector_mut().arm(kind, n);
    let ctx = format!("[{} {sync:?} kind={kind} n={n}]", scenario.name);

    for (i, stmt) in scenario.workload.iter().enumerate() {
        let before = sys.database().state_image();
        match sys.transaction(stmt) {
            Ok(_) => continue,
            Err(e) => {
                let (fk, fn_) =
                    fault_of(&e).unwrap_or_else(|| panic!("{ctx} stmt {i}: unexpected error {e}"));
                assert_eq!((fk, fn_), (kind, n), "{ctx} stmt {i}: wrong fault surfaced");

                // The dying process itself rolled back cleanly.
                assert_eq!(
                    sys.database().state_image(),
                    before,
                    "{ctx} stmt {i}: live state diverged after WAL crash"
                );
                assert!(!sys.in_transaction(), "{ctx}: transaction left open");

                // CRASH: drop the dying process, recover from the "disk".
                drop(sys);
                let mut rec = reopen(&sink);
                assert_eq!(
                    rec.database().state_image(),
                    before,
                    "{ctx} stmt {i}: recovered image is not the pre-statement committed image"
                );
                assert!(!rec.in_transaction(), "{ctx}: recovery opened a transaction");
                assert_eq!(rec.database().undo_len(), 0, "{ctx}: recovery left undo records");
                assert!(
                    rec.stats().wal_replayed_records > 0,
                    "{ctx}: setup DDL alone means recovery replays records"
                );
                assert!(
                    rec.recent_events()
                        .iter()
                        .any(|ev| matches!(ev, EngineEvent::Recovery { .. })),
                    "{ctx}: no Recovery event emitted"
                );

                // Continuation: rerun the killed statement and the rest of
                // the workload on the recovered system — it must land
                // exactly where the fault-free run did (same data AND the
                // same tuple handles).
                for stmt in &scenario.workload[i..] {
                    rec.transaction(stmt)
                        .unwrap_or_else(|e| panic!("{ctx}: continuation failed: {e}"));
                }
                assert_eq!(
                    rec.database().state_image(),
                    final_image,
                    "{ctx}: continuation after recovery diverged from the fault-free run"
                );
                return;
            }
        }
    }
    panic!("{ctx}: armed WAL site was never reached — discovery and sweep disagree");
}

// ----------------------------------------------------------------------
// The headline sweep.
// ----------------------------------------------------------------------

#[test]
fn sweep_kill_at_every_wal_site_on_paper_workloads() {
    for scenario in SCENARIOS {
        for sync in [SyncPolicy::GroupCommit, SyncPolicy::EachRecord] {
            // Discovery: fault-free run, counting WAL operations.
            let sink = SharedMemSink::new();
            let mut sys = fresh_durable(scenario, &sink, sync);
            for stmt in scenario.workload {
                let out = sys.transaction(stmt).unwrap();
                assert!(out.committed(), "{}: fault-free run must commit", scenario.name);
            }
            let final_image = sys.database().state_image();
            let totals: Vec<(FaultKind, u64)> = WAL_KINDS
                .iter()
                .map(|&k| (k, sys.fault_injector().count(k)))
                .filter(|&(_, c)| c > 0)
                .collect();
            assert_eq!(totals.len(), 2, "{}: workload must append and sync", scenario.name);
            drop(sys);

            // A clean log replays to the exact final image.
            assert_eq!(
                reopen(&sink).database().state_image(),
                final_image,
                "{}: clean-log recovery must reproduce the image",
                scenario.name
            );

            let mut swept = 0u64;
            for &(kind, total) in &totals {
                for n in sites(total) {
                    kill_and_recover(scenario, sync, kind, n, &final_image);
                    swept += 1;
                }
            }
            assert!(swept >= 2, "{}: sweep too small", scenario.name);
        }
    }
}

/// Group commit really batches: a whole transaction (Begin + DML + rule
/// actions + Commit) is one sink append and one sync, while the
/// sync-per-record baseline hits the sink once per record.
#[test]
fn group_commit_batches_a_transaction_into_one_append_and_sync() {
    let scenario = &SCENARIOS[0];
    let mut counts = Vec::new();
    for sync in [SyncPolicy::GroupCommit, SyncPolicy::EachRecord] {
        let sink = SharedMemSink::new();
        let mut sys = fresh_durable(scenario, &sink, sync);
        let (a0, s0) = (sink.appends(), sink.syncs());
        sys.transaction(scenario.workload[0]).unwrap();
        counts.push((sink.appends() - a0, sink.syncs() - s0));
    }
    let (group, each) = (counts[0], counts[1]);
    assert_eq!(group, (1, 1), "group commit: one append, one sync per transaction");
    assert!(each.0 > 1, "sync-per-record must append per record, got {each:?}");
    assert_eq!(each.0, each.1, "sync-per-record: one sync per append");
}

// ----------------------------------------------------------------------
// Torn tails and corruption.
// ----------------------------------------------------------------------

/// Build a canonical log (sync-per-record, so records land in distinct
/// frames) and collect the committed image at every statement boundary.
fn canonical_log() -> (SharedMemSink, Vec<String>, Vec<u8>) {
    let scenario = &SCENARIOS[0];
    let sink = SharedMemSink::new();
    let mut sys =
        RuleSystem::open(durable_config(&sink, SyncPolicy::EachRecord)).expect("open durable");
    let mut images = vec![sys.database().state_image()];
    for stmt in scenario.setup.iter().chain(scenario.workload) {
        sys.execute(stmt).unwrap();
        images.push(sys.database().state_image());
    }
    let bytes = sink.bytes();
    (sink, images, bytes)
}

/// Recovery from EVERY byte-length prefix of the log: never panics, never
/// fails, and always lands on a statement-boundary image (a torn
/// transaction is discarded whole — no half-applied statements, no
/// partial rule actions).
#[test]
fn truncation_at_every_byte_recovers_a_statement_boundary_image() {
    let (sink, images, bytes) = canonical_log();
    for len in 0..=bytes.len() {
        sink.set_bytes(bytes[..len].to_vec());
        let rec = RuleSystem::open(durable_config(&sink, SyncPolicy::GroupCommit))
            .unwrap_or_else(|e| panic!("truncation at byte {len}: recovery failed: {e}"));
        let img = rec.database().state_image();
        assert!(
            images.contains(&img),
            "truncation at byte {len} recovered a non-boundary image:\n{img}"
        );
    }
}

/// Single-byte corruption anywhere in the log: recovery must not panic
/// and must not replay the corrupt frame — the CRC stops the scan at the
/// last valid record, which is again a statement boundary.
#[test]
fn single_byte_corruption_never_replays_a_corrupt_frame() {
    let (sink, images, bytes) = canonical_log();
    check("wal_byte_flip_recovery", 160, 0xbadc_0de5, |rng| {
        let pos = rng.below(bytes.len());
        let bit = 1u8 << rng.below(8);
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= bit;
        sink.set_bytes(corrupt);
        // Refusing to open would be acceptable for a corrupt log;
        // panicking or replaying garbage is not.
        if let Ok(rec) = RuleSystem::open(durable_config(&sink, SyncPolicy::GroupCommit)) {
            let img = rec.database().state_image();
            assert!(
                images.contains(&img),
                "flip at byte {pos} (bit {bit:#x}) replayed a corrupt frame:\n{img}"
            );
        }
    });
}

// ----------------------------------------------------------------------
// Durable-vs-in-memory differential.
// ----------------------------------------------------------------------

/// 300 randomized workloads run twice — once purely in memory, once
/// durable with a recovery reopen after EVERY statement. All three
/// systems (memory, durable, recovered) must agree byte-for-byte, and
/// the durable run must fire exactly the same rules.
#[test]
fn durable_and_in_memory_systems_agree_with_reopen_after_every_statement() {
    check("wal_durable_vs_memory", 300, 0xd1ff_5eed, |rng| {
        let sink = SharedMemSink::new();
        let sync =
            if rng.chance(1, 2) { SyncPolicy::GroupCommit } else { SyncPolicy::EachRecord };
        let every = [0u64, 1, 3][rng.below(3)];
        let cfg = |sink: &SharedMemSink| EngineConfig {
            durability: Some(
                WalConfig::memory(sink.clone()).with_sync(sync).with_checkpoint_every(every),
            ),
            ..Default::default()
        };
        let mut mem = RuleSystem::new();
        let mut dur = RuleSystem::open(cfg(&sink)).expect("open durable");

        let mut stmts: Vec<String> = vec![
            "create table t (k int, v float)".into(),
            "create table log (k int)".into(),
        ];
        if rng.chance(1, 2) {
            stmts.push("create index on t (k)".into());
        }
        if rng.chance(1, 2) {
            stmts.push("create index on t (v) using ordered".into());
        }
        if rng.chance(2, 3) {
            stmts.push(
                "create rule audit when deleted from t \
                 then insert into log (select k from deleted t)"
                    .into(),
            );
        }
        if rng.chance(1, 3) {
            stmts.push(
                "create rule cap when updated t.v \
                 if exists (select * from new updated t.v where v > 100.0) then rollback"
                    .into(),
            );
        }
        for _ in 0..2 + rng.below(6) {
            let k = rng.below(6);
            stmts.push(match rng.below(5) {
                0 | 1 => format!("insert into t values ({k}, {}.25)", rng.below(50)),
                2 => format!("update t set v = v + 1.5 where k = {k}"),
                // Trips the `cap` rollback rule when it exists.
                3 => format!("update t set v = 250.0 where k = {k}"),
                _ => format!("delete from t where k = {k}"),
            });
        }

        for (i, stmt) in stmts.iter().enumerate() {
            let a = mem.execute(stmt);
            let b = dur.execute(stmt);
            assert_eq!(
                a.is_ok(),
                b.is_ok(),
                "stmt {i} '{stmt}': durable disagreed ({a:?} vs {b:?})"
            );
            assert_eq!(
                mem.database().state_image(),
                dur.database().state_image(),
                "stmt {i} '{stmt}': durable image diverged from in-memory"
            );
            // Reopen from the log after every statement: recovery must
            // reproduce the live durable image exactly.
            let rec = RuleSystem::open(cfg(&sink)).expect("recovery must succeed");
            assert_eq!(
                rec.database().state_image(),
                dur.database().state_image(),
                "stmt {i} '{stmt}': recovered image diverged"
            );
        }
        // Same rule firings and transaction outcomes on both engines.
        assert_eq!(mem.stats().rules_executed, dur.stats().rules_executed);
        assert_eq!(mem.stats().rules_considered, dur.stats().rules_considered);
        assert_eq!(mem.stats().txns_committed, dur.stats().txns_committed);
        assert_eq!(mem.stats().txns_rolled_back, dur.stats().txns_rolled_back);
    });
}

// ----------------------------------------------------------------------
// Checkpoints.
// ----------------------------------------------------------------------

fn checkpoint_config(sink: &SharedMemSink, every: u64) -> EngineConfig {
    EngineConfig {
        durability: Some(WalConfig::memory(sink.clone()).with_checkpoint_every(every)),
        ..Default::default()
    }
}

/// With a checkpoint after every commit: the image still recovers exactly
/// (checkpoint restore preserves tuple handles, dropped table-id slots,
/// and the handle high-water mark), and killing at ANY WAL site — commit
/// records and checkpoint records alike — leaves a log that recovers to
/// the live post-statement image. A checkpoint fault is absorbed: the
/// commit it follows stays committed.
#[test]
fn checkpoint_kill_sweep_recovers_live_image_at_every_site() {
    let scenario = &SCENARIOS[0];
    let run_setup = |sys: &mut RuleSystem| {
        for stmt in scenario.setup {
            sys.execute(stmt).unwrap();
        }
        sys.fault_injector_mut().reset_counts();
    };

    // Discovery with checkpoints on.
    let sink = SharedMemSink::new();
    let mut sys = RuleSystem::open(checkpoint_config(&sink, 1)).unwrap();
    run_setup(&mut sys);
    for stmt in scenario.workload {
        sys.transaction(stmt).unwrap();
    }
    assert!(sys.stats().checkpoints > 0, "checkpoint_every=1 must write checkpoints");
    let final_image = sys.database().state_image();
    let handles = sys.database().handles_issued();
    let totals: Vec<(FaultKind, u64)> = WAL_KINDS
        .iter()
        .map(|&k| (k, sys.fault_injector().count(k)))
        .filter(|&(_, c)| c > 0)
        .collect();
    drop(sys);
    let rec = reopen(&sink);
    assert_eq!(rec.database().state_image(), final_image, "checkpointed log must recover");
    assert_eq!(
        rec.database().handles_issued(),
        handles,
        "checkpoint restore must preserve the handle high-water mark"
    );
    drop(rec);

    // Kill sweep: after every statement — faulted or not — the log must
    // recover to whatever the live system now holds.
    for &(kind, total) in &totals {
        for n in sites(total) {
            let sink = SharedMemSink::new();
            let mut sys = RuleSystem::open(checkpoint_config(&sink, 1)).unwrap();
            run_setup(&mut sys);
            sys.fault_injector_mut().arm(kind, n);
            let ctx = format!("[checkpoint {} kind={kind} n={n}]", scenario.name);
            for (i, stmt) in scenario.workload.iter().enumerate() {
                match sys.transaction(stmt) {
                    Ok(_) => {}
                    Err(e) => {
                        let got = fault_of(&e)
                            .unwrap_or_else(|| panic!("{ctx} stmt {i}: unexpected error {e}"));
                        assert_eq!(got, (kind, n), "{ctx} stmt {i}");
                    }
                }
                let rec = reopen(&sink);
                assert_eq!(
                    rec.database().state_image(),
                    sys.database().state_image(),
                    "{ctx} stmt {i}: log does not recover to the live image"
                );
            }
        }
    }
}

/// A dropped table leaves a dead `TableId` slot; a checkpoint taken
/// afterwards must re-burn that slot on restore so surviving tables keep
/// their ids (state_image prints them).
#[test]
fn checkpoint_preserves_dropped_table_id_slots_and_rule_state() {
    let sink = SharedMemSink::new();
    let mut sys = RuleSystem::open(checkpoint_config(&sink, 1)).unwrap();
    sys.execute("create table scratch (x int)").unwrap();
    sys.execute("create table t (k int, v float)").unwrap();
    sys.execute("create table log (k int)").unwrap();
    sys.execute("drop table scratch").unwrap();
    sys.execute(
        "create rule audit when deleted from t then insert into log (select k from deleted t)",
    )
    .unwrap();
    sys.execute("create rule noisy when inserted into t then insert into log (select k from inserted t)")
        .unwrap();
    sys.execute("deactivate rule noisy").unwrap();
    sys.execute("create rule priority audit before noisy").unwrap();
    sys.execute("insert into t values (1, 1.5), (2, 2.5)").unwrap();
    sys.execute("delete from t where k = 1").unwrap(); // fires audit; commit writes a checkpoint
    let image = sys.database().state_image();

    let mut rec = reopen(&sink);
    assert_eq!(rec.database().state_image(), image);
    assert!(rec.rule("audit").is_some());
    assert!(!rec.rule("noisy").unwrap().active, "deactivation must survive the checkpoint");
    assert_eq!(rec.priority_pairs(), vec![("audit".to_string(), "noisy".to_string())]);
    // The restored system keeps working: the audit rule still fires.
    rec.execute("delete from t where k = 2").unwrap();
    assert_eq!(
        rec.query("select count(*) from log").unwrap().scalar().unwrap().as_i64(),
        Some(2)
    );
}

// ----------------------------------------------------------------------
// Graceful rollbacks, deferred processing, DDL, misc semantics.
// ----------------------------------------------------------------------

/// A rule-requested rollback on a live (non-crashed) durable system: the
/// transaction contributes nothing to the recovered image, and under
/// sync-per-record the already-durable records are neutralized by an
/// explicit Abort marker.
#[test]
fn graceful_rollback_is_absent_from_the_recovered_image() {
    for sync in [SyncPolicy::GroupCommit, SyncPolicy::EachRecord] {
        let sink = SharedMemSink::new();
        let mut sys = RuleSystem::open(durable_config(&sink, sync)).unwrap();
        sys.execute("create table t (k int, v float)").unwrap();
        sys.execute(
            "create rule cap when updated t.v \
             if exists (select * from new updated t.v where v > 100.0) then rollback",
        )
        .unwrap();
        sys.execute("insert into t values (1, 50.0)").unwrap();
        let committed = sys.database().state_image();

        let out = sys.transaction("update t set v = 500.0 where k = 1").unwrap();
        assert!(!out.committed(), "cap must roll the transaction back");
        assert_eq!(sys.database().state_image(), committed);

        if sync == SyncPolicy::EachRecord {
            let (records, _) = scan(&sink.bytes());
            assert!(
                records.iter().any(|r| matches!(r, WalRecord::Abort { .. })),
                "sync-per-record graceful rollback must write an Abort marker"
            );
        }
        drop(sys);
        let mut rec = reopen(&sink);
        assert_eq!(rec.database().state_image(), committed, "{sync:?}: rollback leaked");
        // Handles burned by the rolled-back update's transaction stay
        // burned: new inserts must not collide with recycled handles.
        rec.execute("insert into t values (2, 60.0)").unwrap();
        assert_eq!(rec.query("select count(*) from t").unwrap().scalar().unwrap().as_i64(), Some(2));
    }
}

/// Deferred processing on a durable system: the flat external
/// transactions and the later rule-processing pass each recover exactly,
/// and the in-memory deferred *window* is durable too — each flat commit
/// logs the composed window as a `DeferredWindow` record, so a pending
/// `process_deferred` survives a crash (see the kill sweep below).
#[test]
fn deferred_processing_commits_are_durable() {
    let sink = SharedMemSink::new();
    let mut sys = RuleSystem::open(durable_config(&sink, SyncPolicy::GroupCommit)).unwrap();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
    sys.execute(
        "create rule r31 when deleted from dept \
         then delete from emp where dept_no in (select dept_no from deleted dept)",
    )
    .unwrap();
    sys.execute("insert into dept values (1, 10)").unwrap();
    sys.execute("insert into emp values ('a', 1, 10.0, 1)").unwrap();
    sys.transaction_without_rules("delete from dept where dept_no = 1").unwrap();
    // The flat transaction is durable before rules ever run.
    assert_eq!(reopen(&sink).database().state_image(), sys.database().state_image());

    sys.process_deferred().unwrap();
    assert_eq!(
        sys.query("select count(*) from emp").unwrap().scalar().unwrap().as_i64(),
        Some(0),
        "r31's deferred action must fire"
    );
    assert_eq!(reopen(&sink).database().state_image(), sys.database().state_image());
}

/// The §5.3 scenario the deferred-window sweep runs: flat transactions
/// accumulate a window, a later `process_deferred` fires r31 against it.
struct DeferredScenario {
    setup: &'static [&'static str],
    flat: &'static [&'static str],
}

const DEFERRED_SCENARIO: DeferredScenario = DeferredScenario {
    setup: &[
        "create table emp (name text, emp_no int, salary float, dept_no int)",
        "create table dept (dept_no int, mgr_no int)",
        "create rule r31 when deleted from dept \
         then delete from emp where dept_no in (select dept_no from deleted dept)",
        "insert into dept values (1, 10), (2, 20)",
        "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 10.0, 1), ('c', 3, 10.0, 2)",
    ],
    // Two flat transactions so the second *composes* onto a non-empty
    // logged window (delete + an update whose old tuple rides along).
    flat: &[
        "delete from dept where dept_no = 1",
        "update emp set salary = 11.5 where name = 'c'",
    ],
};

fn fresh_deferred(sink: &SharedMemSink, sync: SyncPolicy) -> RuleSystem {
    let mut sys = RuleSystem::open(durable_config(sink, sync)).expect("open durable");
    for stmt in DEFERRED_SCENARIO.setup {
        sys.execute(stmt).unwrap();
    }
    sys.fault_injector_mut().reset_counts();
    sys
}

/// Crash between `transaction_without_rules` and `process_deferred`: the
/// recovered system must hold the pending window *byte-identically* —
/// same handles, same old tuples (bit-exact floats), same column sets —
/// and running `process_deferred` on it must land exactly where the
/// crash-free run does.
#[test]
fn deferred_window_survives_crash_before_process_deferred() {
    for sync in [SyncPolicy::GroupCommit, SyncPolicy::EachRecord] {
        // Crash-free run for the expected final image.
        let sink = SharedMemSink::new();
        let mut sys = fresh_deferred(&sink, sync);
        for stmt in DEFERRED_SCENARIO.flat {
            sys.transaction_without_rules(stmt).unwrap();
        }
        let pending = sys.deferred_window().clone();
        assert!(!pending.is_empty(), "scenario must accumulate a window");
        assert!(!pending.del.is_empty() && !pending.upd.is_empty());
        sys.process_deferred().unwrap();
        assert!(sys.deferred_window().is_empty());
        assert_eq!(
            sys.query("select count(*) from emp").unwrap().scalar().unwrap().as_i64(),
            Some(1),
            "[{sync:?}] r31's deferred cascade must fire"
        );
        let final_image = sys.database().state_image();
        drop(sys);

        // Crashing run: "kill" the process after the flat transactions.
        let sink = SharedMemSink::new();
        let mut sys = fresh_deferred(&sink, sync);
        for stmt in DEFERRED_SCENARIO.flat {
            sys.transaction_without_rules(stmt).unwrap();
        }
        assert_eq!(sys.deferred_window(), &pending);
        let committed = sys.database().state_image();
        drop(sys); // CRASH before process_deferred

        let mut rec = reopen(&sink);
        assert_eq!(rec.database().state_image(), committed, "[{sync:?}] data lost");
        assert_eq!(
            rec.deferred_window(),
            &pending,
            "[{sync:?}] recovered deferred window is not byte-identical"
        );
        rec.process_deferred().unwrap();
        assert_eq!(
            rec.database().state_image(),
            final_image,
            "[{sync:?}] deferred pass after recovery diverged from the crash-free run"
        );
        // The cleared window is durable too: a second crash must not
        // re-present (and re-fire) the already-processed work.
        assert!(rec.deferred_window().is_empty());
        drop(rec);
        let rec2 = reopen(&sink);
        assert!(rec2.deferred_window().is_empty(), "[{sync:?}] processed window reappeared");
        assert_eq!(rec2.database().state_image(), final_image);
    }
}

/// Kill the engine at EVERY WAL site reachable from the deferred
/// workload — the flat transactions (which log the window) and the
/// `process_deferred` pass (which logs its clearing) — and assert the
/// reopened system always recovers the committed image plus exactly the
/// deferred window the live system held, then completes the workload to
/// the crash-free final image.
#[test]
fn deferred_window_kill_sweep_at_every_wal_site() {
    for sync in [SyncPolicy::GroupCommit, SyncPolicy::EachRecord] {
        // Discovery: crash-free run, counting WAL fault sites.
        let sink = SharedMemSink::new();
        let mut sys = fresh_deferred(&sink, sync);
        for stmt in DEFERRED_SCENARIO.flat {
            sys.transaction_without_rules(stmt).unwrap();
        }
        let pending = sys.deferred_window().clone();
        sys.process_deferred().unwrap();
        let final_image = sys.database().state_image();
        let totals: Vec<(FaultKind, u64)> = WAL_KINDS
            .iter()
            .map(|&k| (k, sys.fault_injector().count(k)))
            .filter(|&(_, c)| c > 0)
            .collect();
        assert_eq!(totals.len(), 2, "deferred workload must append and sync");
        drop(sys);

        for &(kind, total) in &totals {
            for n in sites(total) {
                let ctx = format!("[deferred {sync:?} kind={kind} n={n}]");
                let sink = SharedMemSink::new();
                let mut sys = fresh_deferred(&sink, sync);
                sys.fault_injector_mut().arm(kind, n);

                // Run the flat transactions until the fault fires (or not).
                let mut faulted = false;
                for stmt in DEFERRED_SCENARIO.flat {
                    let before_img = sys.database().state_image();
                    let before_win = sys.deferred_window().clone();
                    if let Err(e) = sys.transaction_without_rules(stmt) {
                        let got = fault_of(&e)
                            .unwrap_or_else(|| panic!("{ctx}: unexpected error {e}"));
                        assert_eq!(got, (kind, n), "{ctx}: wrong fault");
                        // Flat-txn crash: data rolled back, window untouched.
                        assert_eq!(sys.database().state_image(), before_img, "{ctx}");
                        assert_eq!(sys.deferred_window(), &before_win, "{ctx}: window leaked");
                        faulted = true;
                        break;
                    }
                }
                if !faulted {
                    // Fault lands inside process_deferred. First verify the
                    // acceptance scenario: a reopen HERE — between the flat
                    // transactions and the deferred pass — re-presents the
                    // window byte-identically.
                    assert_eq!(sys.deferred_window(), &pending, "{ctx}");
                    let committed = sys.database().state_image();
                    {
                        let rec = reopen(&sink);
                        assert_eq!(rec.database().state_image(), committed, "{ctx}");
                        assert_eq!(
                            rec.deferred_window(),
                            &pending,
                            "{ctx}: window lost between flat txn and process_deferred"
                        );
                    }
                    let e = match sys.process_deferred() {
                        Err(e) => e,
                        Ok(_) => panic!("{ctx}: armed WAL site was never reached"),
                    };
                    let got =
                        fault_of(&e).unwrap_or_else(|| panic!("{ctx}: unexpected error {e}"));
                    assert_eq!(got, (kind, n), "{ctx}: wrong fault");
                    // The dying pass rolled its rule actions back. The
                    // live window depends on where the site sat: faults
                    // before the engine takes the window (the `Begin` or
                    // the clearing-record append) leave it pending
                    // untouched, faults after are consumed in memory
                    // (pinned semantics, see tests/fault_injection.rs) —
                    // recovery re-presents the full window either way.
                    assert_eq!(sys.database().state_image(), committed, "{ctx}");
                    let live = sys.deferred_window();
                    assert!(
                        live.is_empty() || live == &pending,
                        "{ctx}: live window after a failed deferred pass must be \
                         empty (consumed) or the untouched pending window"
                    );
                }

                // CRASH at the armed site: the recovered image must match
                // the live committed image, and the recovered window must
                // be the one that image still owes a deferred pass — the
                // live window for a flat-txn crash, the full pending
                // window (re-presented) for a process_deferred crash.
                let live_img = sys.database().state_image();
                let expected_win =
                    if faulted { sys.deferred_window().clone() } else { pending.clone() };
                drop(sys);
                let mut rec = reopen(&sink);
                assert_eq!(rec.database().state_image(), live_img, "{ctx}: image diverged");
                assert_eq!(rec.deferred_window(), &expected_win, "{ctx}: window diverged");

                // Completion: rerun the whole deferred workload on the
                // recovered system (flat statements are idempotent here
                // only as a set — instead, run the *remaining* work: any
                // flat statement not yet committed, then the pass).
                let done = count_flat_commits(&sink);
                for stmt in &DEFERRED_SCENARIO.flat[done..] {
                    rec.transaction_without_rules(stmt)
                        .unwrap_or_else(|e| panic!("{ctx}: continuation failed: {e}"));
                }
                assert_eq!(rec.deferred_window(), &pending, "{ctx}: continuation window");
                rec.process_deferred().unwrap_or_else(|e| panic!("{ctx}: deferred failed: {e}"));
                assert_eq!(
                    rec.database().state_image(),
                    final_image,
                    "{ctx}: continuation diverged from the crash-free run"
                );
                assert!(rec.deferred_window().is_empty(), "{ctx}");
            }
        }
    }
}

/// How many of the scenario's flat transactions are committed in the
/// durable log: commits carrying a `DeferredWindow` record (the flat
/// path logs one whenever the window is or was non-empty).
fn count_flat_commits(sink: &SharedMemSink) -> usize {
    let (records, _) = scan(&sink.bytes());
    let mut open_has_window = false;
    let mut flat = 0;
    for r in &records {
        match r {
            WalRecord::Begin => open_has_window = false,
            WalRecord::DeferredWindow { .. } => open_has_window = true,
            WalRecord::Commit { .. } => {
                if open_has_window {
                    flat += 1;
                }
                open_has_window = false;
            }
            _ => {}
        }
    }
    flat
}

/// `clear_deferred` on a durable system is durable: the discarded window
/// must not reappear after recovery.
#[test]
fn clear_deferred_is_durable() {
    let sink = SharedMemSink::new();
    let mut sys = fresh_deferred(&sink, SyncPolicy::GroupCommit);
    sys.transaction_without_rules(DEFERRED_SCENARIO.flat[0]).unwrap();
    assert!(!sys.deferred_window().is_empty());
    sys.clear_deferred();
    let image = sys.database().state_image();
    drop(sys);
    let rec = reopen(&sink);
    assert!(rec.deferred_window().is_empty(), "cleared window reappeared after recovery");
    assert_eq!(rec.database().state_image(), image);
}

/// All DDL — tables, indexes, rules, activation, priorities, drops — is
/// durable the moment the statement returns.
#[test]
fn ddl_is_durable_immediately() {
    let sink = SharedMemSink::new();
    let mut sys = RuleSystem::open(durable_config(&sink, SyncPolicy::GroupCommit)).unwrap();
    let ddl = [
        "create table t (k int, v float)",
        "create table log (k int)",
        "create table gone (x int)",
        "create index on t (k)",
        "create index on t (v) using ordered",
        "drop index on t (v)",
        "drop table gone",
        "create rule audit when deleted from t then insert into log (select k from deleted t)",
        "create rule noisy when inserted into t then insert into log (select k from inserted t)",
        "deactivate rule noisy",
        "activate rule noisy",
        "deactivate rule noisy",
        "create rule priority audit before noisy",
        "drop rule noisy",
    ];
    for stmt in ddl {
        sys.execute(stmt).unwrap();
        let rec = reopen(&sink);
        assert_eq!(
            rec.database().state_image(),
            sys.database().state_image(),
            "after '{stmt}': recovered image diverged"
        );
    }
    let rec = reopen(&sink);
    assert!(rec.rule("audit").is_some());
    assert!(rec.rule("noisy").is_none(), "dropped rule must stay dropped after recovery");
    assert!(rec.priority_pairs().is_empty(), "priorities of dropped rules disappear");
}

/// External-action rules are native code and cannot be replayed from a
/// log; a durable system must refuse them up front.
#[test]
fn durable_systems_refuse_external_action_rules() {
    use setrules_core::{ActionCtx, ExternalAction};
    struct Noop;
    impl ExternalAction for Noop {
        fn run(&self, _ctx: &mut ActionCtx<'_>) -> Result<(), RuleError> {
            Ok(())
        }
    }
    let sink = SharedMemSink::new();
    let mut sys = RuleSystem::open(durable_config(&sink, SyncPolicy::GroupCommit)).unwrap();
    sys.execute("create table t (k int)").unwrap();
    let err = sys
        .create_rule_external("native", "inserted into t", None, std::sync::Arc::new(Noop))
        .unwrap_err();
    assert!(matches!(err, RuleError::Unsupported(_)), "got {err}");
    // A plain in-memory system still accepts them.
    let mut plain = RuleSystem::new();
    plain.execute("create table t (k int)").unwrap();
    plain.create_rule_external("native", "inserted into t", None, std::sync::Arc::new(Noop)).unwrap();
}

/// The observability surface: WAL counters tick, `wal_status` reports the
/// configuration and positions, and WalAppend events carry record kinds.
#[test]
fn wal_counters_status_and_events() {
    let sink = SharedMemSink::new();
    let mut sys = RuleSystem::open(durable_config(&sink, SyncPolicy::GroupCommit)).unwrap();
    assert!(RuleSystem::new().wal_status().is_none(), "in-memory system has no WAL status");

    sys.execute("create table t (k int)").unwrap();
    sys.execute("insert into t values (1), (2)").unwrap();
    assert!(sys.stats().wal_appends >= 4, "ddl + begin + 2 inserts + commit");
    assert!(sys.stats().wal_syncs >= 2, "one per DDL, one per transaction");

    let status = sys.wal_status().expect("durable system has WAL status");
    assert_eq!(status.get("sync_policy").unwrap().as_str(), Some("group_commit"));
    assert_eq!(status.get("buffered_len").unwrap().as_i64(), Some(0));
    assert_eq!(
        status.get("synced_len").unwrap().as_i64(),
        Some(sink.bytes().len() as i64),
        "everything appended is synced at quiescence"
    );
    assert_eq!(
        status.get("wal_appends").unwrap().as_i64(),
        Some(sys.stats().wal_appends as i64)
    );

    let kinds: Vec<String> = sys
        .recent_events()
        .iter()
        .filter_map(|ev| match ev {
            EngineEvent::WalAppend { kind } => Some(kind.clone()),
            _ => None,
        })
        .collect();
    assert!(kinds.contains(&"table_ddl".to_string()));
    assert!(kinds.contains(&"begin".to_string()));
    assert!(kinds.contains(&"insert".to_string()));
    assert!(kinds.contains(&"commit".to_string()));

    drop(sys);
    let rec = reopen(&sink);
    assert!(rec.stats().wal_replayed_records >= 5);
    let status = rec.wal_status().unwrap();
    assert_eq!(
        status.get("wal_replayed_records").unwrap().as_i64(),
        Some(rec.stats().wal_replayed_records as i64)
    );
}

/// Float payloads round-trip bit-exactly through log records (the codec
/// stores IEEE-754 bits, not JSON numbers).
#[test]
fn float_tuples_recover_bit_exactly() {
    let sink = SharedMemSink::new();
    let mut sys = RuleSystem::open(durable_config(&sink, SyncPolicy::GroupCommit)).unwrap();
    sys.execute("create table t (k int, v float)").unwrap();
    sys.execute("insert into t values (1, 0.1), (2, 2.0), (3, 1e300)").unwrap();
    sys.execute("update t set v = v / 3.0 where k = 1").unwrap();
    let image = sys.database().state_image();
    drop(sys);
    assert_eq!(reopen(&sink).database().state_image(), image);
}

// ----------------------------------------------------------------------
// FileSink: the same contracts against a real filesystem (ROADMAP item:
// fsync-ordering tests for the file-backed sink).
// ----------------------------------------------------------------------

/// A unique log path under the OS temp dir; any stale file is removed.
fn temp_wal_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("setrules-wal-{tag}-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn file_config(path: &std::path::Path, sync: SyncPolicy) -> EngineConfig {
    EngineConfig {
        durability: Some(WalConfig::path(path).with_sync(sync)),
        ..Default::default()
    }
}

/// Under both sync policies, a file-backed log receives byte-for-byte
/// what the instrumented memory sink receives for the same workload —
/// i.e. append ordering survives the buffering of `GroupCommit` — and
/// the engine's `wal_syncs` counter equals the number of sink-level
/// `sync` calls actually issued.
#[test]
fn file_sink_bytes_and_sync_schedule_match_memory_sink() {
    let scenario = &SCENARIOS[0]; // example_3_1: inserts + a cascaded delete
    for sync in [SyncPolicy::GroupCommit, SyncPolicy::EachRecord] {
        let path = temp_wal_path(&format!("bytes-{sync:?}"));
        let sink = SharedMemSink::new();
        let mut fs_sys = RuleSystem::open(file_config(&path, sync)).unwrap();
        let mut mem_sys = RuleSystem::open(durable_config(&sink, sync)).unwrap();
        for stmt in scenario.setup {
            fs_sys.execute(stmt).unwrap();
            mem_sys.execute(stmt).unwrap();
        }
        for stmt in scenario.workload {
            fs_sys.transaction(stmt).unwrap();
            mem_sys.transaction(stmt).unwrap();
        }

        // Identical append ordering ⇒ identical bytes on disk.
        let disk = std::fs::read(&path).unwrap();
        assert!(!disk.is_empty(), "[{sync:?}] log file must have content");
        assert_eq!(disk, sink.bytes(), "[{sync:?}] file bytes diverge from the memory sink");

        // The on-disk frames parse back whole: no torn tail after a
        // graceful run, and the commits are present.
        let (recs, valid) = scan(&disk);
        assert_eq!(valid, disk.len() as u64, "[{sync:?}] trailing garbage in the file log");
        let commits = recs.iter().filter(|r| matches!(r, WalRecord::Commit { .. })).count();
        assert!(
            commits >= scenario.workload.len(),
            "[{sync:?}] at least one commit per workload transaction"
        );

        // `wal_syncs` counts real sink syncs — the instrumented sink saw
        // exactly that many, and the file engine (same policy, same
        // workload) reports the same schedule.
        assert_eq!(
            mem_sys.stats().wal_syncs,
            sink.syncs(),
            "[{sync:?}] wal_syncs must equal observed sink syncs"
        );
        assert_eq!(
            fs_sys.stats().wal_syncs,
            sink.syncs(),
            "[{sync:?}] file engine's sync schedule diverges"
        );
        match sync {
            // One sync per committed transaction (plus none for setup-free
            // reads): group commit batches each txn's records.
            SyncPolicy::GroupCommit => assert!(
                fs_sys.stats().wal_syncs >= scenario.workload.len() as u64,
                "[{sync:?}] at least one sync per transaction"
            ),
            // Every record forced out individually: strictly more syncs
            // than group commit needs for the same workload.
            SyncPolicy::EachRecord => assert!(
                fs_sys.stats().wal_syncs > scenario.workload.len() as u64,
                "[{sync:?}] per-record syncing must sync more than once per txn"
            ),
        }

        drop(fs_sys);
        let _ = std::fs::remove_file(&path);
    }
}

/// Dropping the engine and reopening from the file recovers the exact
/// committed image — the file-backed twin of the memory-sink reopen
/// tests above.
#[test]
fn file_sink_reopen_recovers_committed_image() {
    let scenario = &SCENARIOS[0];
    let path = temp_wal_path("reopen");
    let mut sys = RuleSystem::open(file_config(&path, SyncPolicy::GroupCommit)).unwrap();
    for stmt in scenario.setup {
        sys.execute(stmt).unwrap();
    }
    for stmt in scenario.workload {
        assert!(sys.transaction(stmt).unwrap().committed());
    }
    let committed = sys.database().state_image();
    drop(sys); // "process exit": only the file survives

    let rec = RuleSystem::open(file_config(&path, SyncPolicy::GroupCommit)).unwrap();
    assert_eq!(
        rec.database().state_image(),
        committed,
        "file recovery must restore the committed image"
    );
    assert!(rec.stats().wal_replayed_records > 0, "recovery must actually replay the file");
    drop(rec);
    let _ = std::fs::remove_file(&path);
}

/// A torn tail on disk (a partial final frame, as after a mid-write
/// crash) is ignored by file recovery exactly as by memory recovery:
/// the intact prefix replays, the tail is discarded.
#[test]
fn file_sink_recovery_survives_torn_tail() {
    let path = temp_wal_path("torn");
    let mut sys = RuleSystem::open(file_config(&path, SyncPolicy::GroupCommit)).unwrap();
    sys.execute("create table t (k int)").unwrap();
    sys.transaction("insert into t values (1)").unwrap();
    let committed = sys.database().state_image();
    sys.transaction("insert into t values (2)").unwrap();
    drop(sys);

    // Tear the file mid-way through the last transaction's frames: cut
    // back to the penultimate commit boundary plus a few stray bytes.
    let full = std::fs::read(&path).unwrap();
    let (all, valid) = scan(&full);
    assert_eq!(valid, full.len() as u64);
    let total = all.iter().filter(|r| matches!(r, WalRecord::Commit { .. })).count();
    let mut cut = None;
    for len in 1..=full.len() {
        let (recs, v) = scan(&full[..len]);
        if v == len as u64
            && recs.iter().filter(|r| matches!(r, WalRecord::Commit { .. })).count() == total - 1
        {
            cut = Some(len);
            break;
        }
    }
    let cut = cut.expect("a prefix ending at the penultimate commit exists");
    let mut torn = full[..cut].to_vec();
    torn.extend_from_slice(&full[cut..cut + 3.min(full.len() - cut)]); // partial frame
    std::fs::write(&path, &torn).unwrap();

    let rec = RuleSystem::open(file_config(&path, SyncPolicy::GroupCommit)).unwrap();
    assert_eq!(
        rec.database().state_image(),
        committed,
        "torn-tail file recovery must keep exactly the committed prefix"
    );
    drop(rec);
    let _ = std::fs::remove_file(&path);
}
