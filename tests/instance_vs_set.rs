//! Behavioural comparison of the set-oriented rule engine and the
//! instance-oriented baseline on shared workloads: same final states where
//! the semantics coincide, and the §1 expressiveness gaps where they don't.

use setrules_core::RuleSystem;
use setrules_instance::{InstanceEngine, TriggerEvent};
use setrules_storage::Value;

fn set_sys() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys
}

fn inst_sys() -> InstanceEngine {
    let mut eng = InstanceEngine::new();
    eng.create_table("create table dept (dept_no int, mgr_no int)").unwrap();
    eng.create_table("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    eng
}

const LOAD: &str = "insert into dept values (1, 10), (2, 20)";
const EMPS: &str =
    "insert into emp values ('a', 1, 1.0, 1), ('b', 2, 1.0, 1), ('c', 3, 1.0, 2)";

/// Cascade delete: both engines converge to the same final state.
#[test]
fn cascade_delete_same_final_state() {
    let mut set = set_sys();
    set.execute(
        "create rule cascade when deleted from dept \
         then delete from emp where dept_no in (select dept_no from deleted dept)",
    )
    .unwrap();
    set.execute(LOAD).unwrap();
    set.execute(EMPS).unwrap();
    set.execute("delete from dept where dept_no = 1").unwrap();

    let mut inst = inst_sys();
    inst.create_trigger(
        "cascade",
        "dept",
        TriggerEvent::Delete,
        None,
        "delete from emp where dept_no = old.dept_no",
    )
    .unwrap();
    inst.execute(LOAD).unwrap();
    inst.execute(EMPS).unwrap();
    inst.execute("delete from dept where dept_no = 1").unwrap();

    let q = "select name from emp order by emp_no";
    assert_eq!(set.query(q).unwrap().rows, inst.query(q).unwrap().rows);
}

/// Derived-data maintenance (a running per-department headcount): same
/// result, but the set-oriented engine does it in one transition per
/// statement while the baseline fires per row.
#[test]
fn derived_data_same_result_different_activation_counts() {
    let mut set = set_sys();
    set.execute("create table cnt (dept_no int, n int)").unwrap();
    set.execute("insert into cnt values (1, 0), (2, 0)").unwrap();
    set.execute(
        "create rule upkeep when inserted into emp \
         then update cnt set n = n + (select count(*) from inserted emp e \
                                      where e.dept_no = cnt.dept_no) \
              where dept_no in (select dept_no from inserted emp)",
    )
    .unwrap();
    set.execute(LOAD).unwrap();
    let out = set.transaction(EMPS).unwrap();
    assert_eq!(out.fired().len(), 1, "one set-oriented firing for three rows");

    let mut inst = inst_sys();
    inst.create_table("create table cnt (dept_no int, n int)").unwrap();
    inst.execute("insert into cnt values (1, 0), (2, 0)").unwrap();
    inst.create_trigger(
        "upkeep",
        "emp",
        TriggerEvent::Insert,
        None,
        "update cnt set n = n + 1 where dept_no = new.dept_no",
    )
    .unwrap();
    inst.execute(LOAD).unwrap();
    inst.execute(EMPS).unwrap();
    assert_eq!(inst.firings(), 3, "three per-row firings");

    let q = "select dept_no, n from cnt order by dept_no";
    let expect = vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(2), Value::Int(1)]];
    assert_eq!(set.query(q).unwrap().rows, expect);
    assert_eq!(inst.query(q).unwrap().rows, expect);
}

/// §1: "our set-oriented rules allow specification of some conditions and
/// actions not expressible using instance-oriented rules" — a condition
/// over the *whole change set* (Example 3.2's total-salary comparison).
/// The set-oriented rule computes it exactly; the closest per-row trigger
/// necessarily evaluates per-row deltas and reaches a different decision.
#[test]
fn aggregate_over_change_set_is_set_oriented_only() {
    // One raise of +100 and one cut of −60: the *set* condition
    // (sum increased) is true; a per-row condition (this row increased)
    // fires for only one of the rows.
    let mut set = set_sys();
    set.execute("create table flag (n int)").unwrap();
    set.execute(
        "create rule total_watch when updated emp.salary \
         if (select sum(salary) from new updated emp.salary) > \
            (select sum(salary) from old updated emp.salary) \
         then insert into flag values (1)",
    )
    .unwrap();
    set.execute("insert into emp values ('a', 1, 100.0, 1), ('b', 2, 100.0, 1)").unwrap();
    set.transaction(
        "update emp set salary = 200.0 where emp_no = 1; \
         update emp set salary = 40.0 where emp_no = 2",
    )
    .unwrap();
    assert_eq!(
        set.query("select count(*) from flag").unwrap().scalar().unwrap(),
        &Value::Int(1),
        "net +40 across the set: exactly one firing"
    );

    let mut inst = inst_sys();
    inst.create_table("create table flag (n int)").unwrap();
    inst.create_trigger(
        "row_watch",
        "emp",
        TriggerEvent::Update(Some("salary".into())),
        Some("new.salary > old.salary"),
        "insert into flag values (1)",
    )
    .unwrap();
    inst.execute("insert into emp values ('a', 1, 100.0, 1), ('b', 2, 100.0, 1)").unwrap();
    inst.execute("update emp set salary = 200.0 where emp_no = 1").unwrap();
    inst.execute("update emp set salary = 40.0 where emp_no = 2").unwrap();
    // The per-row approximation fires on the raise but cannot see the
    // set-level total; with a net *decrease* it would still fire on any
    // raised row — demonstrably a different predicate.
    assert_eq!(
        inst.query("select count(*) from flag").unwrap().scalar().unwrap(),
        &Value::Int(1)
    );
    // Counter-scenario: raise +10, cut −60 (net decrease). Set-oriented:
    // no firing. Instance-oriented: still fires on the raised row.
    let mut set2 = set_sys();
    set2.execute("create table flag (n int)").unwrap();
    set2.execute(
        "create rule total_watch when updated emp.salary \
         if (select sum(salary) from new updated emp.salary) > \
            (select sum(salary) from old updated emp.salary) \
         then insert into flag values (1)",
    )
    .unwrap();
    set2.execute("insert into emp values ('a', 1, 100.0, 1), ('b', 2, 100.0, 1)").unwrap();
    set2.transaction(
        "update emp set salary = 110.0 where emp_no = 1; \
         update emp set salary = 40.0 where emp_no = 2",
    )
    .unwrap();
    assert_eq!(
        set2.query("select count(*) from flag").unwrap().scalar().unwrap(),
        &Value::Int(0),
        "net decrease: the set-oriented condition is false"
    );

    let mut inst2 = inst_sys();
    inst2.create_table("create table flag (n int)").unwrap();
    inst2
        .create_trigger(
            "row_watch",
            "emp",
            TriggerEvent::Update(Some("salary".into())),
            Some("new.salary > old.salary"),
            "insert into flag values (1)",
        )
        .unwrap();
    inst2.execute("insert into emp values ('a', 1, 100.0, 1), ('b', 2, 100.0, 1)").unwrap();
    inst2.execute("update emp set salary = 110.0 where emp_no = 1").unwrap();
    inst2.execute("update emp set salary = 40.0 where emp_no = 2").unwrap();
    assert_eq!(
        inst2.query("select count(*) from flag").unwrap().scalar().unwrap(),
        &Value::Int(1),
        "the per-row rule fires anyway — it cannot express the set condition"
    );
}

/// Net-effect semantics differ too: insert-then-delete in one block is
/// invisible to set-oriented rules (§2.2) but per-row triggers fire
/// immediately for both events.
#[test]
fn transient_changes_visible_only_to_instance_triggers() {
    let mut set = set_sys();
    set.execute("create table log (n int)").unwrap();
    set.execute("create rule w when inserted into emp then insert into log values (1)").unwrap();
    set.transaction(
        "insert into emp values ('tmp', 9, 1.0, 1); delete from emp where emp_no = 9",
    )
    .unwrap();
    assert_eq!(set.query("select count(*) from log").unwrap().scalar().unwrap(), &Value::Int(0));

    let mut inst = inst_sys();
    inst.create_table("create table log (n int)").unwrap();
    inst.create_trigger("w", "emp", TriggerEvent::Insert, None, "insert into log values (1)").unwrap();
    inst.execute("insert into emp values ('tmp', 9, 1.0, 1); delete from emp where emp_no = 9")
        .unwrap();
    assert_eq!(
        inst.query("select count(*) from log").unwrap().scalar().unwrap(),
        &Value::Int(1),
        "the instance trigger observed the transient insert"
    );
}

/// Recursive cascades terminate in both engines and agree on the result
/// (Example 4.1's workload).
#[test]
fn recursive_cascade_agreement() {
    let mut set = set_sys();
    set.execute(
        "create rule r41 when deleted from emp \
         then delete from emp where dept_no in \
                (select dept_no from dept where mgr_no in (select emp_no from deleted emp)); \
              delete from dept where mgr_no in (select emp_no from deleted emp)",
    )
    .unwrap();
    let mut inst = inst_sys();
    inst.create_trigger(
        "r41",
        "emp",
        TriggerEvent::Delete,
        None,
        "delete from emp where dept_no in (select dept_no from dept where mgr_no = old.emp_no); \
         delete from dept where mgr_no = old.emp_no",
    )
    .unwrap();
    let load = [
        "insert into dept values (1, 1), (2, 2)",
        "insert into emp values ('r', 1, 1.0, 0), ('m1', 2, 1.0, 1), ('m2', 3, 1.0, 1), \
         ('w1', 4, 1.0, 2), ('w2', 5, 1.0, 2)",
    ];
    for s in load {
        set.execute(s).unwrap();
        inst.execute(s).unwrap();
    }
    set.execute("delete from emp where name = 'r'").unwrap();
    inst.execute("delete from emp where name = 'r'").unwrap();
    for q in ["select count(*) from emp", "select count(*) from dept"] {
        assert_eq!(set.query(q).unwrap().rows, inst.query(q).unwrap().rows);
    }
}
