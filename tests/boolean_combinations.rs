//! The paper's §3 note: "In [WF89a], we show that it is possible to use
//! the condition part of a rule to obtain the effect of arbitrary boolean
//! combinations of basic transition predicates."
//!
//! The trick: the `when` list is a disjunction (it only controls
//! *triggering*), and the condition can test whether a particular
//! transition table is non-empty — `exists (select * from inserted t)` is
//! exactly "the transition inserted into t". These tests encode
//! conjunction and negation that way.

use setrules_core::RuleSystem;
use setrules_storage::Value;

fn sys3() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table a (k int)").unwrap();
    sys.execute("create table b (k int)").unwrap();
    sys.execute("create table log (tag text)").unwrap();
    sys
}

/// Conjunction: fire only when the transition inserted into `a` AND
/// deleted from `b`.
#[test]
fn conjunction_of_basic_predicates() {
    let mut sys = sys3();
    sys.execute(
        "create rule both when inserted into a or deleted from b \
         if exists (select * from inserted a) and exists (select * from deleted b) \
         then insert into log values ('both')",
    )
    .unwrap();
    sys.execute("insert into b values (1), (2)").unwrap();

    // Only the insert: triggered (disjunction) but condition false.
    let out = sys.transaction("insert into a values (1)").unwrap();
    assert!(out.fired().is_empty());

    // Only the delete: same.
    let out = sys.transaction("delete from b where k = 1").unwrap();
    assert!(out.fired().is_empty());

    // Both in one transition: fires.
    let out = sys.transaction("insert into a values (2); delete from b where k = 2").unwrap();
    assert_eq!(out.fired().len(), 1);
    assert_eq!(
        sys.query("select count(*) from log").unwrap().scalar().unwrap(),
        &Value::Int(1)
    );
}

/// Negation within a combination: inserted into `a` AND NOT deleted
/// from `b`.
#[test]
fn negated_conjunct() {
    let mut sys = sys3();
    sys.execute(
        "create rule only_insert when inserted into a or deleted from b \
         if exists (select * from inserted a) and not exists (select * from deleted b) \
         then insert into log values ('pure-insert')",
    )
    .unwrap();
    sys.execute("insert into b values (1)").unwrap();

    let out = sys.transaction("insert into a values (1)").unwrap();
    assert_eq!(out.fired().len(), 1, "insert without delete fires");

    let out = sys.transaction("insert into a values (2); delete from b where k = 1").unwrap();
    assert!(out.fired().is_empty(), "insert accompanied by a delete does not");
}

/// Exclusive-or: exactly one of the two events occurred.
#[test]
fn exclusive_or() {
    let mut sys = sys3();
    sys.execute(
        "create rule xor_rule when inserted into a or inserted into b \
         if (exists (select * from inserted a) and not exists (select * from inserted b)) \
            or (not exists (select * from inserted a) and exists (select * from inserted b)) \
         then insert into log values ('xor')",
    )
    .unwrap();
    assert_eq!(sys.transaction("insert into a values (1)").unwrap().fired().len(), 1);
    assert_eq!(sys.transaction("insert into b values (1)").unwrap().fired().len(), 1);
    let out = sys
        .transaction("insert into a values (2); insert into b values (2)")
        .unwrap();
    assert!(out.fired().is_empty(), "both sides present: XOR false");
}

/// Thresholded combination: "at least 2 rows inserted into a AND at least
/// 1 deleted from b" — set-oriented conditions compose with cardinality
/// tests, which instance-oriented per-row rules cannot express at all.
#[test]
fn cardinality_qualified_combination() {
    let mut sys = sys3();
    sys.execute(
        "create rule bulk when inserted into a or deleted from b \
         if (select count(*) from inserted a) >= 2 \
            and exists (select * from deleted b) \
         then insert into log values ('bulk')",
    )
    .unwrap();
    sys.execute("insert into b values (1), (2)").unwrap();
    let out = sys.transaction("insert into a values (1); delete from b where k = 1").unwrap();
    assert!(out.fired().is_empty(), "only one insert");
    let out = sys
        .transaction("insert into a values (2), (3); delete from b where k = 2")
        .unwrap();
    assert_eq!(out.fired().len(), 1);
}
