//! The observability layer: per-variant `EngineEvent` display/serde
//! coverage, sink behavior, counter-additivity properties, and the
//! set-vs-instance differential on the shared B1 audit workload.
//!
//! `scripts/ci.sh` greps this file for every `EngineEvent` variant name:
//! adding a variant without extending `event_samples()` (and thereby the
//! display/serde assertions) fails CI.

use setrules_core::{
    EngineEvent, EngineStats, EventSink, JsonLinesSink, RingBufferSink, RuleSystem, TxnStats,
};
use setrules_instance::{InstanceEngine, TriggerEvent};
use setrules_json::Json;
use setrules_query::ExecStats;
use setrules_storage::StorageStats;
use setrules_testkit::{check, Rng};

// ----------------------------------------------------------------------
// Event vocabulary: one sample per variant, display + JSON asserted.
// ----------------------------------------------------------------------

/// Every `EngineEvent` variant, with its expected display line and JSON
/// tag. CI's enum guard keys off the constructor names in this list.
fn event_samples() -> Vec<(EngineEvent, &'static str, &'static str)> {
    vec![
        (EngineEvent::TxnBegin, "txn begin", "txn_begin"),
        (
            EngineEvent::TxnCommit { fired: 2, transitions: 3 },
            "txn commit (2 fired, 3 transitions)",
            "txn_commit",
        ),
        (
            EngineEvent::Rollback { by_rule: Some("guard".into()) },
            "rollback by rule 'guard'",
            "rollback",
        ),
        (EngineEvent::Rollback { by_rule: None }, "rollback", "rollback"),
        (
            EngineEvent::ExternalBlockAbsorbed { inserted: 1, deleted: 2, updated: 3, selected: 4 },
            "external block absorbed (I=1 D=2 U=3 S=4)",
            "external_block_absorbed",
        ),
        (
            EngineEvent::RuleConsidered { rule: "r".into() },
            "rule 'r' considered",
            "rule_considered",
        ),
        (
            EngineEvent::RuleConditionFalse { rule: "r".into() },
            "rule 'r' condition false",
            "rule_condition_false",
        ),
        (
            EngineEvent::RuleExecuted { rule: "r".into(), inserted: 1, deleted: 0, updated: 2 },
            "rule 'r' executed (I=1 D=0 U=2)",
            "rule_executed",
        ),
        (
            EngineEvent::RuleRetriggered { rule: "r".into() },
            "rule 'r' re-triggered",
            "rule_retriggered",
        ),
        (
            EngineEvent::TransInfoInit { rule: "r".into() },
            "trans-info init for 'r'",
            "trans_info_init",
        ),
        (
            EngineEvent::TransInfoModify { rule: "r".into() },
            "trans-info modify for 'r'",
            "trans_info_modify",
        ),
        (
            EngineEvent::LoopSafeguardAbort { limit: 7 },
            "loop safeguard abort (limit 7)",
            "loop_safeguard_abort",
        ),
        (
            EngineEvent::PlanCache { rule: "r".into(), hit: true },
            "plan cache hit for 'r'",
            "plan_cache",
        ),
        (
            EngineEvent::PlanCache { rule: "r".into(), hit: false },
            "plan cache miss for 'r'",
            "plan_cache",
        ),
        (
            EngineEvent::IncrementalEval {
                rule: "r".into(),
                mode: "repair".into(),
                delta_rows: 3,
                shared: true,
            },
            "incremental eval (repair) for 'r' (3 delta rows, shared delta)",
            "incremental_eval",
        ),
        (
            EngineEvent::IncrementalEval {
                rule: "r".into(),
                mode: "fallback".into(),
                delta_rows: 0,
                shared: false,
            },
            "incremental eval (fallback) for 'r' (0 delta rows)",
            "incremental_eval",
        ),
        (
            EngineEvent::Fault { kind: "undo_append".into(), n: 4 },
            "injected fault: undo_append #4",
            "fault",
        ),
        (EngineEvent::StatementRollback, "statement rollback", "statement_rollback"),
        (
            EngineEvent::ParallelScan { partitions: 4, rows: 100000 },
            "parallel scan (4 partitions, 100000 rows)",
            "parallel_scan",
        ),
        (
            EngineEvent::WalAppend { kind: "commit".into() },
            "wal append (commit)",
            "wal_append",
        ),
        (
            EngineEvent::Checkpoint { bytes: 512 },
            "checkpoint written (512 bytes)",
            "checkpoint",
        ),
        (
            EngineEvent::Recovery { records: 9, truncated_bytes: 3 },
            "recovery replayed 9 records (3 torn bytes)",
            "recovery",
        ),
    ]
}

#[test]
fn every_variant_displays_and_serializes() {
    let samples = event_samples();
    // The sample list must cover the whole enum: 19 distinct kinds (the
    // rollback, plan-cache, and incremental-eval variants appear twice
    // each).
    let mut kinds: Vec<&str> = samples.iter().map(|(e, _, _)| e.kind()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(kinds.len(), 19, "event_samples() must cover every EngineEvent variant");

    for (ev, display, tag) in samples {
        assert_eq!(ev.to_string(), display);
        assert_eq!(ev.kind(), tag);
        let json = ev.to_json();
        assert_eq!(json.get("event").unwrap().as_str(), Some(tag));
        // Round-trip through text: the compact form re-parses to itself.
        assert_eq!(Json::parse(&json.compact()).unwrap(), json);
        // A JSON-lines sink emits the same object plus a seq field.
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.emit(42, &ev);
        let line = String::from_utf8(sink.into_inner()).unwrap();
        let parsed = Json::parse(line.trim()).unwrap();
        assert_eq!(parsed.get("seq").unwrap().as_i64(), Some(42));
        assert_eq!(parsed.get("event").unwrap().as_str(), Some(tag));
    }
}

#[test]
fn rule_accessor_names_the_concerned_rule() {
    for (ev, _, _) in event_samples() {
        match &ev {
            EngineEvent::RuleConsidered { rule }
            | EngineEvent::RuleConditionFalse { rule }
            | EngineEvent::RuleExecuted { rule, .. }
            | EngineEvent::RuleRetriggered { rule }
            | EngineEvent::TransInfoInit { rule }
            | EngineEvent::TransInfoModify { rule }
            | EngineEvent::PlanCache { rule, .. }
            | EngineEvent::IncrementalEval { rule, .. } => {
                assert_eq!(ev.rule(), Some(rule.as_str()))
            }
            EngineEvent::Rollback { by_rule } => assert_eq!(ev.rule(), by_rule.as_deref()),
            _ => assert_eq!(ev.rule(), None),
        }
    }
}

// ----------------------------------------------------------------------
// Ring-buffer sink property: never drops the most recent N events.
// ----------------------------------------------------------------------

#[test]
fn ring_buffer_retains_most_recent_n() {
    check("ring_buffer_retention", 200, 0x0b5e_7ab1e, |rng| {
        let capacity = rng.below(8); // includes 0 = disabled
        let emitted = rng.below(30);
        let mut ring = RingBufferSink::new(capacity);
        for seq in 0..emitted as u64 {
            ring.emit(seq, &EngineEvent::TxnCommit { fired: seq as usize, transitions: 0 });
        }
        let kept: Vec<u64> = ring.entries().map(|(s, _)| *s).collect();
        let expect_len = capacity.min(emitted);
        assert_eq!(kept.len(), expect_len);
        assert_eq!(ring.len(), expect_len);
        // Exactly the suffix [emitted - kept, emitted), in order.
        let expected: Vec<u64> = (emitted.saturating_sub(expect_len)..emitted)
            .map(|i| i as u64)
            .collect();
        assert_eq!(kept, expected, "ring must keep the most recent {expect_len} events");
        for ((seq, ev), want) in ring.entries().zip(&expected) {
            assert_eq!(seq, want);
            assert_eq!(ev, &EngineEvent::TxnCommit { fired: *want as usize, transitions: 0 });
        }
    });
}

// ----------------------------------------------------------------------
// Counter additivity: `plus` is associative with zero identity, `since`
// inverts it, and per-transaction deltas sum to the engine totals.
// ----------------------------------------------------------------------

fn random_exec(rng: &mut Rng) -> ExecStats {
    ExecStats {
        rows_scanned: rng.below(100) as u64,
        rows_matched: rng.below(100) as u64,
        index_lookups: rng.below(10) as u64,
        full_scans: rng.below(10) as u64,
        empty_scans: rng.below(10) as u64,
        subquery_cache_hits: rng.below(10) as u64,
        subquery_cache_misses: rng.below(10) as u64,
        hash_joins: rng.below(5) as u64,
        nested_loop_joins: rng.below(5) as u64,
        pushdown_filtered: rng.below(50) as u64,
        join_combinations: rng.below(100) as u64,
        range_scans: rng.below(10) as u64,
        range_rows_skipped: rng.below(100) as u64,
        sort_elided: rng.below(5) as u64,
        parallel_scans: rng.below(5) as u64,
        parallel_partitions: rng.below(20) as u64,
        serial_fallbacks: rng.below(5) as u64,
        topk_selected: rng.below(5) as u64,
        incr_probe_rows: rng.below(100) as u64,
    }
}

#[test]
fn exec_stats_plus_is_associative_and_since_inverts() {
    check("exec_stats_algebra", 200, 0xadd_171fe, |rng| {
        let (a, b, c) = (random_exec(rng), random_exec(rng), random_exec(rng));
        assert_eq!(a.plus(&b).plus(&c), a.plus(&b.plus(&c)));
        assert_eq!(a.plus(&ExecStats::default()), a);
        assert_eq!(a.plus(&b).since(&a), b);
        assert_eq!(a.since(&ExecStats::default()), a);
    });
}

/// Engine-level additivity over real composed transitions: the engine's
/// cumulative totals equal the base snapshot plus the sum of every
/// per-transaction delta reported in the outcomes.
#[test]
fn txn_stats_deltas_sum_to_engine_totals() {
    check("txn_stats_additive", 25, 0x70_7a15, |rng| {
        let mut sys = RuleSystem::new();
        sys.execute("create table t (k int)").unwrap();
        sys.execute("create table log (k int)").unwrap();
        sys.execute(
            "create rule copy when inserted into t \
             then insert into log (select k from inserted t)",
        )
        .unwrap();
        sys.execute(
            "create rule guard when inserted into t \
             if exists (select * from t where k < 0) then rollback",
        )
        .unwrap();

        let base = sys.full_stats();
        let mut summed = base.clone();
        let txns = 1 + rng.below(6);
        for _ in 0..txns {
            // Mix committing and rolled-back transactions; both report a
            // delta that must participate in the sum.
            let k = rng.range_i64(-3, 9);
            let n = 1 + rng.below(3);
            let rows: Vec<String> = (0..n).map(|i| format!("({})", k + i as i64)).collect();
            let out = sys
                .transaction(&format!("insert into t values {}", rows.join(", ")))
                .unwrap();
            summed = summed.plus(out.stats());
        }
        let total = sys.full_stats();
        assert_eq!(total.engine, summed.engine, "engine counters must be additive");
        assert_eq!(total.storage, summed.storage, "storage counters must be additive");
        // Query counters also accumulate only through transactions here
        // (no standalone query() calls between snapshots).
        assert_eq!(total.exec, summed.exec, "query counters must be additive");
    });
}

#[test]
fn engine_stats_since_drops_idle_rules() {
    let a = EngineStats { rules_considered: 3, ..Default::default() };
    let b = EngineStats { rules_considered: 5, ..a.clone() };
    let d = b.since(&a);
    assert_eq!(d.rules_considered, 2);
    assert!(d.per_rule.is_empty(), "rules with zero delta are omitted");
}

#[test]
fn txn_stats_json_has_three_sections() {
    let j = TxnStats::default().to_json();
    for section in ["engine", "query", "storage"] {
        assert!(j.get(section).is_some(), "TxnStats JSON must have a '{section}' section");
    }
}

// ----------------------------------------------------------------------
// Engine-integrated sinks and counters.
// ----------------------------------------------------------------------

/// A caller-attached sink sees exactly the events the ring buffer sees,
/// with the same sequence numbers.
#[test]
fn attached_sink_mirrors_ring_buffer() {
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Tee(Rc<RefCell<Vec<(u64, EngineEvent)>>>);
    impl EventSink for Tee {
        fn emit(&mut self, seq: u64, event: &EngineEvent) {
            self.0.borrow_mut().push((seq, event.clone()));
        }
    }

    let seen = Rc::new(RefCell::new(Vec::new()));
    let mut sys = RuleSystem::new();
    sys.add_event_sink(Box::new(Tee(seen.clone())));
    sys.execute("create table t (k int)").unwrap();
    sys.transaction("insert into t values (1)").unwrap();
    let ring = sys.recent_event_entries();
    assert!(!ring.is_empty());
    assert_eq!(*seen.borrow(), ring, "attached sink and ring buffer must agree");
}

/// The REPL acceptance shape: after a transaction that fires a rule, the
/// full-stats report has non-zero rule considerations and rows scanned.
#[test]
fn full_stats_nonzero_after_rule_firing() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table log (k int)").unwrap();
    sys.execute(
        "create rule copy when inserted into t then insert into log (select k from inserted t)",
    )
    .unwrap();
    let out = sys.transaction("insert into t values (1), (2)").unwrap();
    let stats = out.stats();
    assert!(stats.engine.rules_considered > 0);
    assert_eq!(stats.engine.rules_executed, 1);
    assert!(stats.exec.rows_scanned > 0);
    assert!(stats.storage.tuples_touched() > 0);
    let rt = stats.engine.per_rule.get("copy").expect("per-rule timing for 'copy'");
    assert_eq!(rt.executed, 1);
}

// ----------------------------------------------------------------------
// Differential: both engines report identical storage work on the shared
// B1 audit-trail workload.
// ----------------------------------------------------------------------

const EMP_ROWS: usize = 40;

fn b1_set_engine() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table audit (emp_no int, salary float)").unwrap();
    sys.execute(
        "create rule audit_raise when updated emp.salary \
         then insert into audit (select emp_no, salary from new updated emp.salary)",
    )
    .unwrap();
    let rows: Vec<String> =
        (0..EMP_ROWS).map(|i| format!("('e{i}', {i}, {}.0, {})", 1000 + i, i % 4)).collect();
    sys.transaction_without_rules(&format!("insert into emp values {}", rows.join(", ")))
        .unwrap();
    sys
}

fn b1_instance_engine() -> InstanceEngine {
    let mut eng = InstanceEngine::new();
    eng.create_table("create table emp (name text, emp_no int, salary float, dept_no int)")
        .unwrap();
    eng.create_table("create table audit (emp_no int, salary float)").unwrap();
    eng.create_trigger(
        "audit_raise",
        "emp",
        TriggerEvent::Update(Some("salary".into())),
        None,
        "insert into audit values (new.emp_no, new.salary)",
    )
    .unwrap();
    let rows: Vec<String> =
        (0..EMP_ROWS).map(|i| format!("('e{i}', {i}, {}.0, {})", 1000 + i, i % 4)).collect();
    eng.execute(&format!("insert into emp values {}", rows.join(", "))).unwrap();
    eng
}

/// B1 audit trail, differential: per-statement orchestration differs
/// (one insert-select vs N per-row inserts), but the *tuples touched* in
/// storage must be identical — same updates, same audit rows.
#[test]
fn set_and_instance_touch_identical_tuples_on_audit_workload() {
    let mut sys = b1_set_engine();
    let set_before: StorageStats = sys.database().stats();
    let out = sys.transaction("update emp set salary = salary + 1").unwrap();
    assert!(out.committed());
    let set_delta = sys.database().stats().since(&set_before);

    let mut eng = b1_instance_engine();
    let inst_before: StorageStats = eng.database().stats();
    eng.execute("update emp set salary = salary + 1").unwrap();
    let inst_delta = eng.database().stats().since(&inst_before);

    assert_eq!(
        set_delta.tuples_touched(),
        inst_delta.tuples_touched(),
        "both engines must report identical rows touched on the B1 audit workload"
    );
    assert_eq!(set_delta, inst_delta, "the full storage deltas agree field by field");
    assert_eq!(set_delta.tuples_touched(), (EMP_ROWS * 2) as u64);

    // The logical outcome agrees too.
    assert_eq!(
        sys.query("select count(*) from audit").unwrap().scalar(),
        eng.query("select count(*) from audit").unwrap().scalar(),
    );

    // Where they *differ* is orchestration: the set engine ran one rule
    // firing, the instance engine one trigger firing per row.
    assert_eq!(out.stats().engine.rules_executed, 1);
    assert_eq!(eng.stats().triggers_fired, EMP_ROWS as u64);
}
