//! Property tests of the paper's formal core, driven by randomly generated
//! but *valid* operation sequences over a model database:
//!
//! * Definition 2.1 composition is associative and preserves the
//!   disjointness invariant;
//! * `TransInfo` absorption is grouping-independent (op-by-op ≡ any block
//!   split) and agrees with the pure effect composition;
//! * the `deleted` / `old updated` values recorded in a window equal the
//!   ground-truth values at the window start;
//! * storage rollback restores the exact prior state, indexes included.

use proptest::prelude::*;
use setrules_core::{TransInfo, TransitionEffect};
use setrules_query::OpEffect;
use setrules_storage::{ColumnId, Database, Tuple, TupleHandle, Value};

/// An abstract operation in the model: what a DML statement did.
#[derive(Debug, Clone)]
enum ModelOp {
    /// Insert `n` fresh tuples with the given starting values.
    Insert(Vec<i64>),
    /// Delete the live tuples at these (modulo-mapped) positions.
    Delete(Vec<usize>),
    /// Update these positions: add `delta`, touching column 0.
    Update(Vec<usize>, i64),
}

fn model_ops() -> impl Strategy<Value = Vec<ModelOp>> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(0i64..100, 1..4).prop_map(ModelOp::Insert),
            prop::collection::vec(0usize..64, 1..4).prop_map(ModelOp::Delete),
            (prop::collection::vec(0usize..64, 1..4), 1i64..50)
                .prop_map(|(ps, d)| ModelOp::Update(ps, d)),
        ],
        1..12,
    )
}

/// Ground-truth interpreter: a single-column table with explicit handles.
#[derive(Debug, Clone, Default)]
struct Model {
    live: Vec<(u64, i64)>, // (handle, value), in handle order
    next: u64,
}

const T: setrules_storage::TableId = setrules_storage::TableId(0);

impl Model {
    /// Apply one op; return its `OpEffect` (with old values, like the real
    /// executor) and the equivalent pure `TransitionEffect`.
    fn apply(&mut self, op: &ModelOp) -> (OpEffect, TransitionEffect) {
        match op {
            ModelOp::Insert(vals) => {
                let mut handles = Vec::new();
                for v in vals {
                    self.next += 1;
                    self.live.push((self.next, *v));
                    handles.push(TupleHandle(self.next));
                }
                let eff = TransitionEffect::of_insert(handles.iter().copied());
                (OpEffect::Insert { table: T, handles }, eff)
            }
            ModelOp::Delete(positions) => {
                let mut tuples = Vec::new();
                for p in positions {
                    if self.live.is_empty() {
                        break;
                    }
                    let idx = p % self.live.len();
                    let (h, v) = self.live.remove(idx);
                    tuples.push((TupleHandle(h), Tuple(vec![Value::Int(v)])));
                }
                let eff = TransitionEffect::of_delete(tuples.iter().map(|(h, _)| *h));
                (OpEffect::Delete { table: T, tuples }, eff)
            }
            ModelOp::Update(positions, delta) => {
                let mut tuples = Vec::new();
                let mut seen = std::collections::BTreeSet::new();
                for p in positions {
                    if self.live.is_empty() {
                        break;
                    }
                    let idx = p % self.live.len();
                    if !seen.insert(idx) {
                        continue; // one statement touches a tuple once
                    }
                    let (h, v) = self.live[idx];
                    tuples.push((TupleHandle(h), vec![ColumnId(0)], Tuple(vec![Value::Int(v)])));
                    self.live[idx].1 = v + delta;
                }
                let eff =
                    TransitionEffect::of_update(tuples.iter().map(|(h, _, _)| (*h, ColumnId(0))));
                (OpEffect::Update { table: T, tuples }, eff)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Definition 2.1: `⊕` is associative over any valid op sequence, and
    /// every composite satisfies the I/D/U-disjointness invariant.
    #[test]
    fn effect_composition_associative(ops in model_ops(), split1 in 0usize..12, split2 in 0usize..12) {
        let mut model = Model::default();
        let effects: Vec<TransitionEffect> =
            ops.iter().map(|op| model.apply(op).1).collect();

        // Left fold.
        let left = effects.iter().fold(TransitionEffect::new(), |acc, e| acc.compose(e));
        prop_assert!(left.check_disjoint());

        // Arbitrary two-split grouping.
        let n = effects.len();
        let (a, b) = {
            let mut s = [split1 % (n + 1), split2 % (n + 1)];
            s.sort_unstable();
            (s[0], s[1])
        };
        let fold = |es: &[TransitionEffect]| {
            es.iter().fold(TransitionEffect::new(), |acc, e| acc.compose(e))
        };
        let (p, m, s) = (fold(&effects[..a]), fold(&effects[a..b]), fold(&effects[b..]));
        prop_assert_eq!(p.compose(&m).compose(&s), p.compose(&m.compose(&s)));
        prop_assert_eq!(p.compose(&m).compose(&s), left);
    }

    /// `TransInfo` absorption is grouping-independent and its projected
    /// effect equals the pure Definition 2.1 composite.
    #[test]
    fn transinfo_grouping_independent(ops in model_ops(), split in 0usize..12) {
        let mut model = Model::default();
        let results: Vec<(OpEffect, TransitionEffect)> =
            ops.iter().map(|op| model.apply(op)).collect();

        // Op by op.
        let mut whole = TransInfo::new();
        for (eff, _) in &results {
            whole.absorb(eff, false);
        }
        // Split into two windows, composed.
        let k = split % (results.len() + 1);
        let mut w1 = TransInfo::new();
        for (eff, _) in &results[..k] {
            w1.absorb(eff, false);
        }
        let mut w2 = TransInfo::new();
        for (eff, _) in &results[k..] {
            w2.absorb(eff, false);
        }
        w1.compose(&w2);
        prop_assert_eq!(&whole, &w1);

        // Projection agrees with the pure composition.
        let pure = results
            .iter()
            .fold(TransitionEffect::new(), |acc, (_, e)| acc.compose(e));
        prop_assert_eq!(whole.effect(|_| 1), pure);
    }

    /// The old values recorded in a window are the ground-truth values at
    /// the window start — Fig. 1's `get-old-value` invariant.
    #[test]
    fn window_old_values_are_window_start_values(pre in model_ops(), ops in model_ops()) {
        let mut model = Model::default();
        // Establish an arbitrary start state.
        for op in &pre {
            model.apply(op);
        }
        let start: std::collections::BTreeMap<u64, i64> = model.live.iter().copied().collect();

        let mut window = TransInfo::new();
        for op in &ops {
            let (eff, _) = model.apply(op);
            window.absorb(&eff, false);
        }
        for (h, del) in &window.del {
            prop_assert!(start.contains_key(&h.0), "insert-then-delete must cancel");
            let v0 = start[&h.0];
            prop_assert_eq!(&del.old, &Tuple(vec![Value::Int(v0)]),
                "deleted tuple {} must show its window-start value", h);
        }
        for (h, upd) in &window.upd {
            let v0 = start.get(&h.0).expect("updated tuples existed at window start");
            prop_assert_eq!(&upd.old, &Tuple(vec![Value::Int(*v0)]));
        }
        for h in &window.ins {
            prop_assert!(!start.contains_key(&h.0), "inserted handles are fresh");
        }
    }

    /// Rollback restores the exact prior state, and indexes stay
    /// consistent with scans throughout.
    #[test]
    fn storage_rollback_restores_state(pre in model_ops(), ops in model_ops()) {
        let mut db = Database::new();
        let t = db
            .create_table(setrules_storage::TableSchema::new(
                "t",
                vec![setrules_storage::ColumnDef::new("v", setrules_storage::DataType::Int)],
            ))
            .unwrap();
        db.create_index(t, ColumnId(0)).unwrap();

        let apply = |db: &mut Database, op: &ModelOp| {
            match op {
                ModelOp::Insert(vals) => {
                    for v in vals {
                        db.insert(t, Tuple(vec![Value::Int(*v)])).unwrap();
                    }
                }
                ModelOp::Delete(ps) => {
                    for p in ps {
                        let handles: Vec<_> = db.table(t).handles().collect();
                        if handles.is_empty() {
                            break;
                        }
                        db.delete(t, handles[p % handles.len()]).unwrap();
                    }
                }
                ModelOp::Update(ps, d) => {
                    for p in ps {
                        let handles: Vec<_> = db.table(t).handles().collect();
                        if handles.is_empty() {
                            break;
                        }
                        let h = handles[p % handles.len()];
                        let old = db.get(t, h).unwrap().get(ColumnId(0)).as_i64().unwrap();
                        db.update(t, h, &[(ColumnId(0), Value::Int(old + d))]).unwrap();
                    }
                }
            }
        };

        for op in &pre {
            apply(&mut db, op);
        }
        db.commit();
        let snapshot: Vec<(TupleHandle, Tuple)> =
            db.table(t).scan().map(|(h, tu)| (h, tu.clone())).collect();

        let mark = db.mark();
        for op in &ops {
            apply(&mut db, op);
        }
        db.rollback_to(mark).unwrap();

        let after: Vec<(TupleHandle, Tuple)> =
            db.table(t).scan().map(|(h, tu)| (h, tu.clone())).collect();
        prop_assert_eq!(&snapshot, &after);

        // Index ≡ scan for every live value.
        for (h, tu) in &after {
            let v = tu.get(ColumnId(0));
            let via_index = db.index_lookup(t, ColumnId(0), v).unwrap();
            prop_assert!(via_index.contains(h));
            for ih in via_index {
                prop_assert_eq!(db.get(t, ih).unwrap().get(ColumnId(0)), v);
            }
        }
    }
}

// ----------------------------------------------------------------------
// Hash equi-join ≡ reference nested-loop semantics.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The hash-join fast path must agree exactly with a reference
    /// nested-loop join computed in the test, including NULL keys (never
    /// matching) and duplicate keys (multiset semantics), and preserve
    /// row order.
    #[test]
    fn hash_join_matches_reference(
        a_rows in prop::collection::vec((prop::option::of(0i64..6), 0i64..100), 0..14),
        b_rows in prop::collection::vec((prop::option::of(0i64..6), 0i64..100), 0..14),
    ) {
        use setrules_query::{execute_op, execute_query, NoTransitionTables};
        use setrules_sql::ast::{DmlOp, Statement};
        use setrules_sql::parse_statement;
        use setrules_storage::{ColumnDef, DataType, TableSchema};

        let mut db = Database::new();
        let ta = db
            .create_table(TableSchema::new(
                "a",
                vec![ColumnDef::new("k", DataType::Int), ColumnDef::new("v", DataType::Int)],
            ))
            .unwrap();
        let tb = db
            .create_table(TableSchema::new(
                "b",
                vec![ColumnDef::new("k", DataType::Int), ColumnDef::new("w", DataType::Int)],
            ))
            .unwrap();
        let to_val = |o: &Option<i64>| o.map(Value::Int).unwrap_or(Value::Null);
        for (k, v) in &a_rows {
            db.insert(ta, Tuple(vec![to_val(k), Value::Int(*v)])).unwrap();
        }
        for (k, w) in &b_rows {
            db.insert(tb, Tuple(vec![to_val(k), Value::Int(*w)])).unwrap();
        }

        let Statement::Dml(DmlOp::Select(sel)) = parse_statement(
            "select x.v, y.w from a x, b y where x.k = y.k and x.v + y.w < 150",
        )
        .unwrap() else {
            unreachable!()
        };
        let got = execute_query(&db, &NoTransitionTables, &sel).unwrap();

        // Reference: nested loop with SQL semantics.
        let mut expect: Vec<Vec<Value>> = Vec::new();
        for (ka, v) in &a_rows {
            for (kb, w) in &b_rows {
                if let (Some(ka), Some(kb)) = (ka, kb) {
                    if ka == kb && v + w < 150 {
                        expect.push(vec![Value::Int(*v), Value::Int(*w)]);
                    }
                }
            }
        }
        prop_assert_eq!(got.rows, expect.clone());

        // And an execute_op select (the traced path) agrees too.
        let mut db2 = db;
        let eff = execute_op(
            &mut db2,
            &NoTransitionTables,
            &DmlOp::Select(sel),
        )
        .unwrap();
        let setrules_query::OpEffect::Select { output, .. } = eff else { unreachable!() };
        prop_assert_eq!(output.rows, expect);
    }
}
