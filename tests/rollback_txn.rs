//! Rollback actions and transaction boundaries (§4), including explicit
//! `begin`/`commit` with triggering points (§5.3).

use setrules_core::{ExecOutcome, RuleError, RuleSystem, TxnOutcome};
use setrules_storage::Value;

fn acct_sys() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table acct (id int, balance float)").unwrap();
    // Integrity guard: no account may go negative.
    sys.execute(
        "create rule no_overdraft when updated acct.balance or inserted into acct \
         if exists (select * from acct where balance < 0) \
         then rollback",
    )
    .unwrap();
    sys.execute("insert into acct values (1, 100.0), (2, 50.0)").unwrap();
    sys
}

fn balance(sys: &RuleSystem, id: i64) -> f64 {
    sys.query(&format!("select balance from acct where id = {id}"))
        .unwrap()
        .scalar()
        .unwrap()
        .as_f64()
        .unwrap()
}

#[test]
fn rollback_rule_restores_start_state() {
    let mut sys = acct_sys();
    // A transfer that overdraws account 2: the whole block is undone,
    // including the credit to account 1.
    let out = sys
        .transaction(
            "update acct set balance = balance + 80 where id = 1; \
             update acct set balance = balance - 80 where id = 2",
        )
        .unwrap();
    let TxnOutcome::RolledBack { by_rule, .. } = out else { panic!("expected rollback") };
    assert_eq!(by_rule, "no_overdraft");
    assert_eq!(balance(&sys, 1), 100.0);
    assert_eq!(balance(&sys, 2), 50.0);
}

#[test]
fn valid_transfer_commits() {
    let mut sys = acct_sys();
    let out = sys
        .transaction(
            "update acct set balance = balance + 30 where id = 1; \
             update acct set balance = balance - 30 where id = 2",
        )
        .unwrap();
    assert!(out.committed());
    assert_eq!(balance(&sys, 1), 130.0);
    assert_eq!(balance(&sys, 2), 20.0);
}

/// Rollback also undoes the actions of rules that fired *before* the
/// rollback rule was selected.
#[test]
fn rollback_undoes_earlier_rule_actions() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table audit (k int)").unwrap();
    // The auditor fires first; then the guard sees the bad row and rolls
    // everything back.
    sys.execute(
        "create rule auditor when inserted into t \
         then insert into audit (select k from inserted t)",
    )
    .unwrap();
    sys.execute(
        "create rule guard when inserted into t \
         if exists (select * from t where k < 0) then rollback",
    )
    .unwrap();
    sys.execute("create rule priority auditor before guard").unwrap();
    let out = sys.transaction("insert into t values (-1)").unwrap();
    let TxnOutcome::RolledBack { by_rule, fired, .. } = out else { panic!() };
    assert_eq!(by_rule, "guard");
    assert_eq!(fired.len(), 1, "auditor fired before the rollback");
    assert_eq!(
        sys.query("select count(*) from audit").unwrap().scalar().unwrap(),
        &Value::Int(0),
        "the audit row was rolled back too"
    );
    assert_eq!(sys.query("select count(*) from t").unwrap().scalar().unwrap(), &Value::Int(0));
}

/// §4: committed transactions are isolated from later rollbacks.
#[test]
fn rollback_does_not_cross_transaction_boundaries() {
    let mut sys = acct_sys();
    sys.transaction("update acct set balance = balance + 30 where id = 1").unwrap();
    let out = sys.transaction("update acct set balance = -1 where id = 2").unwrap();
    assert!(!out.committed());
    assert_eq!(balance(&sys, 1), 130.0, "the earlier committed transaction survives");
    assert_eq!(balance(&sys, 2), 50.0);
}

// ----------------------------------------------------------------------
// Explicit transactions and triggering points (§5.3)
// ----------------------------------------------------------------------

#[test]
fn explicit_begin_commit_processes_rules_at_commit() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table log (k int)").unwrap();
    sys.execute(
        "create rule copy when inserted into t then insert into log (select k from inserted t)",
    )
    .unwrap();
    sys.begin().unwrap();
    sys.run_op("insert into t values (1)").unwrap();
    // Rules have not run yet.
    assert_eq!(sys.query("select count(*) from log").unwrap().scalar().unwrap(), &Value::Int(0));
    sys.run_op("insert into t values (2)").unwrap();
    let out = sys.commit().unwrap();
    assert!(out.committed());
    assert_eq!(out.fired().len(), 1, "one set-oriented firing for both inserts");
    assert_eq!(sys.query("select count(*) from log").unwrap().scalar().unwrap(), &Value::Int(2));
}

/// `process rules` mid-transaction: "the externally-generated transition
/// is considered complete, rules are processed, and a new transition
/// begins."
#[test]
fn process_rules_triggering_point() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table log (k int)").unwrap();
    sys.execute(
        "create rule copy when inserted into t then insert into log (select k from inserted t)",
    )
    .unwrap();
    sys.begin().unwrap();
    sys.run_op("insert into t values (1)").unwrap();
    let ExecOutcome::RulesProcessed(report) = sys.execute("process rules").unwrap() else {
        panic!()
    };
    assert_eq!(report.fired.len(), 1);
    assert!(report.rolled_back_by.is_none());
    assert_eq!(sys.query("select count(*) from log").unwrap().scalar().unwrap(), &Value::Int(1));

    // A second batch after the triggering point is a fresh transition:
    // `inserted t` at commit contains only row 2.
    sys.run_op("insert into t values (2)").unwrap();
    let out = sys.commit().unwrap();
    assert_eq!(out.fired().len(), 2, "one firing at the triggering point, one at commit");
    assert_eq!(out.fired()[1].inserted, 1, "only the new insert is in the window");
    assert_eq!(sys.query("select count(*) from log").unwrap().scalar().unwrap(), &Value::Int(2));
}

/// A rollback at a triggering point kills the whole transaction, including
/// work done before the triggering point.
#[test]
fn rollback_at_triggering_point_kills_transaction() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute(
        "create rule guard when inserted into t \
         if exists (select * from t where k < 0) then rollback",
    )
    .unwrap();
    sys.begin().unwrap();
    sys.run_op("insert into t values (5)").unwrap();
    sys.run_op("insert into t values (-5)").unwrap();
    let report = sys.process_rules().unwrap();
    assert_eq!(report.rolled_back_by.as_deref(), Some("guard"));
    assert!(!sys.in_transaction());
    assert_eq!(sys.query("select count(*) from t").unwrap().scalar().unwrap(), &Value::Int(0));
    // Further mid-transaction calls are errors.
    assert!(matches!(sys.run_op("insert into t values (1)"), Err(RuleError::NoOpenTransaction)));
    assert!(matches!(sys.commit(), Err(RuleError::NoOpenTransaction)));
}

#[test]
fn explicit_rollback_call() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.begin().unwrap();
    sys.run_op("insert into t values (1)").unwrap();
    sys.rollback().unwrap();
    assert_eq!(sys.query("select count(*) from t").unwrap().scalar().unwrap(), &Value::Int(0));
    assert!(matches!(sys.rollback(), Err(RuleError::NoOpenTransaction)));
}

#[test]
fn ddl_rejected_inside_transaction() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.begin().unwrap();
    assert!(matches!(
        sys.execute("create table u (k int)"),
        Err(RuleError::TransactionOpen)
    ));
    assert!(matches!(sys.begin(), Err(RuleError::TransactionOpen)));
    sys.rollback().unwrap();
}

// ----------------------------------------------------------------------
// Deferred rule processing across transactions (§5.3)
// ----------------------------------------------------------------------

#[test]
fn deferred_processing_accumulates_across_transactions() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table log (k int)").unwrap();
    sys.execute(
        "create rule copy when inserted into t then insert into log (select k from inserted t)",
    )
    .unwrap();
    // Two externally-committed transactions without rule processing.
    sys.transaction_without_rules("insert into t values (1)").unwrap();
    sys.transaction_without_rules("insert into t values (2); insert into t values (3)").unwrap();
    assert_eq!(sys.query("select count(*) from log").unwrap().scalar().unwrap(), &Value::Int(0));
    assert_eq!(sys.deferred_window().ins.len(), 3);

    // One processing pass sees the composite of both transactions.
    let out = sys.process_deferred().unwrap();
    assert_eq!(out.fired().len(), 1, "one set-oriented firing over all three inserts");
    assert_eq!(out.fired()[0].inserted, 3);
    assert_eq!(sys.query("select count(*) from log").unwrap().scalar().unwrap(), &Value::Int(3));
    assert!(sys.deferred_window().is_empty(), "the deferred window was consumed");
}

/// Deferred net effects: an insert in one deferred transaction cancelled
/// by a delete in the next never reaches the rules.
#[test]
fn deferred_net_effects_compose_across_transactions() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table log (k int)").unwrap();
    sys.execute(
        "create rule copy when inserted into t then insert into log (select k from inserted t)",
    )
    .unwrap();
    sys.transaction_without_rules("insert into t values (1)").unwrap();
    sys.transaction_without_rules("delete from t where k = 1").unwrap();
    let out = sys.process_deferred().unwrap();
    assert!(out.fired().is_empty(), "insert+delete across deferred txns nets to nothing");
}

/// A rollback during deferred processing undoes only the rule actions —
/// the deferred external transactions already committed.
#[test]
fn deferred_rollback_scope() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table log (k int)").unwrap();
    sys.execute(
        "create rule copy when inserted into t then insert into log (select k from inserted t)",
    )
    .unwrap();
    sys.execute("create rule guard when inserted into log then rollback").unwrap();
    sys.transaction_without_rules("insert into t values (1)").unwrap();
    let out = sys.process_deferred().unwrap();
    assert!(!out.committed());
    assert_eq!(
        sys.query("select count(*) from t").unwrap().scalar().unwrap(),
        &Value::Int(1),
        "the external insert survives (it committed earlier)"
    );
    assert_eq!(
        sys.query("select count(*) from log").unwrap().scalar().unwrap(),
        &Value::Int(0),
        "the rule's insert was undone"
    );
}
