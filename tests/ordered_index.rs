//! Ordered secondary indexes, end to end:
//!
//! * **differential property**: random tables and random
//!   range / order-by / limit / min-max queries return byte-identical
//!   relations with and without ordered indexes, under both
//!   `ExecMode::Compiled` and `ExecMode::Interpreted` — an access path is
//!   an execution strategy, never a semantics change;
//! * **boundary semantics**: NULLs never match a range, NaN bounds make a
//!   predicate unsatisfiable, NaN *values* are excluded from every range;
//! * **plan-cache lifecycle**: creating or dropping an ordered index from
//!   inside a rule action mid-`process rules` invalidates every cached
//!   plan, exactly like hash-index DDL;
//! * **§4 abort**: rolling back a transaction (explicitly or through a
//!   `rollback` rule action) restores the ordered index's BTree buckets
//!   byte-identically (via `Database::state_image`).

use setrules_core::{RuleSystem, TxnOutcome};
use setrules_query::{execute_op, execute_query_with_opts, ExecMode, NoTransitionTables};
use setrules_sql::ast::{DmlOp, SelectStmt, Statement};
use setrules_sql::parse_statement;
use setrules_storage::{ColumnDef, ColumnId, DataType, Database, IndexKind, TableSchema, Value};
use setrules_testkit::{check, Rng};

fn exec(db: &mut Database, sql: &str) {
    let Statement::Dml(op) = parse_statement(sql).unwrap() else { panic!("not DML: {sql}") };
    execute_op(db, &NoTransitionTables, &op).unwrap();
}

fn sel(sql: &str) -> SelectStmt {
    match parse_statement(sql).unwrap() {
        Statement::Dml(DmlOp::Select(s)) => s,
        _ => panic!("not a select: {sql}"),
    }
}

// ----------------------------------------------------------------------
// Differential property: ordered-indexed ≡ unindexed, compiled ≡ interpreted
// ----------------------------------------------------------------------

/// Literal pools per column. All predicates built from these are
/// type-safe for every row (numeric-vs-numeric or text-vs-text), so no
/// row's evaluation can error — required because the `limit` fast path
/// legitimately stops before visiting every row.
const INT_LITS: &[&str] = &["-3", "0", "2", "5", "8", "1.5", "-2.5", "1e300", "-1e300", "NULL"];
const FLOAT_LITS: &[&str] = &[
    "0.0",
    "-0.0",
    "1.5",
    "-2.5",
    "7.25",
    "1e300",
    "-1e300",
    "(0.0 / 0.0)",
    "2",
    "NULL",
];
const TEXT_LITS: &[&str] = &["'a'", "'ab'", "'b'", "'c'", "NULL"];

fn lits_for(col: &str) -> &'static [&'static str] {
    match col {
        "k" => INT_LITS,
        "v" => FLOAT_LITS,
        _ => TEXT_LITS,
    }
}

/// Build the same random `t (k int, v float, s text)` twice: once bare,
/// once with ordered indexes on a random non-empty subset of columns.
fn build_pair(rng: &mut Rng) -> (Database, Database) {
    let schema = || {
        TableSchema::new(
            "t".to_string(),
            vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("v", DataType::Float),
                ColumnDef::new("s", DataType::Text),
            ],
        )
    };
    let mut plain = Database::new();
    let mut indexed = Database::new();
    plain.create_table(schema()).unwrap();
    let t = indexed.create_table(schema()).unwrap();
    let mut any = false;
    for c in 0..3u16 {
        if rng.chance(1, 2) {
            indexed.create_index_of(t, ColumnId(c), IndexKind::Ordered).unwrap();
            any = true;
        }
    }
    if !any {
        indexed.create_index_of(t, ColumnId(rng.below(3) as u16), IndexKind::Ordered).unwrap();
    }
    for _ in 0..rng.below(12) {
        let k = if rng.chance(1, 6) {
            "NULL".to_string()
        } else {
            rng.range_i64(-3, 8).to_string()
        };
        let v = rng.pick(&["0.0", "-0.0", "1.5", "-2.5", "7.25", "1e300", "(0.0 / 0.0)", "NULL"]);
        let s = rng.pick(TEXT_LITS);
        let sql = format!("insert into t values ({k}, {v}, {s})");
        exec(&mut plain, &sql);
        exec(&mut indexed, &sql);
    }
    (plain, indexed)
}

/// A random range-flavoured conjunct on one column, type-safe by
/// construction (numeric literals on `k`/`v`, text on `s`).
fn range_conjunct(rng: &mut Rng) -> String {
    let col = *rng.pick(&["k", "v", "s"]);
    let lits = lits_for(col);
    match rng.below(4) {
        0 | 1 => {
            let op = rng.pick(&["<", "<=", ">", ">=", "="]);
            format!("{col} {op} {}", rng.pick(lits))
        }
        2 => format!("{col} between {} and {}", rng.pick(lits), rng.pick(lits)),
        _ => {
            let vals: Vec<&str> = (0..1 + rng.below(3)).map(|_| *rng.pick(lits)).collect();
            format!("{col} in ({})", vals.join(", "))
        }
    }
}

fn random_query(rng: &mut Rng) -> String {
    let proj = match rng.below(6) {
        0 => "*",
        1 => "count(*)",
        2 => "k, v, s",
        3 => "min(k)",
        4 => "max(v), min(v)",
        _ => "min(s), max(s)",
    };
    let mut sql = format!("select {proj} from t");
    if rng.chance(3, 4) {
        let mut pred = range_conjunct(rng);
        if rng.chance(1, 3) {
            let glue = if rng.chance(2, 3) { "and" } else { "or" };
            pred = format!("({pred}) {glue} ({})", range_conjunct(rng));
        }
        sql.push_str(&format!(" where {pred}"));
    }
    // Aggregates and order-by don't mix in this grammar; bare columns may
    // order (the sort-elision path needs exactly one order key).
    if proj == "*" || proj == "k, v, s" {
        if rng.chance(2, 3) {
            let col = rng.pick(&["k", "v", "s"]);
            sql.push_str(&format!(" order by {col}"));
            if rng.chance(1, 2) {
                sql.push_str(" desc");
            }
        }
        if rng.chance(1, 2) {
            sql.push_str(&format!(" limit {}", rng.below(5)));
        }
    }
    sql
}

#[test]
fn ordered_index_and_full_scan_agree_on_random_queries() {
    check("ordered_vs_scan", 300, 0x0b1204de4ed, |rng| {
        let (plain, indexed) = build_pair(rng);
        for _ in 0..4 {
            let sql = random_query(rng);
            let stmt = sel(&sql);
            let run = |db: &Database, mode: ExecMode| {
                execute_query_with_opts(db, &NoTransitionTables, &stmt, None, mode, None)
            };
            let reference = run(&plain, ExecMode::Compiled);
            for (db, label) in [(&plain, "plain"), (&indexed, "indexed")] {
                for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
                    let got = run(db, mode);
                    match (&reference, &got) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(a, b, "{label}/{mode:?} diverged for: {sql}")
                        }
                        (Err(a), Err(b)) => assert_eq!(
                            a.to_string(),
                            b.to_string(),
                            "{label}/{mode:?} error diverged for: {sql}"
                        ),
                        (a, b) => {
                            panic!("{label}/{mode:?} outcome diverged for {sql}: {a:?} vs {b:?}")
                        }
                    }
                }
            }
        }
    });
}

/// The boundary semantics the differential can only probabilistically
/// hit, pinned down: NULL rows never match a range, a NULL or NaN bound
/// makes the predicate unsatisfiable, NaN values fall outside every
/// range (even `v <= 1e300` / `v >= -1e300`).
#[test]
fn null_and_nan_range_boundaries() {
    let build = |ordered: bool| {
        let mut db = Database::new();
        let t = db
            .create_table(TableSchema::new(
                "t".to_string(),
                vec![ColumnDef::new("k", DataType::Int), ColumnDef::new("v", DataType::Float)],
            ))
            .unwrap();
        if ordered {
            db.create_index_of(t, ColumnId(0), IndexKind::Ordered).unwrap();
            db.create_index_of(t, ColumnId(1), IndexKind::Ordered).unwrap();
        }
        exec(
            &mut db,
            "insert into t values (1, 1.0), (NULL, NULL), (3, 0.0 / 0.0), (4, -1e300), (5, 1e300)",
        );
        db
    };
    let count = |db: &Database, sql: &str| -> i64 {
        execute_query_with_opts(db, &NoTransitionTables, &sel(sql), None, ExecMode::Compiled, None)
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64()
            .unwrap()
    };
    for db in [build(false), build(true)] {
        // NULL k-row and NaN v-row match no range.
        assert_eq!(count(&db, "select count(*) from t where k >= -100"), 4);
        assert_eq!(count(&db, "select count(*) from t where v >= -1e300"), 3);
        assert_eq!(count(&db, "select count(*) from t where v <= 1e300"), 3);
        // NULL / NaN bounds are unsatisfiable.
        assert_eq!(count(&db, "select count(*) from t where k < NULL"), 0);
        assert_eq!(count(&db, "select count(*) from t where v > (0.0 / 0.0)"), 0);
        assert_eq!(count(&db, "select count(*) from t where v between 0.0 and (0.0 / 0.0)"), 0);
        // Inverted range.
        assert_eq!(count(&db, "select count(*) from t where k between 7 and 5"), 0);
    }
}

/// The three ordering paths — the generic sort comparator, the top-K
/// `select_nth_unstable_by` selection, and the index-order sort-elision
/// walk — must produce *identical* orderings on NaN/-0.0/NULL-bearing
/// data, ascending and descending, with and without `limit`. Each path
/// is proven engaged via its stats counter, so a silent gate change
/// can't turn this into three runs of the same code.
#[test]
fn nan_negzero_null_order_identically_across_all_three_paths() {
    use setrules_query::StatsCell;

    let build = |ordered: bool| {
        let mut db = Database::new();
        let t = db
            .create_table(TableSchema::new(
                "t".to_string(),
                vec![ColumnDef::new("k", DataType::Int), ColumnDef::new("v", DataType::Float)],
            ))
            .unwrap();
        if ordered {
            db.create_index_of(t, ColumnId(1), IndexKind::Ordered).unwrap();
        }
        // 16 rows so `limit 3 < 16/4` engages top-K; duplicate keys
        // (two NaNs, two NULLs, 0.0 vs -0.0, repeated 1.5) expose any
        // tiebreak or signed-zero divergence between the paths.
        let vals = [
            "1.5",
            "(0.0 / 0.0)",
            "NULL",
            "-0.0",
            "1e300",
            "0.0",
            "-2.5",
            "1.5",
            "NULL",
            "(0.0 / 0.0)",
            "-1e300",
            "7.25",
            "0.0",
            "-0.0",
            "2",
            "-2.5",
        ];
        for (k, v) in vals.iter().enumerate() {
            exec(&mut db, &format!("insert into t values ({k}, {v})"));
        }
        db
    };
    let plain = build(false);
    let indexed = build(true);

    let run = |db: &Database, sql: &str, mode: ExecMode, st: &StatsCell| {
        execute_query_with_opts(db, &NoTransitionTables, &sel(sql), Some(st), mode, None)
            .unwrap_or_else(|e| panic!("{sql}: {e}"))
    };

    for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
        for dir in ["asc", "desc"] {
            let full_sql = format!("select k, v from t order by v {dir}");
            let lim_sql = format!("select k, v from t order by v {dir} limit 3");

            // Path 1: the generic sort comparator (no index, no limit).
            let st = StatsCell::new();
            let sorted = run(&plain, &full_sql, mode, &st);
            let s = st.snapshot();
            assert_eq!((s.sort_elided, s.topk_selected), (0, 0), "[{mode:?} {dir}] gates");
            assert_eq!(sorted.rows.len(), 16);

            // Path 2: top-K selection (no index, limit 3 < 16/4).
            let st = StatsCell::new();
            let topk = run(&plain, &lim_sql, mode, &st);
            assert_eq!(st.snapshot().topk_selected, 1, "[{mode:?} {dir}] top-K must engage");
            assert_eq!(
                topk.rows,
                sorted.rows[..3].to_vec(),
                "[{mode:?} {dir}] top-K diverged from the generic sort"
            );

            // Path 3: the index-order walk (ordered index elides the sort).
            let st = StatsCell::new();
            let walked = run(&indexed, &full_sql, mode, &st);
            assert_eq!(st.snapshot().sort_elided, 1, "[{mode:?} {dir}] elision must engage");
            assert_eq!(
                walked.rows, sorted.rows,
                "[{mode:?} {dir}] index walk diverged from the generic sort"
            );

            // Limit over the walk (early stop) agrees with all of them.
            let st = StatsCell::new();
            let walked_lim = run(&indexed, &lim_sql, mode, &st);
            assert_eq!(st.snapshot().sort_elided, 1, "[{mode:?} {dir}] limited walk elides");
            assert_eq!(walked_lim.rows, topk.rows, "[{mode:?} {dir}] limited walk diverged");
        }
    }

    // Pin the semantics the paths agree on: ascending puts NULLs first,
    // then NaNs (storage total order sorts NaN below -inf), then numeric
    // order with -0.0 strictly before 0.0.
    let st = StatsCell::new();
    let asc = run(&plain, "select v from t order by v asc", ExecMode::Compiled, &st);
    let desc_of = |r: &setrules_query::Relation| {
        let mut rows = r.rows.clone();
        rows.reverse();
        rows
    };
    let st = StatsCell::new();
    let desc = run(&plain, "select v from t order by v desc", ExecMode::Compiled, &st);
    let is_nan = |v: &Value| matches!(v, Value::Float(f) if f.is_nan());
    let is_neg_zero = |v: &Value| matches!(v, Value::Float(f) if *f == 0.0 && f.is_sign_negative());
    assert_eq!(asc.rows[0][0], Value::Null);
    assert_eq!(asc.rows[1][0], Value::Null);
    assert!(is_nan(&asc.rows[2][0]) && is_nan(&asc.rows[3][0]), "NaNs sort after NULLs");
    let neg_zero_pos = asc.rows.iter().position(|r| is_neg_zero(&r[0])).unwrap();
    assert!(is_neg_zero(&asc.rows[neg_zero_pos + 1][0]), "-0.0 pair is contiguous");
    assert_eq!(asc.rows[neg_zero_pos + 2][0], Value::Float(0.0), "-0.0 sorts before 0.0");
    // Descending is the exact reverse *by key*; equal keys keep input
    // order in both directions, so compare the key sequence only.
    let desc_keys: Vec<&Value> = desc.rows.iter().map(|r| &r[0]).collect();
    let asc_rev = desc_of(&asc);
    let asc_rev_keys: Vec<&Value> = asc_rev.iter().map(|r| &r[0]).collect();
    let eq_key = |a: &Value, b: &Value| match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
        (a, b) => a == b,
    };
    assert!(
        desc_keys.len() == asc_rev_keys.len()
            && desc_keys.iter().zip(&asc_rev_keys).all(|(a, b)| eq_key(a, b)),
        "desc key order must be the reverse of asc key order"
    );
}

// ----------------------------------------------------------------------
// Plan-cache lifecycle with ordered-index DDL mid-`process rules`
// ----------------------------------------------------------------------

/// Regression: `create index ... using ordered` and `drop index` executed
/// *inside a rule action* mid-`process rules` must invalidate the plan
/// cache — cached plans embed the chosen access paths, and a stale plan
/// would keep range-scanning a dropped index (or full-scanning past a new
/// one).
#[test]
fn ordered_index_ddl_in_rule_action_invalidates_plan_cache() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table log (k int)").unwrap();
    sys.execute(
        "create rule copy when inserted into t \
         if exists (select * from inserted t) \
         then insert into log (select k from inserted t)",
    )
    .unwrap();
    let firings = Arc::new(AtomicUsize::new(0));
    let counter = firings.clone();
    sys.create_rule_external(
        "ddl",
        "inserted into t",
        None,
        Arc::new(move |ctx: &mut setrules_core::ActionCtx<'_>| {
            match counter.fetch_add(1, Ordering::Relaxed) {
                0 => ctx.create_index_of("t", "k", IndexKind::Ordered)?,
                1 => {
                    assert!(ctx.drop_index("t", "k")?, "the ordered index exists to drop");
                }
                _ => {}
            }
            Ok(())
        }),
    )
    .unwrap();
    sys.execute("create rule priority copy before ddl").unwrap();

    // Txn 1: both rules compile fresh; the action then creates the
    // ordered index, dropping every cached plan.
    sys.execute("insert into t values (1)").unwrap();
    let s1 = sys.stats().clone();
    assert_eq!(s1.plan_cache_hits, 0);
    assert!(s1.plan_cache_misses >= 2);
    let plan = sys.explain("select * from t where k between 0 and 9").unwrap();
    assert!(plan.contains("index range scan"), "{plan}");

    // Txn 2: no stale hit against the pre-index catalog; the action now
    // drops the index, invalidating again.
    sys.execute("insert into t values (2)").unwrap();
    let s2 = sys.stats().clone();
    assert_eq!(s2.plan_cache_hits, 0, "a hit here would be a stale plan surviving the create");
    assert!(s2.plan_cache_misses >= s1.plan_cache_misses + 2);
    let plan = sys.explain("select * from t where k between 0 and 9").unwrap();
    assert!(plan.contains("seq scan"), "{plan}");

    // Txn 3: another miss round (the drop invalidated), no DDL this time.
    sys.execute("insert into t values (3)").unwrap();
    let s3 = sys.stats().clone();
    assert_eq!(s3.plan_cache_hits, 0, "a hit here would be a stale plan surviving the drop");
    assert!(s3.plan_cache_misses >= s2.plan_cache_misses + 2);

    // Txn 4: the catalog is finally stable — plans are reused.
    sys.execute("insert into t values (4)").unwrap();
    assert!(sys.stats().plan_cache_hits >= 2, "both rules reuse plans once the catalog settles");

    assert_eq!(firings.load(Ordering::Relaxed), 4);
    assert_eq!(
        sys.query("select count(*) from log").unwrap().scalar().unwrap(),
        &Value::Int(4),
        "the declarative rule stayed correct across both invalidations"
    );
}

// ----------------------------------------------------------------------
// §4 transaction abort restores ordered-index contents
// ----------------------------------------------------------------------

fn salary_system() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create index on emp (salary) using ordered").unwrap();
    sys.execute(
        "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 20.0, 1), \
         ('c', 3, 30.0, 2), ('d', 4, 40.0, 2)",
    )
    .unwrap();
    sys
}

fn salaries_in_range(sys: &RuleSystem) -> Vec<String> {
    sys.query("select name from emp where salary between 15.0 and 35.0 order by salary")
        .unwrap()
        .rows
        .into_iter()
        .map(|r| r[0].to_string())
        .collect()
}

#[test]
fn explicit_abort_restores_ordered_index_contents() {
    let mut sys = salary_system();
    let before = sys.database().state_image();
    assert!(before.contains("kind=ordered"), "state_image must show the index kind:\n{before}");

    sys.begin().unwrap();
    sys.run_op("insert into emp values ('e', 5, 25.0, 3)").unwrap();
    sys.run_op("update emp set salary = salary + 100.0 where salary >= 20.0").unwrap();
    sys.run_op("delete from emp where name = 'a'").unwrap();
    sys.rollback().unwrap();

    assert_eq!(
        sys.database().state_image(),
        before,
        "undo must restore the BTree buckets byte-identically"
    );
    assert_eq!(salaries_in_range(&sys), vec!["'b'", "'c'"]);
    // The index still answers order-by and min/max correctly post-abort.
    let top = sys.query("select name from emp order by salary desc limit 1").unwrap();
    assert_eq!(top.rows[0][0].to_string(), "'d'");
    assert_eq!(
        sys.query("select min(salary) from emp").unwrap().scalar().unwrap(),
        &Value::Float(10.0)
    );
}

#[test]
fn rollback_rule_restores_ordered_index_contents() {
    let mut sys = salary_system();
    sys.execute(
        "create rule ceiling when updated emp.salary \
         if exists (select * from new updated emp.salary where salary > 1000.0) then rollback",
    )
    .unwrap();
    let before = sys.database().state_image();

    let out = sys.transaction("update emp set salary = salary * 100.0").unwrap();
    assert!(matches!(out, TxnOutcome::RolledBack { .. }), "the ceiling rule vetoes");
    assert_eq!(
        sys.database().state_image(),
        before,
        "a rule-initiated §4 rollback must restore the ordered index too"
    );
    assert_eq!(salaries_in_range(&sys), vec!["'b'", "'c'"]);

    // A conforming update commits, and the index reflects it.
    let out = sys.transaction("update emp set salary = 35.5 where name = 'b'").unwrap();
    assert!(out.committed());
    assert_eq!(salaries_in_range(&sys), vec!["'c'"], "'b' moved out of the range bucket");
}
