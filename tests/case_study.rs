//! A larger case study in the spirit of the one the paper points to
//! ([CW90] §3.1: "Additional examples pertaining to a fairly large case
//! study appear in [CW90]"): an order-processing domain with a dozen
//! interacting rules — derived-data maintenance, auditing, integrity
//! enforcement, and business policy — exercised through multi-statement
//! transactions.
//!
//! Schema:
//! * `product(sku, price, stock, reserved)`
//! * `orders(order_id, sku, qty, status_code)` — 0=pending, 1=shipped, 2=cancelled
//! * `revenue(bucket, amount)` — single-row running total
//! * `audit(event, order_id)`
//! * `backorder(sku, short)`

use setrules_constraints::{install, Constraint, RepairPolicy};
use setrules_core::{RuleSystem, TxnOutcome};
use setrules_storage::Value;

fn shop() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table product (sku int, price float, stock int, reserved int)").unwrap();
    sys.execute("create table orders (order_id int, sku int, qty int, status_code int)").unwrap();
    sys.execute("create table revenue (bucket int, amount float)").unwrap();
    sys.execute("create table audit (event text, order_id int)").unwrap();
    sys.execute("create table backorder (sku int, short int)").unwrap();

    // -- Integrity, via the constraint compiler -------------------------
    install(
        &mut sys,
        &Constraint::referential("fk_sku", "orders", "sku", "product", "sku", RepairPolicy::Restrict),
    )
    .unwrap();
    install(
        &mut sys,
        &Constraint::Check {
            name: "qty_pos".into(),
            table: "orders".into(),
            predicate: "qty > 0".into(),
        },
    )
    .unwrap();
    install(
        &mut sys,
        &Constraint::Unique { name: "uq_order".into(), table: "orders".into(), column: "order_id".into() },
    )
    .unwrap();

    // -- Reservation: new pending orders reserve stock ------------------
    sys.execute(
        "create rule reserve when inserted into orders \
         then update product set reserved = reserved + \
                (select sum(qty) from inserted orders o where o.sku = product.sku \
                 and o.status_code = 0) \
              where sku in (select sku from inserted orders o2 where o2.status_code = 0)",
    )
    .unwrap();

    // -- Oversell guard: reservations may never exceed stock ------------
    sys.execute(
        "create rule oversell when updated product.reserved or updated product.stock \
         if exists (select * from product where reserved > stock) \
         then rollback",
    )
    .unwrap();

    // -- Shipping: orders moving to 'shipped' consume stock and book
    //    revenue (set-oriented: any number of orders per transaction) ----
    sys.execute(
        "create rule ship_stock when updated orders.status_code \
         then update product set \
                stock = stock - (select sum(qty) from new updated orders.status_code o \
                                 where o.sku = product.sku and o.status_code = 1), \
                reserved = reserved - (select sum(qty) from new updated orders.status_code o3 \
                                 where o3.sku = product.sku and o3.status_code = 1) \
              where sku in (select sku from new updated orders.status_code o2 \
                            where o2.status_code = 1)",
    )
    .unwrap();
    sys.execute(
        "create rule ship_revenue when updated orders.status_code \
         then update revenue set amount = amount + \
                (select sum(o.qty * p.price) \
                 from new updated orders.status_code o, product p \
                 where o.sku = p.sku and o.status_code = 1) \
              where exists (select * from new updated orders.status_code o4 \
                            where o4.status_code = 1)",
    )
    .unwrap();
    // Revenue posts before stock moves (both watch the same predicate).
    sys.execute("create rule priority ship_revenue before ship_stock").unwrap();

    // -- Cancellation: cancelled orders release their reservation -------
    sys.execute(
        "create rule cancel_release when updated orders.status_code \
         then update product set reserved = reserved - \
                (select sum(o.qty) from new updated orders.status_code o \
                 where o.sku = product.sku and o.status_code = 2) \
              where sku in (select sku from new updated orders.status_code o2 \
                            where o2.status_code = 2)",
    )
    .unwrap();

    // -- Audit trail: every order status change is logged ----------------
    sys.execute(
        "create rule audit_status when updated orders.status_code \
         then insert into audit \
                (select 'status-change', order_id from new updated orders.status_code)",
    )
    .unwrap();

    // -- Backorder detection: stock dropping below reservations of
    //    *pending* orders files a shortage report ------------------------
    sys.execute(
        "create rule shortage when updated product.stock \
         then insert into backorder \
                (select sku, reserved - stock from new updated product.stock \
                 where reserved > stock)",
    )
    .unwrap();

    // Seed data.
    sys.execute("insert into product values (1, 10.0, 100, 0), (2, 25.0, 50, 0)").unwrap();
    sys.execute("insert into revenue values (0, 0.0)").unwrap();
    sys
}

fn scalar_i(sys: &RuleSystem, q: &str) -> i64 {
    sys.query(q).unwrap().scalar().unwrap().as_i64().unwrap()
}

fn scalar_f(sys: &RuleSystem, q: &str) -> f64 {
    sys.query(q).unwrap().scalar().unwrap().as_f64().unwrap()
}

#[test]
fn order_lifecycle() {
    let mut sys = shop();

    // Place three orders in one transaction: reservations are set-oriented.
    let out = sys
        .transaction(
            "insert into orders values (100, 1, 10, 0), (101, 1, 5, 0), (102, 2, 7, 0)",
        )
        .unwrap();
    assert!(out.committed());
    assert_eq!(scalar_i(&sys, "select reserved from product where sku = 1"), 15);
    assert_eq!(scalar_i(&sys, "select reserved from product where sku = 2"), 7);

    // Ship two of them in one transaction.
    let out = sys
        .transaction("update orders set status_code = 1 where order_id in (100, 102)")
        .unwrap();
    assert!(out.committed());
    assert_eq!(scalar_i(&sys, "select stock from product where sku = 1"), 90);
    assert_eq!(scalar_i(&sys, "select reserved from product where sku = 1"), 5);
    assert_eq!(scalar_i(&sys, "select stock from product where sku = 2"), 43);
    // Revenue: 10×10.0 + 7×25.0 = 275.
    assert_eq!(scalar_f(&sys, "select amount from revenue"), 275.0);
    // Audit: two status changes.
    assert_eq!(scalar_i(&sys, "select count(*) from audit"), 2);

    // Cancel the remaining order: reservation released.
    sys.execute("update orders set status_code = 2 where order_id = 101").unwrap();
    assert_eq!(scalar_i(&sys, "select reserved from product where sku = 1"), 0);
    assert_eq!(scalar_i(&sys, "select count(*) from audit"), 3);
}

#[test]
fn oversell_rolls_back_the_whole_order_batch() {
    let mut sys = shop();
    // 120 units of sku 1 against 100 in stock: the reserve rule fires,
    // then the oversell guard rolls everything back.
    let out = sys
        .transaction("insert into orders values (100, 1, 80, 0), (101, 1, 40, 0)")
        .unwrap();
    let TxnOutcome::RolledBack { by_rule, .. } = out else { panic!("must roll back") };
    assert_eq!(by_rule, "oversell");
    assert_eq!(scalar_i(&sys, "select count(*) from orders"), 0);
    assert_eq!(scalar_i(&sys, "select reserved from product where sku = 1"), 0);

    // A batch that exactly fits commits.
    let out = sys
        .transaction("insert into orders values (100, 1, 80, 0), (101, 1, 20, 0)")
        .unwrap();
    assert!(out.committed());
    assert_eq!(scalar_i(&sys, "select reserved from product where sku = 1"), 100);
}

#[test]
fn integrity_constraints_guard_orders() {
    let mut sys = shop();
    assert!(!sys
        .transaction("insert into orders values (1, 99, 1, 0)")
        .unwrap()
        .committed(), "unknown sku");
    assert!(!sys
        .transaction("insert into orders values (1, 1, 0, 0)")
        .unwrap()
        .committed(), "non-positive qty");
    sys.execute("insert into orders values (1, 1, 1, 0)").unwrap();
    assert!(!sys
        .transaction("insert into orders values (1, 2, 1, 0)")
        .unwrap()
        .committed(), "duplicate order id");
    // Deleting a product with live orders is restricted.
    assert!(!sys.transaction("delete from product where sku = 1").unwrap().committed());
    // Without orders it is allowed.
    sys.execute("delete from orders").unwrap();
    // (deleting the order released nothing: it was still pending with a
    // reservation — release it manually for a clean final check)
    sys.execute("update product set reserved = 0 where sku = 1").unwrap();
    assert!(sys.transaction("delete from product where sku = 1").unwrap().committed());
}

#[test]
fn shortage_reporting_cascades_from_stock_updates() {
    let mut sys = shop();
    sys.execute("insert into orders values (100, 1, 60, 0)").unwrap();
    assert_eq!(scalar_i(&sys, "select reserved from product where sku = 1"), 60);

    // A stock write-down below the reserved level files a backorder
    // report... but the oversell guard fires first and vetoes it.
    let out = sys.transaction("update product set stock = 40 where sku = 1").unwrap();
    assert!(!out.committed(), "oversell guard wins");

    // Deactivate the guard (a deliberate operational override) and retry:
    // now the shortage report appears.
    sys.execute("deactivate rule oversell").unwrap();
    let out = sys.transaction("update product set stock = 40 where sku = 1").unwrap();
    assert!(out.committed());
    let rel = sys.query("select sku, short from backorder").unwrap();
    assert_eq!(rel.rows, vec![vec![Value::Int(1), Value::Int(20)]]);
}

#[test]
fn static_analysis_of_the_case_study() {
    let sys = shop();
    let report = setrules_analysis::analyze(&sys);
    // The shipping rules form intentional feedback loops through
    // `product` updates (ship_stock updates product.stock, which the
    // shortage rule watches, etc.) — the analyzer must surface at least
    // the shortage/oversell coupling, and the rule set must still
    // terminate at runtime (asserted by the other tests committing).
    assert!(
        !report.loops.is_empty() || !report.conflicts.is_empty(),
        "a rule set of this size has flaggable structure: {report}"
    );
    // No *false* self-loop on the audit rule (inserts into audit, watches
    // orders).
    for l in &report.loops {
        assert!(
            !(l.rules.len() == 1 && l.rules[0] == "audit_status"),
            "audit_status cannot trigger itself"
        );
    }
}

/// The whole case study also runs under the two footnote-8 alternative
/// semantics without divergence (results may differ; termination and
/// integrity may not).
#[test]
fn case_study_terminates_under_alternative_semantics() {
    use setrules_core::{EngineConfig, RetriggerSemantics};
    for retrigger in [RetriggerSemantics::SinceLastConsidered, RetriggerSemantics::SinceLastTriggering] {
        let mut sys = RuleSystem::with_config(EngineConfig { retrigger, ..Default::default() });
        // Rebuild the shop under this config by replaying the same DDL.
        // (shop() hard-codes the default config, so inline the essentials.)
        sys.execute("create table product (sku int, price float, stock int, reserved int)").unwrap();
        sys.execute("create table orders (order_id int, sku int, qty int, status_code int)").unwrap();
        sys.execute(
            "create rule reserve when inserted into orders \
             then update product set reserved = reserved + \
                    (select sum(qty) from inserted orders o where o.sku = product.sku) \
                  where sku in (select sku from inserted orders o2)",
        )
        .unwrap();
        sys.execute(
            "create rule oversell when updated product.reserved \
             if exists (select * from product where reserved > stock) then rollback",
        )
        .unwrap();
        sys.execute("insert into product values (1, 10.0, 100, 0)").unwrap();
        let ok = sys.transaction("insert into orders values (1, 1, 10, 0)").unwrap();
        assert!(ok.committed());
        let bad = sys.transaction("insert into orders values (2, 1, 1000, 0)").unwrap();
        assert!(!bad.committed());
    }
}
