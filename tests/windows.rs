//! Direct inspection of per-rule composite windows (`R.trans-info`)
//! through `RuleSystem::current_window`, validating the §4.2 window
//! bookkeeping at each step of a transaction.

use setrules_core::RuleSystem;
use setrules_storage::Value;

fn sys2() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table u (k int)").unwrap();
    // watcher_t fires once, copying t-inserts into u.
    sys.execute(
        "create rule watcher_t when inserted into t \
         then insert into u (select k from inserted t)",
    )
    .unwrap();
    // watcher_u never fires (condition false) but accumulates a window.
    sys.execute(
        "create rule watcher_u when inserted into u if false then delete from u",
    )
    .unwrap();
    sys
}

#[test]
fn windows_outside_transaction_are_absent() {
    let sys = sys2();
    assert!(sys.current_window("watcher_t").is_none());
    assert!(sys.current_window("nope").is_none());
}

#[test]
fn pending_ops_reach_windows_only_at_processing() {
    let mut sys = sys2();
    sys.begin().unwrap();
    sys.run_op("insert into t values (1), (2)").unwrap();
    // Before any rule processing, windows are still empty (changes sit in
    // the pending external window).
    assert!(sys.current_window("watcher_t").unwrap().is_empty());
    let report = sys.process_rules().unwrap();
    assert_eq!(report.fired.len(), 1);
    // watcher_t acted: its window is its own transition (2 u-inserts).
    let w_t = sys.current_window("watcher_t").unwrap();
    assert_eq!(w_t.ins.len(), 2, "watcher_t's window = its own insert-into-u transition");
    // watcher_u did not act: its window is the composite of the external
    // block and watcher_t's transition = 2 t-inserts + 2 u-inserts.
    let w_u = sys.current_window("watcher_u").unwrap();
    assert_eq!(w_u.ins.len(), 4);
    sys.commit().unwrap();
    assert!(sys.current_window("watcher_t").is_none(), "windows die with the transaction");
}

#[test]
fn net_effects_visible_in_windows() {
    let mut sys = sys2();
    sys.begin().unwrap();
    sys.run_op("insert into t values (1)").unwrap();
    sys.run_op("delete from t where k = 1").unwrap();
    sys.run_op("insert into t values (2)").unwrap();
    let report = sys.process_rules().unwrap();
    assert_eq!(report.fired.len(), 1);
    // Only the surviving insert is in watcher_u's composite view of t.
    let w_u = sys.current_window("watcher_u").unwrap();
    let t_inserts = w_u
        .ins
        .iter()
        .filter(|h| {
            let db = sys.database();
            db.table_of(**h) == Some(db.table_id("t").unwrap())
        })
        .count();
    assert_eq!(t_inserts, 1);
    assert!(w_u.del.is_empty(), "insert-then-delete cancelled");
    sys.rollback().unwrap();
    assert_eq!(sys.query("select count(*) from t").unwrap().scalar().unwrap(), &Value::Int(0));
}

#[test]
fn update_windows_capture_old_tuples() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int, v int)").unwrap();
    sys.execute("create rule w when updated t.v if false then delete from t").unwrap();
    sys.execute("insert into t values (1, 10)").unwrap();
    sys.begin().unwrap();
    sys.run_op("update t set v = 20 where k = 1").unwrap();
    sys.run_op("update t set v = 30 where k = 1").unwrap();
    sys.process_rules().unwrap();
    let w = sys.current_window("w").unwrap();
    assert_eq!(w.upd.len(), 1, "two updates to one tuple collapse");
    let entry = w.upd.values().next().unwrap();
    assert_eq!(entry.old.0[1], Value::Int(10), "old tuple is the window-start value");
    sys.rollback().unwrap();
}
