//! Deterministic intra-query parallelism, end to end:
//!
//! * **differential property**: every randomly generated select over
//!   adversarial data (NaN, -0.0, NULL, 1e300) returns a byte-identical
//!   relation — and identical row-level `ExecStats` counters — under
//!   thread budgets 1, 2, and 8, in both `Compiled` and `Interpreted`
//!   mode. Parallelism is an execution strategy, never a semantics
//!   change;
//! * **error determinism**: a poisoned query fails with the same error
//!   text regardless of thread budget, and a full engine with the pool
//!   forced on fails at the same statement as a serial one;
//! * **serial fallback**: predicates that cannot cross threads
//!   (correlated subqueries) take the observable serial fallback;
//! * **engine wiring**: the `EngineConfig::parallelism` knob engages the
//!   pool, mirrors counters into `EngineStats`, and emits
//!   `EngineEvent::ParallelScan`;
//! * **crash consistency**: the fault-injection sweep over inflated
//!   Example 3.1 / 4.1 workloads holds with parallelism forced on —
//!   every injected fault still restores a byte-identical state image.

use setrules_core::{EngineConfig, EngineEvent, RuleError, RuleSystem};
use setrules_query::{
    execute_query_ext, ExecMode, ExecOpts, ExecStats, NoTransitionTables, QueryError, Relation,
    StatsCell,
};
use setrules_sql::ast::{DmlOp, SelectStmt, Statement};
use setrules_sql::parse_statement;
use setrules_storage::{
    ColumnDef, ColumnId, Database, DataType, FaultKind, StorageError, TableSchema, Tuple, Value,
};
use setrules_testkit::{check, Rng};

fn sel(sql: &str) -> SelectStmt {
    match parse_statement(sql).unwrap() {
        Statement::Dml(DmlOp::Select(s)) => s,
        _ => panic!("not a select: {sql}"),
    }
}

// ----------------------------------------------------------------------
// Differential property: serial ≡ parallel on adversarial data.
// ----------------------------------------------------------------------

/// A database whose rows deliberately contain every value the float/NULL
/// semantics treat specially, at sizes above the parallel threshold so
/// thread budgets > 1 actually engage the pool.
fn adversarial_db(rng: &mut Rng) -> Database {
    let mut db = Database::new();
    let t = db
        .create_table(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Float),
                ColumnDef::new("s", DataType::Text),
                ColumnDef::new("k", DataType::Int),
            ],
        ))
        .unwrap();
    let u = db
        .create_table(TableSchema::new(
            "u",
            vec![ColumnDef::new("k", DataType::Int), ColumnDef::new("w", DataType::Float)],
        ))
        .unwrap();
    if rng.chance(1, 2) {
        db.create_index(t, ColumnId(3)).unwrap();
    }
    if rng.chance(1, 2) {
        db.create_index(u, ColumnId(0)).unwrap();
    }
    for i in 0..64 + rng.below(140) {
        let a = match rng.below(8) {
            0 => Value::Null,
            1 => Value::Int(-(i as i64)),
            _ => Value::Int(rng.range_i64(-3, 50)),
        };
        let b = match rng.below(8) {
            0 => Value::Float(f64::NAN),
            1 => Value::Float(-0.0),
            2 => Value::Float(1e300),
            3 => Value::Null,
            _ => Value::Float(rng.unit_f64() * 100.0),
        };
        let s = match rng.below(6) {
            0 => Value::Null,
            _ => Value::Text(rng.pick(&["ab", "ba", "abc", "", "%_"]).to_string()),
        };
        let k = Value::Int(rng.range_i64(0, 8));
        db.insert(t, Tuple(vec![a, b, s, k])).unwrap();
    }
    for _ in 0..64 + rng.below(80) {
        db.insert(
            u,
            Tuple(vec![
                Value::Int(rng.range_i64(0, 8)),
                Value::Float(rng.unit_f64() * 10.0),
            ]),
        )
        .unwrap();
    }
    db
}

/// A random select exercising every parallelized phase: partitioned
/// scan + pushdown, hash-join build/probe, the parallel WHERE pass,
/// two-phase group-by/having aggregation, distinct dedup, the full
/// parallel sort, and the top-K order/limit path — with occasional
/// poison (division by zero) so error selection is covered too.
fn random_query(rng: &mut Rng) -> String {
    let pred = |rng: &mut Rng, alias: &str| -> String {
        match rng.below(8) {
            0 => format!("{alias}.a > 5 and {alias}.b < 50.0"),
            1 => format!("{alias}.b is not null or {alias}.s like 'a%'"),
            2 => format!("{alias}.a in (1, 2, -3, null)"),
            3 => format!("{alias}.b between -1.0 and 90.0"),
            4 => format!("{alias}.k >= 4"),
            5 => format!("not ({alias}.a = 0) and {alias}.s <> ''"),
            6 => format!("{alias}.a / ({alias}.a - {alias}.a) = 1"), // poison
            _ => format!("{alias}.b + 1.0 > 0.5"),
        }
    };
    match rng.below(9) {
        // Single-table scan + pushdown (+ sometimes order/limit/distinct).
        0 => {
            let mut sql = format!("select x.a, x.b from t x where {}", pred(rng, "x"));
            if rng.chance(1, 2) {
                sql.push_str(" order by x.a");
                if rng.chance(1, 2) {
                    sql.push_str(&format!(" limit {}", 1 + rng.below(10)));
                }
            }
            sql
        }
        1 => {
            let mut sql = format!("select distinct x.k from t x where {}", pred(rng, "x"));
            if rng.chance(1, 2) {
                sql.push_str(" order by x.k desc");
            }
            sql
        }
        // Hash join on k, with a residual predicate over both sides.
        2 => format!(
            "select x.a, y.w from t x, u y where x.k = y.k and {}",
            pred(rng, "x")
        ),
        3 => "select x.a, y.w from t x, u y where x.k = y.k".to_string(),
        // Aggregates (distinct dedup inside the aggregate).
        4 => format!("select count(distinct x.k) from t x where {}", pred(rng, "x")),
        // Two-phase group-by over adversarial keys/values, with a
        // having filter and an order over an aggregate.
        5 => format!(
            "select x.k, count(*), sum(x.b), min(x.b), max(x.a), avg(x.b) \
             from t x where {} group by x.k having count(*) >= {}",
            pred(rng, "x"),
            rng.below(3)
        ),
        6 => format!(
            "select x.a, count(distinct x.s) from t x where {} \
             group by x.a order by count(distinct x.s) desc, x.a limit {}",
            pred(rng, "x"),
            1 + rng.below(6)
        ),
        // Grouped join: the aggregate input crosses the hash join.
        7 => "select x.k, count(*), sum(y.w) from t x, u y where x.k = y.k \
              group by x.k order by x.k"
            .to_string(),
        // Correlated subquery: must take the serial fallback, identically.
        _ => format!(
            "select count(*) from t x where exists (select * from u where u.k = x.k) and {}",
            pred(rng, "x")
        ),
    }
}

fn run(
    db: &Database,
    stmt: &SelectStmt,
    mode: ExecMode,
    threads: usize,
) -> (Result<Relation, String>, ExecStats) {
    let st = StatsCell::new();
    let r = execute_query_ext(
        db,
        &NoTransitionTables,
        stmt,
        &ExecOpts { stats: Some(&st), mode, plans: None, threads, op_stats: None },
    );
    (r.map_err(|e| e.to_string()), st.snapshot())
}

/// The stats a parallel run must reproduce exactly: everything except the
/// parallelism bookkeeping itself (which by design differs from serial).
fn comparable(mut s: ExecStats) -> ExecStats {
    s.parallel_scans = 0;
    s.parallel_partitions = 0;
    s.serial_fallbacks = 0;
    s
}

#[test]
fn parallel_matches_serial_on_adversarial_queries() {
    check("parallel_vs_serial", 300, 0x9a7a_11e1, |rng| {
        let db = adversarial_db(rng);
        let sql = random_query(rng);
        let stmt = sel(&sql);
        for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
            let (base, base_stats) = run(&db, &stmt, mode, 1);
            for threads in [2, 8] {
                let (par, par_stats) = run(&db, &stmt, mode, threads);
                assert_eq!(
                    base, par,
                    "outcome diverged for {sql} (mode {mode:?}, {threads} threads)"
                );
                assert_eq!(
                    comparable(base_stats),
                    comparable(par_stats),
                    "row-level stats diverged for {sql} (mode {mode:?}, {threads} threads)"
                );
            }
        }
    });
}

// ----------------------------------------------------------------------
// Serial fallback: correlated subqueries never cross threads.
// ----------------------------------------------------------------------

#[test]
fn correlated_subqueries_take_the_serial_fallback() {
    let mut rng = Rng::new(0x5e41_a11b);
    let db = adversarial_db(&mut rng);
    let stmt = sel("select count(*) from t x where exists (select * from u where u.k = x.k)");
    let (serial, _) = run(&db, &stmt, ExecMode::Compiled, 1);
    let (par, par_stats) = run(&db, &stmt, ExecMode::Compiled, 8);
    assert_eq!(serial, par);
    assert!(
        par_stats.serial_fallbacks > 0,
        "a big scan with a correlated predicate must count its serial fallback: {par_stats:?}"
    );
    // A row-local predicate over the same table does parallelize, so the
    // fallback above is about the predicate, not the plumbing.
    let local = sel("select count(*) from t x where x.k >= 4");
    let (_, local_stats) = run(&db, &local, ExecMode::Compiled, 8);
    assert!(local_stats.parallel_scans > 0, "{local_stats:?}");
    assert!(local_stats.parallel_partitions > 1, "{local_stats:?}");
}

// ----------------------------------------------------------------------
// Engine wiring: config knob, EngineStats mirror, ParallelScan event.
// ----------------------------------------------------------------------

fn big_engine(parallelism: Option<usize>) -> RuleSystem {
    let mut sys = RuleSystem::with_config(EngineConfig { parallelism, ..Default::default() });
    sys.execute("create table big (k int, v float)").unwrap();
    let rows: Vec<String> = (0..120).map(|i| format!("({i}, {i}.5)")).collect();
    sys.transaction(&format!("insert into big values {}", rows.join(", "))).unwrap();
    sys
}

#[test]
fn engine_parallelism_knob_mirrors_stats_and_emits_event() {
    let mut par = big_engine(Some(4));
    let mut serial = big_engine(Some(1));
    let sql = "select k from big where v > 10.0";
    let a = par.transaction(sql).unwrap();
    let b = serial.transaction(sql).unwrap();
    // Identical output either way.
    match (a, b) {
        (
            setrules_core::TxnOutcome::Committed { output: Some(x), .. },
            setrules_core::TxnOutcome::Committed { output: Some(y), .. },
        ) => assert_eq!(x, y),
        other => panic!("both transactions must commit with output: {other:?}"),
    }
    // The parallel engine mirrored pool usage into EngineStats and traced it.
    assert!(par.stats().parallel_scans > 0, "{:?}", par.stats());
    assert!(par.stats().parallel_partitions > 1);
    assert!(par
        .recent_events()
        .iter()
        .any(|e| matches!(e, EngineEvent::ParallelScan { partitions, rows }
            if *partitions > 1 && *rows >= 120)));
    // The pinned-serial engine touched the pool exactly never.
    assert_eq!(serial.stats().parallel_scans, 0);
    assert!(!serial
        .recent_events()
        .iter()
        .any(|e| matches!(e, EngineEvent::ParallelScan { .. })));
}

/// A grouped aggregation big enough to exchange engages the pool on its
/// partial phase (and the sort on its run merge), with byte-identical
/// output to the pinned-serial engine.
#[test]
fn group_by_aggregation_engages_the_pool() {
    let mut par = big_engine(Some(4));
    let mut serial = big_engine(Some(1));
    let sql = "select k, count(*), sum(v) from big group by k order by k limit 5";
    let a = par.transaction(sql).unwrap();
    let b = serial.transaction(sql).unwrap();
    match (a, b) {
        (
            setrules_core::TxnOutcome::Committed { output: Some(x), .. },
            setrules_core::TxnOutcome::Committed { output: Some(y), .. },
        ) => assert_eq!(x, y),
        other => panic!("both transactions must commit with output: {other:?}"),
    }
    assert!(par.stats().parallel_scans > 0, "{:?}", par.stats());
    assert!(par
        .recent_events()
        .iter()
        .any(|e| matches!(e, EngineEvent::ParallelScan { partitions, .. } if *partitions > 1)));
    assert_eq!(serial.stats().parallel_scans, 0);
}

/// `SETRULES_THREADS` steers engines whose config leaves parallelism
/// unset; an explicit `parallelism` beats the environment. This is the
/// only test here that builds an unpinned engine, so the env mutation
/// cannot race another test's thread resolution.
#[test]
fn env_override_steers_unpinned_engines_only() {
    assert_eq!(setrules_exec::resolve_threads(Some(3)), 3);
    std::env::set_var("SETRULES_THREADS", "1");
    assert_eq!(setrules_exec::resolve_threads(None), 1);
    assert_eq!(setrules_exec::resolve_threads(Some(5)), 5, "config beats env");
    let mut sys = big_engine(None);
    sys.transaction("select k from big where v > 10.0").unwrap();
    assert_eq!(sys.stats().parallel_scans, 0, "SETRULES_THREADS=1 must keep the pool idle");
    std::env::remove_var("SETRULES_THREADS");
    assert!(setrules_exec::resolve_threads(None) >= 1);
}

// ----------------------------------------------------------------------
// Statement-level error determinism with the pool forced on.
// ----------------------------------------------------------------------

#[test]
fn engines_fail_at_the_same_statement_regardless_of_threads() {
    let script: &[&str] = &[
        "select k from big where v >= 0.0",
        "select k from big where k / (k - k) = 1", // poisoned: division by zero
        "select k from big where v < 5.0",
    ];
    let mut outcomes = Vec::new();
    for threads in [1, 8] {
        let mut sys = big_engine(Some(threads));
        let mut failure: Option<(usize, String)> = None;
        for (i, stmt) in script.iter().enumerate() {
            if let Err(e) = sys.transaction(stmt) {
                failure = Some((i, e.to_string()));
                break;
            }
        }
        outcomes.push(failure.expect("the poisoned statement must fail"));
    }
    assert_eq!(outcomes[0], outcomes[1], "failure site/text must not depend on thread budget");
    assert_eq!(outcomes[0].0, 1, "the poisoned statement is the second one");
}

// ----------------------------------------------------------------------
// Fault-injection sweep with parallelism forced on: inflated Examples
// 3.1 and 4.1, byte-identical restore at every probed site.
// ----------------------------------------------------------------------

struct ParScenario {
    name: &'static str,
    setup: fn(&mut RuleSystem),
    workload: Vec<String>,
}

fn paper_tables(sys: &mut RuleSystem) {
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
}

fn inflated_scenarios() -> Vec<ParScenario> {
    // Example 3.1, inflated past the parallel threshold: deleting a dept
    // cascades over 90 employees; the update's identification scan and
    // the select run partitioned.
    let emp_rows = |n: usize, dept_of: fn(usize) -> usize| -> String {
        let rows: Vec<String> = (0..n)
            .map(|i| format!("('e{i}', {i}, {}.0, {})", 100 + i, dept_of(i)))
            .collect();
        format!("insert into emp values {}", rows.join(", "))
    };
    vec![
        ParScenario {
            name: "example_3_1_inflated",
            setup: |sys| {
                paper_tables(sys);
                sys.execute(
                    "create rule r31 when deleted from dept \
                     then delete from emp where dept_no in (select dept_no from deleted dept)",
                )
                .unwrap();
                sys.execute("create index on emp (dept_no)").unwrap();
            },
            workload: vec![
                "insert into dept values (1, 10), (2, 20)".into(),
                emp_rows(90, |i| 1 + i % 2),
                "update emp set salary = salary + 1.0 where salary >= 0.0".into(),
                "select count(*) from emp where salary > 100.0".into(),
                "delete from dept where dept_no = 1".into(),
            ],
        },
        ParScenario {
            name: "example_4_1_inflated",
            setup: |sys| {
                paper_tables(sys);
                sys.execute(
                    "create rule r41 when deleted from emp \
                     then delete from emp where dept_no in \
                            (select dept_no from dept where mgr_no in \
                              (select emp_no from deleted emp)); \
                          delete from dept where mgr_no in \
                            (select emp_no from deleted emp)",
                )
                .unwrap();
            },
            workload: vec![
                "insert into dept values (1, 1), (2, 2)".into(),
                emp_rows(80, |i| if i == 1 || i == 2 { 1 } else { 2 }),
                "update emp set salary = salary * 2.0 where salary < 1000.0".into(),
                "delete from emp where name = 'e1'".into(),
            ],
        },
    ]
}

fn fresh_par(scenario: &ParScenario) -> RuleSystem {
    let mut sys =
        RuleSystem::with_config(EngineConfig { parallelism: Some(8), ..Default::default() });
    (scenario.setup)(&mut sys);
    sys.fault_injector_mut().reset_counts();
    sys
}

fn fault_of(e: &RuleError) -> Option<(FaultKind, u64)> {
    let se = match e {
        RuleError::Storage(se) => se,
        RuleError::Query(QueryError::Storage(se)) => se,
        _ => return None,
    };
    match se {
        StorageError::FaultInjected { kind, op } => Some((*kind, *op)),
        _ => None,
    }
}

#[test]
fn fault_sweep_holds_with_parallelism_forced_on() {
    for scenario in &inflated_scenarios() {
        // Discovery pass: fault-free, counting sites per kind — and
        // proving the pool actually engaged (the sweep would otherwise
        // test nothing new over the serial fault sweep).
        let mut sys = fresh_par(scenario);
        for stmt in &scenario.workload {
            let out = sys.transaction(stmt).unwrap();
            assert!(out.committed(), "{}: fault-free run must commit", scenario.name);
        }
        assert!(
            sys.stats().parallel_scans > 0,
            "{}: workload must engage the pool (stats: {:?})",
            scenario.name,
            sys.stats()
        );
        let totals: Vec<(FaultKind, u64)> = FaultKind::ALL
            .iter()
            .map(|&k| (k, sys.fault_injector().count(k)))
            .filter(|&(_, c)| c > 0)
            .collect();
        assert!(!totals.is_empty(), "{}: no fault sites discovered", scenario.name);

        // Probe first, middle, and last site of each kind (the bounded
        // shape the serial sweep uses under FAULT_SWEEP_FAST).
        for &(kind, total) in &totals {
            let mut sites = vec![1, total.div_ceil(2), total];
            sites.dedup();
            for n in sites {
                let mut sys = fresh_par(scenario);
                sys.fault_injector_mut().arm(kind, n);
                let ctx = format!("[{} kind={kind} n={n}]", scenario.name);
                let mut hit = false;
                for (i, stmt) in scenario.workload.iter().enumerate() {
                    let before = sys.database().state_image();
                    match sys.transaction(stmt) {
                        Ok(_) => continue,
                        Err(e) => {
                            let got = fault_of(&e)
                                .unwrap_or_else(|| panic!("{ctx} stmt {i}: unexpected error {e}"));
                            assert_eq!(got, (kind, n), "{ctx} stmt {i}: wrong fault");
                            assert_eq!(
                                sys.database().state_image(),
                                before,
                                "{ctx} stmt {i}: state diverged after rollback"
                            );
                            assert!(!sys.in_transaction(), "{ctx}: transaction left open");
                            assert_eq!(sys.database().undo_len(), 0, "{ctx}: undo not drained");
                            hit = true;
                            break;
                        }
                    }
                }
                assert!(hit, "{ctx}: armed site was never reached");
            }
        }
    }
}
