//! End-to-end constraint-maintenance scenarios ([CW90] / §6): several
//! constraints installed together, interacting with user-defined rules,
//! checked against hand-written equivalents.

use setrules_constraints::{compile, install, Constraint, RepairPolicy};
use setrules_core::RuleSystem;
use setrules_storage::Value;

fn org_schema(sys: &mut RuleSystem) {
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
}

/// A realistic multi-constraint setup: unique employee numbers, non-null
/// names, non-negative salaries, employees reference departments with
/// cascade.
fn constrained_system() -> RuleSystem {
    let mut sys = RuleSystem::new();
    org_schema(&mut sys);
    for c in [
        Constraint::Unique { name: "uq_emp".into(), table: "emp".into(), column: "emp_no".into() },
        Constraint::NotNull { name: "nn_name".into(), table: "emp".into(), column: "name".into() },
        Constraint::Check {
            name: "pos_salary".into(),
            table: "emp".into(),
            predicate: "salary >= 0".into(),
        },
        Constraint::referential("fk_dept", "emp", "dept_no", "dept", "dept_no", RepairPolicy::Cascade),
    ] {
        install(&mut sys, &c).unwrap();
    }
    sys.execute("insert into dept values (1, 10), (2, 20)").unwrap();
    sys
}

#[test]
fn all_constraints_enforced_together() {
    let mut sys = constrained_system();
    assert!(sys.transaction("insert into emp values ('a', 1, 100.0, 1)").unwrap().committed());
    // Each violation rejected independently:
    assert!(!sys.transaction("insert into emp values ('b', 1, 100.0, 1)").unwrap().committed(), "dup emp_no");
    assert!(!sys.transaction("insert into emp values (NULL, 2, 100.0, 1)").unwrap().committed(), "null name");
    assert!(!sys.transaction("insert into emp values ('b', 2, -1.0, 1)").unwrap().committed(), "neg salary");
    assert!(!sys.transaction("insert into emp values ('b', 2, 100.0, 9)").unwrap().committed(), "orphan");
    assert!(sys.transaction("insert into emp values ('b', 2, 100.0, 2)").unwrap().committed());
    // Cascade still repairs:
    sys.execute("delete from dept where dept_no = 1").unwrap();
    let rel = sys.query("select name from emp").unwrap();
    assert_eq!(rel.rows, vec![vec![Value::Text("b".into())]]);
}

/// A violating block containing *several* operations is rejected as a
/// whole (set-oriented, transaction-level enforcement).
#[test]
fn multi_op_block_rejected_atomically() {
    let mut sys = constrained_system();
    let out = sys
        .transaction(
            "insert into emp values ('a', 1, 100.0, 1); \
             insert into emp values ('b', 2, -5.0, 2)",
        )
        .unwrap();
    assert!(!out.committed());
    assert_eq!(
        sys.query("select count(*) from emp").unwrap().scalar().unwrap(),
        &Value::Int(0),
        "the valid first insert was rolled back with the block"
    );
}

/// A block that transiently violates but repairs itself within the same
/// transition commits — conditions are evaluated against the *net* effect.
#[test]
fn transient_violation_within_block_is_invisible() {
    let mut sys = constrained_system();
    sys.execute("insert into emp values ('a', 1, 100.0, 1)").unwrap();
    // Insert a duplicate emp_no, then delete it again in the same block.
    let out = sys
        .transaction(
            "insert into emp values ('tmp', 1, 1.0, 1); \
             delete from emp where name = 'tmp'",
        )
        .unwrap();
    assert!(out.committed(), "insert+delete nets out; no rule ever triggers");
}

/// Constraint-generated rules and hand-written rules produce identical
/// behaviour for Example 3.1's cascade.
#[test]
fn generated_cascade_equals_hand_written() {
    let run = |generated: bool| -> Vec<Vec<Value>> {
        let mut sys = RuleSystem::new();
        org_schema(&mut sys);
        if generated {
            install(
                &mut sys,
                &Constraint::referential(
                    "fk", "emp", "dept_no", "dept", "dept_no", RepairPolicy::Cascade,
                ),
            )
            .unwrap();
        } else {
            sys.execute(
                "create rule hand when deleted from dept \
                 then delete from emp where dept_no in (select dept_no from deleted dept)",
            )
            .unwrap();
        }
        sys.execute("insert into dept values (1, 10), (2, 20)").unwrap();
        sys.execute(
            "insert into emp values ('a', 1, 1.0, 1), ('b', 2, 1.0, 2), ('c', 3, 1.0, 1)",
        )
        .unwrap();
        sys.execute("delete from dept where dept_no = 1").unwrap();
        sys.query("select name from emp order by emp_no").unwrap().rows
    };
    assert_eq!(run(true), run(false));
}

/// The compiled rule text is stable, inspectable SQL.
#[test]
fn compiled_text_is_inspectable() {
    let c = Constraint::referential("fk", "emp", "dept_no", "dept", "dept_no", RepairPolicy::Restrict);
    let sqls = compile(&c);
    assert_eq!(sqls.len(), 3);
    assert!(sqls[0].contains("then rollback"), "{}", sqls[0]);
    assert!(sqls[2].contains("inserted emp"), "{}", sqls[2]);
}

/// Constraints compose with the static analyzer: RI rules on distinct
/// tables are conflict-free once priorities are set between overlapping
/// repairs.
#[test]
fn constraints_analyze_cleanly_for_loops() {
    let sys = constrained_system();
    let report = setrules_analysis::analyze(&sys);
    assert!(report.loops.is_empty(), "constraint rules must not self-trigger: {report}");
}

/// Self-referential RI (employee → manager employee) with cascade: the
/// generated rule is recursive, like Example 4.1.
#[test]
fn self_referential_cascade() {
    let mut sys = RuleSystem::new();
    sys.execute("create table emp (name text, emp_no int, salary float, mgr_no int)").unwrap();
    install(
        &mut sys,
        &Constraint::referential("chain", "emp", "mgr_no", "emp", "emp_no", RepairPolicy::Cascade),
    )
    .unwrap();
    // r(1) ← m(2) ← w(3); the root manages itself to satisfy the FK.
    sys.execute(
        "insert into emp values ('r', 1, 1.0, 1), ('m', 2, 1.0, 1), ('w', 3, 1.0, 2)",
    )
    .unwrap();
    let report = setrules_analysis::analyze(&sys);
    assert!(!report.loops.is_empty(), "self-referential cascade is recursive by design");
    sys.execute("delete from emp where emp_no = 1").unwrap();
    assert_eq!(
        sys.query("select count(*) from emp").unwrap().scalar().unwrap(),
        &Value::Int(0),
        "the whole chain cascades"
    );
}
