//! Rule selection strategies (§4.4) observed through firing order.

use setrules_core::{EngineConfig, RuleError, RuleSystem, SelectionStrategy};

/// Build a system with three independent logging rules all triggered by
/// the same insert. The log table records firing order via a counter read
/// from the table itself.
fn three_rules(strategy: SelectionStrategy) -> RuleSystem {
    let mut sys = RuleSystem::with_config(EngineConfig { strategy, ..Default::default() });
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table log (rule_name text, seq int)").unwrap();
    for name in ["alpha", "beta", "gamma"] {
        sys.execute(&format!(
            "create rule {name} when inserted into t \
             then insert into log values ('{name}', (select count(*) from log))"
        ))
        .unwrap();
    }
    sys
}

fn firing_order(sys: &RuleSystem) -> Vec<String> {
    sys.query("select rule_name from log order by seq")
        .unwrap()
        .rows
        .into_iter()
        .map(|r| r[0].as_str().unwrap().to_string())
        .collect()
}

#[test]
fn creation_order_fires_in_creation_order() {
    let mut sys = three_rules(SelectionStrategy::CreationOrder);
    sys.transaction("insert into t values (1)").unwrap();
    assert_eq!(firing_order(&sys), vec!["alpha", "beta", "gamma"]);
}

#[test]
fn partial_order_respects_priorities() {
    let mut sys = three_rules(SelectionStrategy::PartialOrder);
    sys.execute("create rule priority gamma before alpha").unwrap();
    sys.execute("create rule priority alpha before beta").unwrap();
    sys.transaction("insert into t values (1)").unwrap();
    assert_eq!(firing_order(&sys), vec!["gamma", "alpha", "beta"]);
}

#[test]
fn partial_order_incomparable_rules_fall_back_to_creation_order() {
    let mut sys = three_rules(SelectionStrategy::PartialOrder);
    // Only beta < gamma declared; alpha incomparable to both.
    sys.execute("create rule priority gamma before beta").unwrap();
    sys.transaction("insert into t values (1)").unwrap();
    // Maximal set initially = {alpha, gamma}: alpha (created first) wins,
    // then gamma, then beta.
    assert_eq!(firing_order(&sys), vec!["alpha", "gamma", "beta"]);
}

#[test]
fn priority_cycle_rejected() {
    let mut sys = three_rules(SelectionStrategy::PartialOrder);
    sys.execute("create rule priority alpha before beta").unwrap();
    sys.execute("create rule priority beta before gamma").unwrap();
    let err = sys.execute("create rule priority gamma before alpha").unwrap_err();
    assert!(matches!(err, RuleError::PriorityCycle { .. }));
}

#[test]
fn priority_on_unknown_rule_rejected() {
    let mut sys = three_rules(SelectionStrategy::PartialOrder);
    let err = sys.execute("create rule priority alpha before nobody").unwrap_err();
    assert!(matches!(err, RuleError::NoSuchRule(_)));
}

/// Least-recently-considered rotates fairness across transactions.
#[test]
fn least_recently_considered_rotates() {
    let mut sys = three_rules(SelectionStrategy::LeastRecentlyConsidered);
    sys.transaction("insert into t values (1)").unwrap();
    // First txn: never-considered rules go in creation order.
    assert_eq!(firing_order(&sys), vec!["alpha", "beta", "gamma"]);
    sys.execute("delete from log").unwrap();
    sys.transaction("insert into t values (2)").unwrap();
    // Second txn: all were considered; oldest timestamps first — same
    // relative order (alpha considered least recently again).
    assert_eq!(firing_order(&sys), vec!["alpha", "beta", "gamma"]);
}

/// Most-recently-considered reverses that preference on the second
/// transaction.
#[test]
fn most_recently_considered_prefers_recent() {
    let mut sys = three_rules(SelectionStrategy::MostRecentlyConsidered);
    sys.transaction("insert into t values (1)").unwrap();
    assert_eq!(firing_order(&sys), vec!["alpha", "beta", "gamma"]);
    sys.execute("delete from log").unwrap();
    sys.transaction("insert into t values (2)").unwrap();
    // gamma was considered most recently in txn 1 → goes first now.
    assert_eq!(firing_order(&sys), vec!["gamma", "beta", "alpha"]);
}

/// Strategy changes are rejected mid-transaction.
#[test]
fn strategy_change_requires_no_txn() {
    let mut sys = three_rules(SelectionStrategy::CreationOrder);
    sys.begin().unwrap();
    assert!(matches!(
        sys.set_strategy(SelectionStrategy::PartialOrder),
        Err(RuleError::TransactionOpen)
    ));
    sys.rollback().unwrap();
    sys.set_strategy(SelectionStrategy::PartialOrder).unwrap();
}

/// §4.4's note that selection strategy can change the final state: a
/// one-slot table written by whichever rule goes first.
#[test]
fn strategy_affects_final_state() {
    let build = |strategy: SelectionStrategy, prio: Option<(&str, &str)>| -> String {
        let mut sys = RuleSystem::with_config(EngineConfig { strategy, ..Default::default() });
        sys.execute("create table t (k int)").unwrap();
        sys.execute("create table winner (name text)").unwrap();
        for name in ["first", "second"] {
            // Each rule claims the slot only if it is still empty.
            sys.execute(&format!(
                "create rule {name} when inserted into t \
                 if not exists (select * from winner) \
                 then insert into winner values ('{name}')"
            ))
            .unwrap();
        }
        if let Some((h, l)) = prio {
            sys.execute(&format!("create rule priority {h} before {l}")).unwrap();
        }
        sys.transaction("insert into t values (1)").unwrap();
        sys.query("select name from winner").unwrap().rows[0][0]
            .as_str()
            .unwrap()
            .to_string()
    };
    assert_eq!(build(SelectionStrategy::CreationOrder, None), "first");
    assert_eq!(
        build(SelectionStrategy::PartialOrder, Some(("second", "first"))),
        "second",
        "priorities flip the outcome"
    );
}
