//! Static analysis (§6) run against the paper's own rule sets: the
//! analyzer must flag exactly the behaviours the examples exhibit.

use setrules_analysis::{analyze, ConflictKind, TriggerGraph};
use setrules_core::RuleSystem;

fn paper_db() -> RuleSystem {
    let mut sys = RuleSystem::new();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
    sys
}

/// Example 4.1's rule is recursive by design — the analyzer must warn
/// about the (intentional) self-loop.
#[test]
fn example_4_1_flagged_as_self_triggering() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r41 when deleted from emp \
         then delete from emp where dept_no in \
                (select dept_no from dept where mgr_no in (select emp_no from deleted emp)); \
              delete from dept where mgr_no in (select emp_no from deleted emp)",
    )
    .unwrap();
    let report = analyze(&sys);
    assert_eq!(report.loops.len(), 1);
    assert_eq!(report.loops[0].rules, vec!["r41"]);
}

/// Example 3.2's rule updates the very column it watches: self-loop
/// warning (the paper's footnote 7 scenario — it terminates only because
/// the condition eventually fails, which static analysis cannot know).
#[test]
fn example_3_2_flagged_as_potential_loop() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r32 when updated emp.salary \
         if (select sum(salary) from new updated emp.salary) > \
            (select sum(salary) from old updated emp.salary) \
         then update emp set salary = 0.95 * salary where dept_no = 2",
    )
    .unwrap();
    let report = analyze(&sys);
    assert_eq!(report.loops.len(), 1);
}

/// Example 3.1's cascade is acyclic (dept-delete → emp-delete, and
/// nothing watches emp): no loop warning.
#[test]
fn example_3_1_is_loop_free() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r31 when deleted from dept \
         then delete from emp where dept_no in (select dept_no from deleted dept)",
    )
    .unwrap();
    let report = analyze(&sys);
    assert!(report.loops.is_empty(), "{report}");
}

/// Example 4.3's R1/R2 pair: before the paper adds the priority, the pair
/// is unordered and interferes on `emp` — exactly the situation §6 wants
/// flagged; declaring the priority clears it.
#[test]
fn example_4_3_conflict_cleared_by_priority() {
    let mut sys = paper_db();
    sys.execute(
        "create rule r1 when deleted from emp \
         then delete from emp where dept_no in \
                (select dept_no from dept where mgr_no in (select emp_no from deleted emp)); \
              delete from dept where mgr_no in (select emp_no from deleted emp)",
    )
    .unwrap();
    sys.execute(
        "create rule r2 when updated emp.salary \
         if (select avg(salary) from new updated emp.salary) > 50000 \
         then delete from emp where emp_no in (select emp_no from new updated emp.salary) \
              and salary > 80000",
    )
    .unwrap();
    let report = analyze(&sys);
    assert!(
        report
            .conflicts
            .iter()
            .any(|c| c.kind == ConflictKind::WriteWrite && c.tables.contains(&"emp".to_string())),
        "{report}"
    );

    sys.execute("create rule priority r2 before r1").unwrap();
    let report = analyze(&sys);
    assert!(report.conflicts.is_empty(), "{report}");
    // R1 still self-loops (by design) and R2's delete feeds R1.
    let g = TriggerGraph::build(&sys);
    let (r1, r2) = (sys.rule("r1").unwrap().id, sys.rule("r2").unwrap().id);
    assert!(g.triggers(r2, r1), "R2's emp-delete can trigger R1");
    assert!(!g.triggers(r1, r2), "R1 never updates salaries");
}

/// The analyzer and the runtime guard agree: a rule set the analyzer calls
/// a potential loop actually trips the footnote-7 limit when the data
/// diverges.
#[test]
fn analyzer_warning_matches_runtime_divergence() {
    let mut sys = RuleSystem::with_config(setrules_core::EngineConfig {
        max_rule_transitions: 10,
        ..Default::default()
    });
    sys.execute("create table t (v int)").unwrap();
    sys.execute("create rule up when updated t.v then update t set v = v + 1").unwrap();
    assert_eq!(analyze(&sys).loops.len(), 1, "flagged statically");
    sys.execute("insert into t values (0)").unwrap();
    let err = sys.transaction("update t set v = 1").unwrap_err();
    assert!(matches!(err, setrules_core::RuleError::LoopLimitExceeded { .. }));
}

/// Deactivated rules still analyze (they may be reactivated); dropped
/// rules vanish from the analysis.
#[test]
fn dropped_rules_leave_the_graph() {
    let mut sys = paper_db();
    sys.execute("create rule loopy when updated emp.salary then update emp set salary = salary").unwrap();
    assert_eq!(analyze(&sys).loops.len(), 1);
    sys.execute("drop rule loopy").unwrap();
    assert!(analyze(&sys).is_clean());
}
