//! Differential checks of incremental condition evaluation (delta-driven
//! memo repair) against the full re-scan evaluator it replaces.
//!
//! * 300 random rule programs × random DML batches, run twice — once with
//!   `EngineConfig::incremental` on, once off — must produce identical
//!   firing sequences, identical `state_image()`s, and identical semantic
//!   counters (work counters like `rows_scanned` and the `incr_*` family
//!   legitimately differ: that difference is the optimisation).
//! * A fault sweep over the paper's Example 3.1 / 4.1 workloads with
//!   incremental evaluation enabled: every reachable fault site must
//!   abort to a byte-identical pre-statement state on *both* evaluators,
//!   and the post-recovery runs must converge — i.e. an abort invalidates
//!   the memo rather than leaving it stale.
//!
//! Cases come from the deterministic `setrules-testkit` harness; a
//! failure names the case index and seed to replay.

use setrules_core::{
    EngineConfig, FaultKind, RetriggerSemantics, RuleError, RuleSystem, SelectionStrategy,
};
use setrules_query::QueryError;
use setrules_storage::StorageError;
use setrules_testkit::{check, Rng};

// ----------------------------------------------------------------------
// Random rule programs over a shared schema.
// ----------------------------------------------------------------------

/// `t` is the watched table, `tick` drives bounded cascades, `sink`
/// absorbs actions without licensing any `t`/`tick` trigger.
fn build(incremental: bool, retrigger: RetriggerSemantics, rules: &[String]) -> RuleSystem {
    let mut sys = RuleSystem::with_config(EngineConfig {
        incremental: Some(incremental),
        retrigger,
        strategy: SelectionStrategy::PartialOrder,
        ..Default::default()
    });
    sys.execute("create table t (a int, b int)").unwrap();
    sys.execute("create table tick (k int)").unwrap();
    sys.execute("create table sink (r int, v int)").unwrap();
    for r in rules {
        sys.execute(r).unwrap();
    }
    sys
}

/// A row-local (or empty) filter over the licensed view's columns.
fn gen_pred(rng: &mut Rng, tick: bool) -> String {
    if tick {
        return match rng.below(3) {
            0 => String::new(),
            1 => format!(" where k > {}", rng.range_i64(0, 3)),
            _ => format!(" where k < {}", rng.range_i64(1, 4)),
        };
    }
    match rng.below(5) {
        0 => String::new(),
        1 => format!(" where a > {}", rng.range_i64(0, 50)),
        2 => format!(" where b < {}", rng.range_i64(0, 50)),
        3 => format!(" where a + b > {}", rng.range_i64(0, 80)),
        _ => format!(" where a > {} and b > {}", rng.range_i64(0, 40), rng.range_i64(0, 40)),
    }
}

/// One condition term over the rule's licensed transition views. Roughly
/// one in six terms is deliberately *not* incrementalizable (stored-table
/// reference, join, or non-row-local predicate) so the fallback path runs
/// interleaved with repairs.
fn gen_term(rng: &mut Rng, views: &[&str]) -> String {
    if rng.chance(1, 6) {
        return match rng.below(3) {
            0 => format!("exists (select * from t where a > {})", rng.range_i64(0, 50)),
            1 => "exists (select * from t e1, t e2 where e1.a = e2.b)".to_string(),
            _ => {
                let view = views[rng.below(views.len())];
                format!("exists (select * from {view} where a > (select count(*) from sink))")
            }
        };
    }
    let view = views[rng.below(views.len())];
    let pred = gen_pred(rng, view.ends_with("tick"));
    match rng.below(5) {
        0 => format!("exists (select * from {view}{pred})"),
        1 => format!("not exists (select * from {view}{pred})"),
        2 => format!("(select count(*) from {view}{pred}) > {}", rng.below(3)),
        3 => format!("(select count(*) from {view}{pred}) = 0"),
        _ => format!("{} < (select count(*) from {view}{pred})", rng.below(2)),
    }
}

fn gen_condition(rng: &mut Rng, views: &[&str]) -> Option<String> {
    if rng.chance(1, 8) {
        return None; // omitted condition: always fires, no memo involved
    }
    let nterms = 1 + rng.below(3);
    let mut s = gen_term(rng, views);
    for _ in 1..nterms {
        let op = if rng.chance(1, 2) { "and" } else { "or" };
        s = format!("({s} {op} {})", gen_term(rng, views));
    }
    Some(s)
}

fn gen_rule(rng: &mut Rng, i: usize) -> String {
    let (when, views): (&str, Vec<&str>) = match rng.below(6) {
        0 => ("inserted into t", vec!["inserted t"]),
        1 => ("deleted from t", vec!["deleted t"]),
        2 => ("updated t.a", vec!["old updated t.a", "new updated t.a"]),
        3 => ("updated t.b", vec!["old updated t.b", "new updated t.b"]),
        4 => ("updated t", vec!["old updated t", "new updated t"]),
        _ => {
            // Bounded self-triggering cascade: each firing re-inserts
            // strictly smaller keys, so the storm terminates.
            return format!(
                "create rule r{i} when inserted into tick \
                 if exists (select * from inserted tick where k > 0) \
                 then insert into tick (select k - 1 from inserted tick where k > 0)"
            );
        }
    };
    let action = if rng.chance(1, 16) {
        "rollback".to_string()
    } else {
        format!("insert into sink values ({i}, 1)")
    };
    match gen_condition(rng, &views) {
        Some(c) => format!("create rule r{i} when {when} if {c} then {action}"),
        None => format!("create rule r{i} when {when} then {action}"),
    }
}

fn gen_rules(rng: &mut Rng) -> Vec<String> {
    (0..3 + rng.below(5)).map(|i| gen_rule(rng, i)).collect()
}

fn gen_txn(rng: &mut Rng) -> String {
    let n = 1 + rng.below(4);
    let stmts: Vec<String> = (0..n)
        .map(|_| match rng.below(7) {
            0 | 1 => {
                let rows: Vec<String> = (0..1 + rng.below(3))
                    .map(|_| format!("({}, {})", rng.range_i64(0, 60), rng.range_i64(0, 60)))
                    .collect();
                format!("insert into t values {}", rows.join(", "))
            }
            2 => format!(
                "update t set b = b + {} where a < {}",
                rng.range_i64(1, 9),
                rng.range_i64(0, 60)
            ),
            3 => format!(
                "update t set a = a + {} where b > {}",
                rng.range_i64(1, 9),
                rng.range_i64(0, 60)
            ),
            4 => format!("delete from t where a > {}", rng.range_i64(10, 70)),
            5 => format!(
                "update t set a = {} where a = {}",
                rng.range_i64(0, 60),
                rng.range_i64(0, 60)
            ),
            _ => format!("insert into tick values ({})", rng.below(4)),
        })
        .collect();
    stmts.join("; ")
}

const RETRIGGERS: [RetriggerSemantics; 3] = [
    RetriggerSemantics::SinceLastAction,
    RetriggerSemantics::SinceLastConsidered,
    RetriggerSemantics::SinceLastTriggering,
];

/// The headline differential: 300 random programs, each driven by the
/// same batch of transactions on an incremental and a re-scan system.
#[test]
fn incremental_matches_rescan_on_random_programs() {
    let mut incr_answers = 0u64; // repairs + rebuilds across all cases
    check("incremental_matches_rescan", 300, 0x1c4_0001, |rng| {
        let retrigger = RETRIGGERS[rng.below(3)];
        let rules = gen_rules(rng);
        let mut inc = build(true, retrigger, &rules);
        let mut scan = build(false, retrigger, &rules);
        let ctx = || format!("retrigger={retrigger:?} rules={rules:#?}");

        for _ in 0..3 + rng.below(5) {
            let sql = gen_txn(rng);
            let a = inc.transaction(&sql);
            let b = scan.transaction(&sql);
            match (&a, &b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.committed(), y.committed(), "txn `{sql}`\n{}", ctx());
                    assert_eq!(x.fired(), y.fired(), "firing trace for `{sql}`\n{}", ctx());
                }
                (Err(x), Err(y)) => {
                    assert_eq!(x.to_string(), y.to_string(), "error for `{sql}`\n{}", ctx())
                }
                _ => panic!("evaluators disagree on `{sql}`: {a:?} vs {b:?}\n{}", ctx()),
            }
            assert_eq!(
                inc.database().state_image(),
                scan.database().state_image(),
                "state diverged after `{sql}`\n{}",
                ctx()
            );
        }

        // Semantic counters agree; work counters (`incr_*`, rows scanned)
        // are allowed to differ — they are the point.
        let (si, ss) = (inc.stats(), scan.stats());
        assert_eq!(si.rules_considered, ss.rules_considered, "{}", ctx());
        assert_eq!(si.conditions_false, ss.conditions_false, "{}", ctx());
        assert_eq!(si.rules_executed, ss.rules_executed, "{}", ctx());
        assert_eq!(si.rules_retriggered, ss.rules_retriggered, "{}", ctx());
        assert_eq!(si.txns_committed, ss.txns_committed, "{}", ctx());
        assert_eq!(si.txns_rolled_back, ss.txns_rolled_back, "{}", ctx());
        assert_eq!(si.loop_aborts, ss.loop_aborts, "{}", ctx());

        // The knob is real: the re-scan side never touches the machinery.
        assert_eq!(ss.incr_hits + ss.incr_rebuilds + ss.incr_fallbacks, 0, "{}", ctx());
        incr_answers += si.incr_hits + si.incr_rebuilds;
    });
    assert!(
        incr_answers > 0,
        "the sweep never exercised an authoritative incremental answer"
    );
}

// ----------------------------------------------------------------------
// Fault sweep over the new memo-invalidation sites.
// ----------------------------------------------------------------------

struct Scenario {
    name: &'static str,
    rule: &'static str,
    seed: &'static [&'static str],
    workload: &'static [&'static str],
}

/// Examples 3.1 and 4.1 with conditions attached so the incremental
/// machinery is live while faults fly. (The paper's originals are
/// unconditional; `exists (…)` over the licensed view keeps semantics
/// identical.)
const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "example_3_1",
        rule: "create rule r31 when deleted from dept \
               if exists (select * from deleted dept) \
               then delete from emp where dept_no in (select dept_no from deleted dept)",
        seed: &[
            "insert into dept values (1, 10), (2, 20)",
            "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 10.0, 1), ('c', 3, 10.0, 2)",
        ],
        workload: &[
            "delete from dept where dept_no = 1",
            "insert into dept values (3, 30)",
            "delete from dept where dept_no = 2",
        ],
    },
    Scenario {
        name: "example_4_1",
        rule: "create rule r41 when deleted from emp \
               if exists (select * from deleted emp) \
               then delete from emp where dept_no in \
                      (select dept_no from dept where mgr_no in \
                        (select emp_no from deleted emp)); \
                    delete from dept where mgr_no in \
                      (select emp_no from deleted emp)",
        seed: &[
            "insert into dept values (1, 1), (2, 2)",
            "insert into emp values ('r', 1, 1.0, 0), ('m1', 2, 1.0, 1), \
             ('m2', 3, 1.0, 1), ('w1', 4, 1.0, 2), ('w2', 5, 1.0, 2)",
        ],
        workload: &["delete from emp where name = 'r'", "insert into emp values ('x', 9, 1.0, 9)"],
    },
];

fn fresh(scenario: &Scenario, incremental: bool) -> RuleSystem {
    let mut sys = RuleSystem::with_config(EngineConfig {
        incremental: Some(incremental),
        ..Default::default()
    });
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
    sys.execute(scenario.rule).unwrap();
    for s in scenario.seed {
        sys.execute(s).unwrap();
    }
    sys.fault_injector_mut().reset_counts();
    sys
}

fn is_fault(e: &RuleError, kind: FaultKind, n: u64) -> bool {
    let se = match e {
        RuleError::Storage(se) => se,
        RuleError::Query(QueryError::Storage(se)) => se,
        _ => return false,
    };
    matches!(se, StorageError::FaultInjected { kind: k, op } if *k == kind && *op == n)
}

/// Fail every reachable storage site in the Example 3.1/4.1 workloads
/// with incremental evaluation on: the abort must restore the exact
/// pre-statement state, the memo must not survive stale (the disarmed
/// re-run matches a never-faulted incremental run and a re-scan run),
/// and both evaluators must fault identically.
#[test]
fn fault_sweep_invalidates_memos_on_abort() {
    for scenario in SCENARIOS {
        // Discovery: fault-free incremental run, counting sites and
        // recording the expected final image.
        let mut probe = fresh(scenario, true);
        for stmt in scenario.workload {
            assert!(
                probe.transaction(stmt).unwrap().committed(),
                "{}: fault-free run must commit",
                scenario.name
            );
        }
        assert!(
            probe.stats().incr_hits + probe.stats().incr_rebuilds > 0,
            "{}: scenario must exercise the incremental path",
            scenario.name
        );
        let golden = probe.database().state_image();
        let totals: Vec<(FaultKind, u64)> = FaultKind::ALL
            .iter()
            .map(|&k| (k, probe.fault_injector().count(k)))
            .filter(|&(_, c)| c > 0)
            .collect();

        let mut swept = 0u64;
        for &(kind, total) in &totals {
            for n in 1..=total {
                let mut inc = fresh(scenario, true);
                let mut scan = fresh(scenario, false);
                inc.fault_injector_mut().arm(kind, n);
                scan.fault_injector_mut().arm(kind, n);
                let ctx = format!("[{} kind={kind} n={n}]", scenario.name);

                let mut faulted_at = None;
                for (i, stmt) in scenario.workload.iter().enumerate() {
                    let before = inc.database().state_image();
                    let a = inc.transaction(stmt);
                    let b = scan.transaction(stmt);
                    match (&a, &b) {
                        (Ok(x), Ok(y)) => {
                            assert_eq!(x.fired(), y.fired(), "{ctx} stmt {i}")
                        }
                        (Err(ea), Err(eb)) => {
                            assert!(is_fault(ea, kind, n), "{ctx} stmt {i}: {ea}");
                            assert_eq!(ea.to_string(), eb.to_string(), "{ctx} stmt {i}");
                            assert_eq!(
                                inc.database().state_image(),
                                before,
                                "{ctx} stmt {i}: abort left residue"
                            );
                            faulted_at = Some(i);
                        }
                        _ => panic!("{ctx} stmt {i}: evaluators disagree: {a:?} vs {b:?}"),
                    }
                    assert_eq!(
                        inc.database().state_image(),
                        scan.database().state_image(),
                        "{ctx} stmt {i}: evaluators diverged"
                    );
                    if faulted_at.is_some() {
                        break;
                    }
                }
                let i = faulted_at
                    .unwrap_or_else(|| panic!("{ctx}: armed site was never reached"));

                // Recovery: disarm and resume from the aborted statement.
                // A stale memo would surface here as a wrong firing
                // decision or a diverged image.
                inc.fault_injector_mut().disarm();
                scan.fault_injector_mut().disarm();
                let replay = |sys: &mut RuleSystem| {
                    for stmt in &scenario.workload[i..] {
                        sys.transaction(stmt).unwrap();
                    }
                };
                replay(&mut inc);
                replay(&mut scan);
                assert_eq!(
                    inc.database().state_image(),
                    scan.database().state_image(),
                    "{ctx}: post-recovery divergence"
                );
                assert_eq!(
                    inc.database().state_image(),
                    golden,
                    "{ctx}: recovery did not converge to the fault-free image"
                );
                swept += 1;
            }
        }
        assert!(swept > 0, "{}: no sites swept", scenario.name);
    }
}
