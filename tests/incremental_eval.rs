//! Differential checks of incremental condition evaluation (delta-driven
//! memo repair) against the full re-scan evaluator it replaces.
//!
//! * 300 random rule programs × random DML batches, run twice — once with
//!   `EngineConfig::incremental` on, once off — must produce identical
//!   firing sequences, identical `state_image()`s, and identical semantic
//!   counters (work counters like `rows_scanned` and the `incr_*` family
//!   legitimately differ: that difference is the optimisation). Programs
//!   span match sets, two-view equality joins (and non-equi fallbacks),
//!   `sum`/`avg`/`min`/`max` accumulators, float-aggregate fallbacks, and
//!   inserts from the NaN/-0.0/NULL/1e300/near-`i64::MAX` corpus.
//! * Deterministic programs pinning the widened memo kinds: extremum
//!   deletion, windows drained to empty, join repair from both sides,
//!   the sum overflow guard, the shared-delta-cursor storm, and the
//!   `selected`-window fallback.
//! * A fault sweep over the paper's Example 3.1 / 4.1 workloads (with
//!   exists, join-memory, and accumulator conditions) with incremental
//!   evaluation enabled: every reachable fault site must abort to a
//!   byte-identical pre-statement state on *both* evaluators, and the
//!   post-recovery runs must converge — i.e. an abort invalidates the
//!   memo rather than leaving it stale.
//!
//! Cases come from the deterministic `setrules-testkit` harness; a
//! failure names the case index and seed to replay.

use setrules_core::{
    EngineConfig, FaultKind, RetriggerSemantics, RuleError, RuleSystem, SelectionStrategy,
};
use setrules_query::QueryError;
use setrules_storage::StorageError;
use setrules_testkit::{check, Rng};

// ----------------------------------------------------------------------
// Random rule programs over a shared schema.
// ----------------------------------------------------------------------

/// `t` is the watched table, `tick` drives bounded cascades, `sink`
/// absorbs actions without licensing any `t`/`tick` trigger.
fn build(incremental: bool, retrigger: RetriggerSemantics, rules: &[String]) -> RuleSystem {
    let mut sys = RuleSystem::with_config(EngineConfig {
        incremental: Some(incremental),
        retrigger,
        strategy: SelectionStrategy::PartialOrder,
        ..Default::default()
    });
    sys.execute("create table t (a int, b int, f float)").unwrap();
    sys.execute("create table tick (k int)").unwrap();
    sys.execute("create table sink (r int, v int)").unwrap();
    for r in rules {
        sys.execute(r).unwrap();
    }
    sys
}

/// A row-local (or empty) filter over the licensed view's columns.
fn gen_pred(rng: &mut Rng, tick: bool) -> String {
    if tick {
        return match rng.below(3) {
            0 => String::new(),
            1 => format!(" where k > {}", rng.range_i64(0, 3)),
            _ => format!(" where k < {}", rng.range_i64(1, 4)),
        };
    }
    match rng.below(6) {
        0 => String::new(),
        1 => format!(" where a > {}", rng.range_i64(0, 50)),
        2 => format!(" where b < {}", rng.range_i64(0, 50)),
        3 => format!(" where a + b > {}", rng.range_i64(0, 80)),
        4 => format!(" where f > {}", *rng.pick(&["0.0", "-0.0", "1.5", "1e300"])),
        _ => format!(" where a > {} and b > {}", rng.range_i64(0, 40), rng.range_i64(0, 40)),
    }
}

/// An int literal for inserts: mostly small, sometimes NULL (three-valued
/// predicates and aggregates skipping NULLs), rarely near `i64::MAX` so
/// `sum` repairs cross the overflow guard — and sometimes *must* error,
/// identically on both evaluators.
fn gen_int(rng: &mut Rng) -> String {
    if rng.chance(1, 10) {
        return "NULL".to_string();
    }
    if rng.chance(1, 40) {
        return "9223372036854775000".to_string();
    }
    rng.range_i64(0, 60).to_string()
}

/// A float literal from the adversarial corpus (float aggregates fall
/// back; float predicates stay incremental and must agree on NaN/-0.0).
fn gen_float(rng: &mut Rng) -> &'static str {
    const CORPUS: [&str; 9] =
        ["0.0", "-0.0", "1.5", "-2.5", "7.25", "1e300", "-1e300", "(0.0 / 0.0)", "NULL"];
    CORPUS[rng.below(CORPUS.len())]
}

/// One condition term over the rule's licensed transition views. Roughly
/// one in six terms is deliberately *not* incrementalizable (stored-table
/// reference, join, or non-row-local predicate) so the fallback path runs
/// interleaved with repairs.
fn gen_term(rng: &mut Rng, views: &[&str]) -> String {
    if rng.chance(1, 6) {
        return match rng.below(3) {
            0 => format!("exists (select * from t where a > {})", rng.range_i64(0, 50)),
            1 => "exists (select * from t e1, t e2 where e1.a = e2.b)".to_string(),
            _ => {
                let view = views[rng.below(views.len())];
                format!("exists (select * from {view} where a > (select count(*) from sink))")
            }
        };
    }
    // Two-view join terms for rules licensing a whole-table update window
    // (`old updated t` × `new updated t`): equality joins exercise the
    // join memory; one in three is non-equi, exercising the `JoinShape`
    // fallback.
    if views.len() == 2
        && views.iter().all(|v| v.ends_with(" t"))
        && rng.chance(1, 4)
    {
        let key = if rng.chance(1, 2) { "a" } else { "b" };
        let extra = match rng.below(3) {
            0 => String::new(),
            1 => format!(" and o.a > {}", rng.range_i64(0, 50)),
            _ => format!(" and n.b < {}", rng.range_i64(0, 50)),
        };
        let cmp = if rng.chance(1, 3) { "<" } else { "=" };
        return format!(
            "exists (select * from {} o, {} n where o.{key} {cmp} n.{key}{extra})",
            views[0], views[1]
        );
    }
    let view = views[rng.below(views.len())];
    let tick = view.ends_with("tick");
    let pred = gen_pred(rng, tick);
    // Aggregate thresholds: int columns run on the accumulator memos
    // (`sum`/`avg` as running pairs, `min`/`max` as ordered multisets);
    // float columns exercise the `FloatAccumulator` fallback.
    if !tick && rng.chance(1, 3) {
        let (func, col) = match rng.below(6) {
            0 => ("sum", "a"),
            1 => ("avg", "a"),
            2 => ("min", "b"),
            3 => ("max", "b"),
            4 => ("sum", "f"),
            _ => ("min", "f"),
        };
        let op = ["<", "<=", ">", ">=", "="][rng.below(5)];
        return format!(
            "(select {func}({col}) from {view}{pred}) {op} {}",
            rng.range_i64(0, 120)
        );
    }
    match rng.below(5) {
        0 => format!("exists (select * from {view}{pred})"),
        1 => format!("not exists (select * from {view}{pred})"),
        2 => format!("(select count(*) from {view}{pred}) > {}", rng.below(3)),
        3 => format!("(select count(*) from {view}{pred}) = 0"),
        _ => format!("{} < (select count(*) from {view}{pred})", rng.below(2)),
    }
}

fn gen_condition(rng: &mut Rng, views: &[&str]) -> Option<String> {
    if rng.chance(1, 8) {
        return None; // omitted condition: always fires, no memo involved
    }
    let nterms = 1 + rng.below(3);
    let mut s = gen_term(rng, views);
    for _ in 1..nterms {
        let op = if rng.chance(1, 2) { "and" } else { "or" };
        s = format!("({s} {op} {})", gen_term(rng, views));
    }
    Some(s)
}

fn gen_rule(rng: &mut Rng, i: usize) -> String {
    let (when, views): (&str, Vec<&str>) = match rng.below(6) {
        0 => ("inserted into t", vec!["inserted t"]),
        1 => ("deleted from t", vec!["deleted t"]),
        2 => ("updated t.a", vec!["old updated t.a", "new updated t.a"]),
        3 => ("updated t.b", vec!["old updated t.b", "new updated t.b"]),
        4 => ("updated t", vec!["old updated t", "new updated t"]),
        _ => {
            // Bounded self-triggering cascade: each firing re-inserts
            // strictly smaller keys, so the storm terminates.
            return format!(
                "create rule r{i} when inserted into tick \
                 if exists (select * from inserted tick where k > 0) \
                 then insert into tick (select k - 1 from inserted tick where k > 0)"
            );
        }
    };
    let action = if rng.chance(1, 16) {
        "rollback".to_string()
    } else {
        format!("insert into sink values ({i}, 1)")
    };
    match gen_condition(rng, &views) {
        Some(c) => format!("create rule r{i} when {when} if {c} then {action}"),
        None => format!("create rule r{i} when {when} then {action}"),
    }
}

fn gen_rules(rng: &mut Rng) -> Vec<String> {
    (0..3 + rng.below(5)).map(|i| gen_rule(rng, i)).collect()
}

fn gen_txn(rng: &mut Rng) -> String {
    let n = 1 + rng.below(4);
    let stmts: Vec<String> = (0..n)
        .map(|_| match rng.below(8) {
            0 | 1 => {
                let rows: Vec<String> = (0..1 + rng.below(3))
                    .map(|_| {
                        format!("({}, {}, {})", gen_int(rng), gen_int(rng), gen_float(rng))
                    })
                    .collect();
                format!("insert into t values {}", rows.join(", "))
            }
            2 => format!(
                "update t set b = b + {} where a < {}",
                rng.range_i64(1, 9),
                rng.range_i64(0, 60)
            ),
            3 => format!(
                "update t set a = a + {} where b > {}",
                rng.range_i64(1, 9),
                rng.range_i64(0, 60)
            ),
            4 => format!("delete from t where a > {}", rng.range_i64(10, 70)),
            5 => format!(
                "update t set a = {} where a = {}",
                rng.range_i64(0, 60),
                rng.range_i64(0, 60)
            ),
            6 => format!("update t set f = {} where b < {}", gen_float(rng), rng.range_i64(0, 60)),
            _ => format!("insert into tick values ({})", rng.below(4)),
        })
        .collect();
    stmts.join("; ")
}

const RETRIGGERS: [RetriggerSemantics; 3] = [
    RetriggerSemantics::SinceLastAction,
    RetriggerSemantics::SinceLastConsidered,
    RetriggerSemantics::SinceLastTriggering,
];

/// The headline differential: 300 random programs, each driven by the
/// same batch of transactions on an incremental and a re-scan system.
#[test]
fn incremental_matches_rescan_on_random_programs() {
    let mut incr_answers = 0u64; // repairs + rebuilds across all cases
    check("incremental_matches_rescan", 300, 0x1c4_0001, |rng| {
        let retrigger = RETRIGGERS[rng.below(3)];
        let rules = gen_rules(rng);
        let mut inc = build(true, retrigger, &rules);
        let mut scan = build(false, retrigger, &rules);
        let ctx = || format!("retrigger={retrigger:?} rules={rules:#?}");

        for _ in 0..3 + rng.below(5) {
            let sql = gen_txn(rng);
            let a = inc.transaction(&sql);
            let b = scan.transaction(&sql);
            match (&a, &b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.committed(), y.committed(), "txn `{sql}`\n{}", ctx());
                    assert_eq!(x.fired(), y.fired(), "firing trace for `{sql}`\n{}", ctx());
                }
                (Err(x), Err(y)) => {
                    assert_eq!(x.to_string(), y.to_string(), "error for `{sql}`\n{}", ctx())
                }
                _ => panic!("evaluators disagree on `{sql}`: {a:?} vs {b:?}\n{}", ctx()),
            }
            assert_eq!(
                inc.database().state_image(),
                scan.database().state_image(),
                "state diverged after `{sql}`\n{}",
                ctx()
            );
        }

        // Semantic counters agree; work counters (`incr_*`, rows scanned)
        // are allowed to differ — they are the point.
        let (si, ss) = (inc.stats(), scan.stats());
        assert_eq!(si.rules_considered, ss.rules_considered, "{}", ctx());
        assert_eq!(si.conditions_false, ss.conditions_false, "{}", ctx());
        assert_eq!(si.rules_executed, ss.rules_executed, "{}", ctx());
        assert_eq!(si.rules_retriggered, ss.rules_retriggered, "{}", ctx());
        assert_eq!(si.txns_committed, ss.txns_committed, "{}", ctx());
        assert_eq!(si.txns_rolled_back, ss.txns_rolled_back, "{}", ctx());
        assert_eq!(si.loop_aborts, ss.loop_aborts, "{}", ctx());

        // The knob is real: the re-scan side never touches the machinery.
        assert_eq!(ss.incr_hits + ss.incr_rebuilds + ss.incr_fallbacks, 0, "{}", ctx());
        incr_answers += si.incr_hits + si.incr_rebuilds;
    });
    assert!(
        incr_answers > 0,
        "the sweep never exercised an authoritative incremental answer"
    );
}

// ----------------------------------------------------------------------
// Deterministic programs pinning the widened memo kinds.
// ----------------------------------------------------------------------

/// Run the same rule program + transactions on an incremental and a
/// re-scan system, asserting identical firings and images throughout.
fn run_pair(rules: &[String], txns: &[&str]) -> (RuleSystem, RuleSystem) {
    let mut inc = build(true, RetriggerSemantics::SinceLastAction, rules);
    let mut scan = build(false, RetriggerSemantics::SinceLastAction, rules);
    for sql in txns {
        let a = inc.transaction(sql);
        let b = scan.transaction(sql);
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.fired(), y.fired(), "firing trace for `{sql}`");
            }
            (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string(), "error for `{sql}`"),
            _ => panic!("evaluators disagree on `{sql}`: {a:?} vs {b:?}"),
        }
        assert_eq!(
            inc.database().state_image(),
            scan.database().state_image(),
            "state diverged after `{sql}`"
        );
    }
    (inc, scan)
}

/// Deleting the extremum mid-transaction must repair the ordered-multiset
/// memo, not rescan — and must *flip* the watcher's truth: `w_max`
/// becomes true only after the reaper deletes the rows with `a > 50`
/// from the inserted window (max falls from 60 to 5). `w_sum`'s running
/// pair retires the same contributions.
#[test]
fn aggregate_memo_repairs_extremum_deletion() {
    let rules = vec![
        "create rule w_max when inserted into t \
         if (select max(a) from inserted t) <= 5 \
         then insert into sink values (0, 1)"
            .to_string(),
        "create rule w_sum when inserted into t \
         if (select sum(a) from inserted t) > 100 \
         then insert into sink values (1, 1)"
            .to_string(),
        "create rule w_min when inserted into t \
         if (select min(b) from inserted t) >= 7 \
         then insert into sink values (2, 1)"
            .to_string(),
        "create rule reaper when inserted into t \
         if exists (select * from inserted t where a > 50) \
         then delete from t where a > 50"
            .to_string(),
    ];
    let (inc, _) =
        run_pair(&rules, &["insert into t values (60, 9, 0.0), (55, 8, 1.5), (5, 7, -0.0)"]);
    let fired: Vec<i64> = inc
        .query("select r from sink")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect();
    assert!(fired.contains(&0), "w_max must fire after the extremum is deleted: {fired:?}");
    assert!(fired.contains(&1), "w_sum true before the reap: {fired:?}");
    assert!(fired.contains(&2), "w_min true throughout: {fired:?}");
    let si = inc.stats();
    assert!(si.incr_hits > 0, "reconsiderations must repair the accumulators");
    assert_eq!(si.incr_fallbacks, 0, "every condition here is incrementalizable");
}

/// When every row *matching* the watcher's filter is deleted, its memo
/// drains to empty (the whole window cannot drain — Def 2.1 cancels the
/// deletes against the inserts and the rule loses its trigger). The
/// emptied accumulator makes `count` 0 and `max` NULL; three-valued
/// comparisons must agree with the re-scan evaluator.
#[test]
fn aggregate_memo_drains_to_empty() {
    let rules = vec![
        "create rule w_gone when inserted into t \
         if (select count(*) from inserted t where a > 50) = 0 \
         then insert into sink values (1, 1)"
            .to_string(),
        "create rule w_null when inserted into t \
         if (select max(a) from inserted t where a > 50) >= 0 \
         then insert into sink values (0, 1)"
            .to_string(),
        "create rule reaper when inserted into t \
         if exists (select * from inserted t where a > 50) \
         then delete from t where a > 50"
            .to_string(),
    ];
    let (inc, _) =
        run_pair(&rules, &["insert into t values (60, 9, 0.0), (55, 8, 1.5), (5, 7, -0.0)"]);
    let fired: Vec<i64> = inc
        .query("select r from sink")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect();
    // w_gone is false while the memo holds {60, 55} and true only after
    // the reaper drains it (the surviving row (5, 7) keeps the window
    // triggered); w_null fires before the drain, and `NULL >= 0` keeps
    // it quiet after.
    assert!(fired.contains(&1), "w_gone must fire once its memo drains: {fired:?}");
    assert!(fired.contains(&0), "w_null must fire before the drain: {fired:?}");
    let si = inc.stats();
    assert!(si.incr_hits > 0, "the drain must be a repair, not a rebuild");
    assert_eq!(si.incr_fallbacks, 0, "every condition here is incrementalizable");
}

/// A two-view equality join repaired from both sides: the condition pairs
/// old and new updated rows on `a` and filters on the new side's `b`.
/// The reaper's follow-up update re-probes the join memory.
#[test]
fn join_memo_matches_rescan_across_both_sides() {
    let rules = vec![
        // False on first consideration (the external update sets b = 1),
        // true only after the pump's second-stage update — so the flip is
        // observed through a *repair* of the join memory, not a rebuild.
        "create rule w_join when updated t \
         if exists (select * from old updated t o, new updated t n \
                    where o.a = n.a and n.b > 10) \
         then insert into sink values (0, 1)"
            .to_string(),
        "create rule pump when updated t \
         if exists (select * from new updated t where b = 1) \
         then update t set b = 11 where b = 1"
            .to_string(),
    ];
    let (inc, _) = run_pair(
        &rules,
        &[
            "insert into t values (1, 1, 0.0), (2, 2, 0.0), (3, 3, 0.0)",
            // `a` never changes (stable join key); `b` rises through the
            // pump, so the pair predicate flips mid-processing while the
            // old-updated side stays frozen at (2, 2).
            "update t set b = 1 where a = 2",
        ],
    );
    assert!(
        inc.query("select count(*) from sink").unwrap().scalar().unwrap().as_i64().unwrap() > 0,
        "the join watcher must fire"
    );
    let si = inc.stats();
    assert!(si.incr_hits > 0, "join memo must repair across considerations");
    assert_eq!(si.incr_fallbacks, 0, "the equality join is incrementalizable");
}

/// The sum overflow guard: a window total outside `i64` errors
/// identically on both evaluators; positive-mass overflow with an
/// in-range total degrades that one evaluation to a full scan (recorded
/// under `sum-overflow-guard`) without giving a wrong answer.
#[test]
fn sum_overflow_guard_degrades_and_errors_identically() {
    let watch = vec![
        "create rule w when inserted into t \
         if (select sum(a) from inserted t) > 0 \
         then insert into sink values (0, 1)"
            .to_string(),
    ];
    // Total 2^63 — guaranteed overflow, identical error from both sides.
    let mut inc = build(true, RetriggerSemantics::SinceLastAction, &watch);
    let mut scan = build(false, RetriggerSemantics::SinceLastAction, &watch);
    let sql =
        "insert into t values (4611686018427387904, 0, 0.0), (4611686018427387904, 1, 0.0)";
    let (a, b) = (inc.transaction(sql), scan.transaction(sql));
    let ea = a.expect_err("sum must overflow").to_string();
    let eb = b.expect_err("sum must overflow").to_string();
    assert_eq!(ea, eb, "overflow must surface identically");
    assert!(ea.contains("integer overflow in sum"), "unexpected error: {ea}");

    // Positive mass exceeds i64 but the running total never does in scan
    // order: the incremental side must degrade (not answer from the
    // accumulator) and agree with the full fold.
    let (inc, _) = run_pair(
        &watch,
        &["insert into t values (6000000000000000000, 0, 0.0), \
           (-6000000000000000000, 1, 0.0), (6000000000000000000, 2, 0.0)"],
    );
    assert_eq!(
        inc.query("select count(*) from sink").unwrap().scalar().unwrap().as_i64(),
        Some(1),
        "the degraded evaluation must still answer true"
    );
    assert!(
        inc.stats().incr_fallback_reasons.get("sum-overflow-guard").copied().unwrap_or(0) > 0,
        "the degrade must be recorded under its own reason: {:?}",
        inc.stats().incr_fallback_reasons
    );
}

/// The 60-watcher shared-cursor storm: all watchers sit at the same
/// cursor when the pump fires, so the first repair folds the delta
/// suffix and the rest consume it from the per-transaction compose
/// cache (`incr_shared_hits`). Semantics stay identical to re-scan.
#[test]
fn shared_delta_cursor_fans_out_across_watchers() {
    let mut rules: Vec<String> = (0..60)
        .map(|i| {
            format!(
                "create rule w{i} when inserted into t \
                 if (select count(*) from inserted t) >= {} \
                 then insert into sink values ({i}, 1)",
                // Unsatisfiable thresholds: every watcher evaluates false
                // both before and after the pump, so all 60 repair from
                // the same cursor between the pump's transitions.
                100 + i
            )
        })
        .collect();
    rules.push(
        // Self-quenching: after acting, the pump's restarted window holds
        // its own insert (a = 99), so the second conjunct goes false and
        // the storm settles after exactly one pumped transition.
        "create rule pump when inserted into t \
         if exists (select * from inserted t where a = 1) \
         and not exists (select * from inserted t where a = 99) \
         then insert into t values (99, 99, 0.0)"
            .to_string(),
    );
    let (inc, scan) = run_pair(&rules, &["insert into t values (1, 1, 0.0)"]);
    let si = inc.stats();
    assert!(si.incr_hits > 0, "watchers must repair after the pump fires");
    assert!(
        si.incr_shared_hits >= 50,
        "the composed delta must fan out across the storm, got {} shared hits",
        si.incr_shared_hits
    );
    assert_eq!(scan.stats().incr_shared_hits, 0, "re-scan engine never shares deltas");
}

/// `selected` windows stay on the full evaluator — via a real
/// select-tracking system: the incremental engine must record the
/// `selected-window` fallback and still fire identically.
#[test]
fn selected_window_falls_back_identically() {
    let build_sel = |incremental: bool| {
        let mut sys = RuleSystem::with_config(EngineConfig {
            incremental: Some(incremental),
            track_selects: true,
            ..Default::default()
        });
        sys.execute("create table t (a int, b int, f float)").unwrap();
        sys.execute("create table audit (r int)").unwrap();
        sys.execute(
            "create rule watch_reads when selected t \
             if exists (select * from selected t where a > 1) \
             then insert into audit values (1)",
        )
        .unwrap();
        sys.execute("insert into t values (1, 1, 0.0), (2, 2, 0.0)").unwrap();
        sys
    };
    let mut inc = build_sel(true);
    let mut scan = build_sel(false);
    for sql in ["select a from t where a = 1", "select * from t where a = 2"] {
        let a = inc.transaction(sql).unwrap();
        let b = scan.transaction(sql).unwrap();
        assert_eq!(a.fired(), b.fired(), "selected-window firings for `{sql}`");
    }
    assert_eq!(
        inc.database().state_image(),
        scan.database().state_image(),
        "selected-window rule diverged"
    );
    assert!(
        inc.stats().incr_fallback_reasons.get("selected-window").copied().unwrap_or(0) > 0,
        "fallback must be recorded under selected-window: {:?}",
        inc.stats().incr_fallback_reasons
    );
}

/// The report-level fallback vocabulary: every `FallbackReason` reachable
/// through a creatable rule shows up in `incremental_report` as
/// `full re-scan [label] (reason)`. (`unlicensed` is unreachable here by
/// construction — rule creation rejects conditions referencing
/// unlicensed transition tables — and is pinned by the query-crate unit
/// taxonomy instead.)
#[test]
fn report_prints_fallback_label_vocabulary() {
    let mut sys = RuleSystem::with_config(EngineConfig {
        incremental: Some(true),
        ..Default::default()
    });
    sys.execute("create table t (a int, b int, f float)").unwrap();
    sys.execute("create table sink (r int, v int)").unwrap();
    let cases: &[(&str, &str)] = &[
        ("when inserted into t if a > 1", "shape"),
        ("when inserted into t if exists (select * from sink)", "stored-table"),
        (
            "when updated t if exists (select * from old updated t o, new updated t n \
             where o.a < n.a)",
            "join-shape",
        ),
        ("when selected t if exists (select * from selected t)", "selected-window"),
        (
            "when inserted into t if exists (select * from inserted t order by a)",
            "subquery-shape",
        ),
        ("when inserted into t if exists (select a / b from inserted t)", "projection"),
        (
            "when inserted into t if exists (select * from inserted t \
             where a > (select count(*) from sink))",
            "predicate",
        ),
        (
            "when inserted into t if (select count(*) from inserted t) = 'three'",
            "agg-comparison",
        ),
        ("when inserted into t if (select sum(f) from inserted t) > 0", "float-accumulator"),
        ("when inserted into t if (select count(a) from inserted t) > 0", "agg-argument"),
        (
            "when inserted into t if (select sum(nosuch) from inserted t) > 0",
            "unknown-reference",
        ),
    ];
    for (i, (shape, _)) in cases.iter().enumerate() {
        sys.execute(&format!("create rule v{i} {shape} then insert into sink values ({i}, 1)"))
            .unwrap();
    }
    // One incrementalizable control, so the report shows both renderings.
    sys.execute(
        "create rule ok when inserted into t \
         if (select min(a) from inserted t) < 3 then insert into sink values (99, 1)",
    )
    .unwrap();
    let report = sys.incremental_report();
    for (i, (shape, label)) in cases.iter().enumerate() {
        assert!(
            report.contains(&format!("[{label}]")),
            "rule v{i} ({shape}) must report label [{label}]; report:\n{report}"
        );
    }
    assert!(report.contains("incremental (1 term)"), "control rule must plan:\n{report}");
    assert!(report.contains("ordered multiset"), "memo kind must print:\n{report}");
}

// ----------------------------------------------------------------------
// Fault sweep over the new memo-invalidation sites.
// ----------------------------------------------------------------------

struct Scenario {
    name: &'static str,
    rule: &'static str,
    seed: &'static [&'static str],
    workload: &'static [&'static str],
}

/// Examples 3.1 and 4.1 with conditions attached so the incremental
/// machinery is live while faults fly. (The paper's originals are
/// unconditional; `exists (…)` over the licensed view keeps semantics
/// identical.)
const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "example_3_1",
        rule: "create rule r31 when deleted from dept \
               if exists (select * from deleted dept) \
               then delete from emp where dept_no in (select dept_no from deleted dept)",
        seed: &[
            "insert into dept values (1, 10), (2, 20)",
            "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 10.0, 1), ('c', 3, 10.0, 2)",
        ],
        workload: &[
            "delete from dept where dept_no = 1",
            "insert into dept values (3, 30)",
            "delete from dept where dept_no = 2",
        ],
    },
    Scenario {
        name: "example_4_1",
        rule: "create rule r41 when deleted from emp \
               if exists (select * from deleted emp) \
               then delete from emp where dept_no in \
                      (select dept_no from dept where mgr_no in \
                        (select emp_no from deleted emp)); \
                    delete from dept where mgr_no in \
                      (select emp_no from deleted emp)",
        seed: &[
            "insert into dept values (1, 1), (2, 2)",
            "insert into emp values ('r', 1, 1.0, 0), ('m1', 2, 1.0, 1), \
             ('m2', 3, 1.0, 1), ('w1', 4, 1.0, 2), ('w2', 5, 1.0, 2)",
        ],
        workload: &["delete from emp where name = 'r'", "insert into emp values ('x', 9, 1.0, 9)"],
    },
    // Example 3.1 again, with the condition rephrased as a two-view
    // equality self-join (true exactly when the window is non-empty:
    // every deleted dept pairs with itself on dept_no) — the fault sweep
    // now crosses the join-memory repair path.
    Scenario {
        name: "example_3_1_join_memo",
        rule: "create rule r31j when deleted from dept \
               if exists (select * from deleted dept x, deleted dept y \
                          where x.dept_no = y.dept_no) \
               then delete from emp where dept_no in (select dept_no from deleted dept)",
        seed: &[
            "insert into dept values (1, 10), (2, 20)",
            "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 10.0, 1), ('c', 3, 10.0, 2)",
        ],
        workload: &[
            "delete from dept where dept_no = 1",
            "insert into dept values (3, 30)",
            "delete from dept where dept_no = 2",
        ],
    },
    // Example 4.1 with an accumulator condition (`min` over the deleted
    // window: true exactly when non-empty, since every emp_no >= 1) — the
    // sweep crosses the ordered-multiset repair path, and an abort
    // mid-repair must rebuild rather than trust a half-patched multiset.
    Scenario {
        name: "example_4_1_acc_memo",
        rule: "create rule r41a when deleted from emp \
               if (select min(emp_no) from deleted emp) >= 1 \
               then delete from emp where dept_no in \
                      (select dept_no from dept where mgr_no in \
                        (select emp_no from deleted emp)); \
                    delete from dept where mgr_no in \
                      (select emp_no from deleted emp)",
        seed: &[
            "insert into dept values (1, 1), (2, 2)",
            "insert into emp values ('r', 1, 1.0, 0), ('m1', 2, 1.0, 1), \
             ('m2', 3, 1.0, 1), ('w1', 4, 1.0, 2), ('w2', 5, 1.0, 2)",
        ],
        workload: &["delete from emp where name = 'r'", "insert into emp values ('x', 9, 1.0, 9)"],
    },
];

fn fresh(scenario: &Scenario, incremental: bool) -> RuleSystem {
    let mut sys = RuleSystem::with_config(EngineConfig {
        incremental: Some(incremental),
        ..Default::default()
    });
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
    sys.execute(scenario.rule).unwrap();
    for s in scenario.seed {
        sys.execute(s).unwrap();
    }
    sys.fault_injector_mut().reset_counts();
    sys
}

fn is_fault(e: &RuleError, kind: FaultKind, n: u64) -> bool {
    let se = match e {
        RuleError::Storage(se) => se,
        RuleError::Query(QueryError::Storage(se)) => se,
        _ => return false,
    };
    matches!(se, StorageError::FaultInjected { kind: k, op } if *k == kind && *op == n)
}

/// Fail every reachable storage site in the Example 3.1/4.1 workloads
/// with incremental evaluation on: the abort must restore the exact
/// pre-statement state, the memo must not survive stale (the disarmed
/// re-run matches a never-faulted incremental run and a re-scan run),
/// and both evaluators must fault identically.
#[test]
fn fault_sweep_invalidates_memos_on_abort() {
    for scenario in SCENARIOS {
        // Discovery: fault-free incremental run, counting sites and
        // recording the expected final image.
        let mut probe = fresh(scenario, true);
        for stmt in scenario.workload {
            assert!(
                probe.transaction(stmt).unwrap().committed(),
                "{}: fault-free run must commit",
                scenario.name
            );
        }
        assert!(
            probe.stats().incr_hits + probe.stats().incr_rebuilds > 0,
            "{}: scenario must exercise the incremental path",
            scenario.name
        );
        let golden = probe.database().state_image();
        let totals: Vec<(FaultKind, u64)> = FaultKind::ALL
            .iter()
            .map(|&k| (k, probe.fault_injector().count(k)))
            .filter(|&(_, c)| c > 0)
            .collect();

        let mut swept = 0u64;
        for &(kind, total) in &totals {
            for n in 1..=total {
                let mut inc = fresh(scenario, true);
                let mut scan = fresh(scenario, false);
                inc.fault_injector_mut().arm(kind, n);
                scan.fault_injector_mut().arm(kind, n);
                let ctx = format!("[{} kind={kind} n={n}]", scenario.name);

                let mut faulted_at = None;
                for (i, stmt) in scenario.workload.iter().enumerate() {
                    let before = inc.database().state_image();
                    let a = inc.transaction(stmt);
                    let b = scan.transaction(stmt);
                    match (&a, &b) {
                        (Ok(x), Ok(y)) => {
                            assert_eq!(x.fired(), y.fired(), "{ctx} stmt {i}")
                        }
                        (Err(ea), Err(eb)) => {
                            assert!(is_fault(ea, kind, n), "{ctx} stmt {i}: {ea}");
                            assert_eq!(ea.to_string(), eb.to_string(), "{ctx} stmt {i}");
                            assert_eq!(
                                inc.database().state_image(),
                                before,
                                "{ctx} stmt {i}: abort left residue"
                            );
                            faulted_at = Some(i);
                        }
                        _ => panic!("{ctx} stmt {i}: evaluators disagree: {a:?} vs {b:?}"),
                    }
                    assert_eq!(
                        inc.database().state_image(),
                        scan.database().state_image(),
                        "{ctx} stmt {i}: evaluators diverged"
                    );
                    if faulted_at.is_some() {
                        break;
                    }
                }
                let i = faulted_at
                    .unwrap_or_else(|| panic!("{ctx}: armed site was never reached"));

                // Recovery: disarm and resume from the aborted statement.
                // A stale memo would surface here as a wrong firing
                // decision or a diverged image.
                inc.fault_injector_mut().disarm();
                scan.fault_injector_mut().disarm();
                let replay = |sys: &mut RuleSystem| {
                    for stmt in &scenario.workload[i..] {
                        sys.transaction(stmt).unwrap();
                    }
                };
                replay(&mut inc);
                replay(&mut scan);
                assert_eq!(
                    inc.database().state_image(),
                    scan.database().state_image(),
                    "{ctx}: post-recovery divergence"
                );
                assert_eq!(
                    inc.database().state_image(),
                    golden,
                    "{ctx}: recovery did not converge to the fault-free image"
                );
                swept += 1;
            }
        }
        assert!(swept > 0, "{}: no sites swept", scenario.name);
    }
}
