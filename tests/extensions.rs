//! The §5 extensions: select-triggered rules with the `S` effect
//! component (§5.1) and external-procedure actions (§5.2).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use setrules_core::{EngineConfig, RuleError, RuleSystem};
use setrules_storage::Value;

fn select_tracking_sys() -> RuleSystem {
    let mut sys = RuleSystem::with_config(EngineConfig { track_selects: true, ..Default::default() });
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table audit (who text, what text)").unwrap();
    sys
}

// ----------------------------------------------------------------------
// §5.1: rules triggered by data retrieval
// ----------------------------------------------------------------------

/// The paper's motivating use: authorization/audit checking on reads —
/// "we might want to define a rule that automatically delivers a summary
/// of employee data whenever salaries are [read]".
#[test]
fn selected_predicate_triggers_on_reads() {
    let mut sys = select_tracking_sys();
    sys.execute(
        "create rule audit_reads when selected emp.salary \
         then insert into audit (select name, 'salary-read' from selected emp.salary)",
    )
    .unwrap();
    sys.execute("insert into emp values ('Jane', 1, 95000.0, 1), ('Bill', 2, 25000.0, 2)").unwrap();

    // A select that touches salaries triggers the audit.
    let out = sys.transaction("select name, salary from emp where dept_no = 1").unwrap();
    assert_eq!(out.fired().len(), 1);
    let audit = sys.query("select who from audit").unwrap();
    assert_eq!(audit.rows, vec![vec![Value::Text("Jane".into())]], "only the read tuple is audited");
}

/// Column granularity: reading only names does not trigger a
/// `selected emp.salary` rule.
#[test]
fn selected_column_granularity() {
    let mut sys = select_tracking_sys();
    sys.execute(
        "create rule audit_reads when selected emp.salary \
         then insert into audit values ('x', 'salary-read')",
    )
    .unwrap();
    sys.execute("insert into emp values ('Jane', 1, 95000.0, 1)").unwrap();
    let out = sys.transaction("select name from emp").unwrap();
    assert!(out.fired().is_empty(), "name-only read does not touch salary");
    // But a wildcard read does.
    let out = sys.transaction("select * from emp").unwrap();
    assert_eq!(out.fired().len(), 1);
}

/// With tracking disabled (the default), select operations produce no `S`
/// component and `selected` rules never fire.
#[test]
fn select_tracking_disabled_by_default() {
    let mut sys = RuleSystem::new();
    assert!(!sys.config().track_selects);
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table audit (who text, what text)").unwrap();
    sys.execute(
        "create rule audit_reads when selected emp.salary \
         then insert into audit values ('x', 'r')",
    )
    .unwrap();
    sys.execute("insert into emp values ('Jane', 1, 95000.0, 1)").unwrap();
    let out = sys.transaction("select salary from emp").unwrap();
    assert!(out.fired().is_empty());
}

/// Documented composition choice: a tuple read and then deleted in the
/// same window drops out of `S` (mirrors `U`).
#[test]
fn selected_then_deleted_drops_out() {
    let mut sys = select_tracking_sys();
    sys.execute(
        "create rule audit_reads when selected emp.salary \
         then insert into audit values ('x', 'r')",
    )
    .unwrap();
    sys.execute("insert into emp values ('Jane', 1, 95000.0, 1)").unwrap();
    let out = sys
        .transaction("select salary from emp; delete from emp where emp_no = 1")
        .unwrap();
    assert!(out.fired().is_empty(), "the read tuple was deleted within the window");
}

/// Documented choice: only *top-level* select operations contribute to
/// `S`; embedded selects (subqueries, insert-select sources) do not.
#[test]
fn embedded_selects_do_not_contribute_to_s() {
    let mut sys = select_tracking_sys();
    sys.execute(
        "create rule audit_reads when selected emp \
         then insert into audit values ('x', 'r')",
    )
    .unwrap();
    sys.execute("insert into emp values ('Jane', 1, 95000.0, 1)").unwrap();
    sys.execute("create table copycat (name text, emp_no int, salary float, dept_no int)").unwrap();
    let out = sys.transaction("insert into copycat (select * from emp)").unwrap();
    assert!(out.fired().is_empty(), "the embedded select is an insert source, not a retrieval");
}

/// Data retrieval in rule *actions* (§5.1's other half): a select inside an
/// action produces output, visible in the transaction outcome.
#[test]
fn retrieval_in_rule_action() {
    let mut sys = RuleSystem::new();
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute(
        "create rule summary when updated emp.salary \
         then select name, salary from new updated emp.salary",
    )
    .unwrap();
    sys.execute("insert into emp values ('Jane', 1, 95000.0, 1)").unwrap();
    let out = sys.transaction("update emp set salary = 99000.0").unwrap();
    let setrules_core::TxnOutcome::Committed { output: Some(rel), .. } = out else {
        panic!("expected rule-produced output")
    };
    assert_eq!(rel.rows, vec![vec![Value::Text("Jane".into()), Value::Float(99000.0)]]);
}

// ----------------------------------------------------------------------
// §5.2: external procedure actions
// ----------------------------------------------------------------------

#[test]
fn external_action_runs_and_its_dml_forms_a_transition() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.execute("create table log (k int)").unwrap();
    let calls = Arc::new(AtomicUsize::new(0));
    let calls2 = Arc::clone(&calls);
    sys.create_rule_external(
        "native",
        "inserted into t",
        None,
        Arc::new(move |ctx: &mut setrules_core::ActionCtx<'_>| {
            calls2.fetch_add(1, Ordering::SeqCst);
            // Read the transition table natively.
            let rows = ctx
                .transition_table(setrules_sql::ast::TransitionKind::Inserted, "t", None)
                .map_err(setrules_core::RuleError::Query)?;
            for row in rows {
                let k = row[0].as_i64().unwrap();
                ctx.run_sql(&format!("insert into log values ({})", k * 10))?;
            }
            Ok(())
        }),
    )
    .unwrap();
    // A second declarative rule watches the external action's transition.
    sys.execute("create table seen (n int)").unwrap();
    sys.execute("create rule watch when inserted into log then insert into seen values (1)").unwrap();

    let out = sys.transaction("insert into t values (1), (2)").unwrap();
    assert_eq!(calls.load(Ordering::SeqCst), 1, "set-oriented: one call for both inserts");
    let rules: Vec<&str> = out.fired().iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(rules, vec!["native", "watch"], "the external DML triggered the watcher");
    let logged = sys.query("select k from log order by k").unwrap();
    assert_eq!(logged.rows, vec![vec![Value::Int(10)], vec![Value::Int(20)]]);
}

#[test]
fn external_action_error_rolls_back() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.create_rule_external(
        "fail",
        "inserted into t",
        None,
        Arc::new(|ctx: &mut setrules_core::ActionCtx<'_>| {
            ctx.run_sql("delete from t")?; // does some work first
            Err(RuleError::Unsupported("simulated external failure".into()))
        }),
    )
    .unwrap();
    let err = sys.transaction("insert into t values (1)").unwrap_err();
    assert!(matches!(err, RuleError::Unsupported(_)));
    assert_eq!(
        sys.query("select count(*) from t").unwrap().scalar().unwrap(),
        &Value::Int(0),
        "both the external delete and the original insert were undone"
    );
    assert!(!sys.in_transaction());
}

#[test]
fn external_action_condition_gating() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    let calls = Arc::new(AtomicUsize::new(0));
    let calls2 = Arc::clone(&calls);
    sys.create_rule_external(
        "gated",
        "inserted into t",
        Some("exists (select * from inserted t where k > 100)"),
        Arc::new(move |_ctx: &mut setrules_core::ActionCtx<'_>| {
            calls2.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }),
    )
    .unwrap();
    sys.transaction("insert into t values (1)").unwrap();
    assert_eq!(calls.load(Ordering::SeqCst), 0);
    sys.transaction("insert into t values (101)").unwrap();
    assert_eq!(calls.load(Ordering::SeqCst), 1);
}

/// External actions respect the §3 transition-table licensing too.
#[test]
fn external_action_licensing_enforced() {
    let mut sys = RuleSystem::new();
    sys.execute("create table t (k int)").unwrap();
    sys.create_rule_external(
        "nosy",
        "inserted into t",
        None,
        Arc::new(|ctx: &mut setrules_core::ActionCtx<'_>| {
            let r = ctx.transition_table(setrules_sql::ast::TransitionKind::Deleted, "t", None);
            assert!(r.is_err(), "deleted t is not licensed by 'inserted into t'");
            Ok(())
        }),
    )
    .unwrap();
    sys.transaction("insert into t values (1)").unwrap();
}
