//! Exhaustive fault-injection sweep over the paper-example workloads.
//!
//! For each scenario (Examples 3.1, 3.2, 4.1, 4.3) the sweep first runs
//! fault-free to *discover* how many storage operations of each
//! [`FaultKind`] the workload performs, then re-runs the workload once per
//! `(kind, n)` site with the injector armed to fail exactly that
//! operation. The crash-consistency contract asserted at every site:
//!
//! * no panics — an injected fault surfaces as an ordinary error;
//! * the failing statement's transaction rolls back, leaving the database
//!   **byte-identical** (via [`Database::state_image`]) to the state
//!   before the statement;
//! * no ghost state survives the abort: no open transaction, an empty
//!   undo log, and an empty deferred window;
//! * the engine reported the fault (`EngineStats::faults_injected`,
//!   `EngineEvent::Fault` + `EngineEvent::StatementRollback`);
//! * the system remains usable after disarming.
//!
//! Set `FAULT_SWEEP_FAST=1` to probe only the first, middle, and last
//! site of each kind (the CI-bounded mode used by `scripts/ci.sh`).
//!
//! [`FaultKind`]: setrules_storage::FaultKind
//! [`Database::state_image`]: setrules_storage::Database::state_image

use setrules_core::{EngineEvent, RuleError, RuleSystem};
use setrules_query::QueryError;
use setrules_storage::{FaultKind, StorageError, Value};
use setrules_testkit::check;

// ----------------------------------------------------------------------
// Scenarios: the paper's running examples as setup + workload statements.
// ----------------------------------------------------------------------

struct Scenario {
    name: &'static str,
    /// DDL and rule definitions; runs before the sweep's counters reset,
    /// so its storage operations are not fault sites.
    setup: fn(&mut RuleSystem),
    /// The workload statements, each run as one transaction (operation
    /// block + rule processing). Every storage operation any of them
    /// performs — directly or through rule actions — is a fault site.
    workload: &'static [&'static str],
}

fn paper_tables(sys: &mut RuleSystem) {
    sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
    sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
}

fn setup_ex31(sys: &mut RuleSystem) {
    paper_tables(sys);
    sys.execute(
        "create rule r31 when deleted from dept \
         then delete from emp where dept_no in (select dept_no from deleted dept)",
    )
    .unwrap();
    // An index makes every emp insert/delete/update an IndexMaintenance
    // fault site as well.
    sys.execute("create index on emp (dept_no)").unwrap();
}

fn setup_ex32(sys: &mut RuleSystem) {
    paper_tables(sys);
    sys.execute(
        "create rule r32 when updated emp.salary \
         if (select sum(salary) from new updated emp.salary) > \
            (select sum(salary) from old updated emp.salary) \
         then update emp set salary = 0.95 * salary where dept_no = 2; \
              update emp set salary = 0.85 * salary where dept_no = 3",
    )
    .unwrap();
    sys.execute("create index on emp (salary)").unwrap();
}

fn rule_r41(sys: &mut RuleSystem) {
    sys.execute(
        "create rule r41 when deleted from emp \
         then delete from emp where dept_no in \
                (select dept_no from dept where mgr_no in \
                  (select emp_no from deleted emp)); \
              delete from dept where mgr_no in \
                (select emp_no from deleted emp)",
    )
    .unwrap();
}

fn setup_ex41(sys: &mut RuleSystem) {
    paper_tables(sys);
    rule_r41(sys);
}

fn setup_ex43(sys: &mut RuleSystem) {
    paper_tables(sys);
    rule_r41(sys); // r41 is Example 4.3's R1
    sys.execute(
        "create rule r2 when updated emp.salary \
         if (select avg(salary) from new updated emp.salary) > 50000 \
         then delete from emp where emp_no in \
                (select emp_no from new updated emp.salary) \
              and salary > 80000",
    )
    .unwrap();
    sys.execute("create rule priority r2 before r41").unwrap();
}

fn setup_ordered(sys: &mut RuleSystem) {
    paper_tables(sys);
    sys.execute(
        "create rule r31 when deleted from dept \
         then delete from emp where dept_no in (select dept_no from deleted dept)",
    )
    .unwrap();
    // Ordered + hash indexes on the same table: every emp insert, delete,
    // and update is an IndexMaintenance fault site in *both* index
    // implementations, and the rollback contract must restore the BTree
    // buckets byte-identically (state_image orders each index image).
    sys.execute("create index on emp (salary) using ordered").unwrap();
    sys.execute("create index on emp (dept_no)").unwrap();
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "example_3_1",
        setup: setup_ex31,
        workload: &[
            "insert into dept values (1, 10), (2, 20)",
            "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 10.0, 1), ('c', 3, 10.0, 2)",
            "delete from dept where dept_no = 1",
        ],
    },
    Scenario {
        name: "example_3_2",
        setup: setup_ex32,
        workload: &[
            "insert into emp values ('u', 1, 1000.0, 1), ('v', 2, 1000.0, 2), \
             ('w', 3, 1000.0, 3)",
            "update emp set salary = 2000.0 where name = 'u'",
        ],
    },
    Scenario {
        name: "example_4_1",
        setup: setup_ex41,
        workload: &[
            "insert into dept values (1, 1), (2, 2)",
            "insert into emp values ('r', 1, 1.0, 0), ('m1', 2, 1.0, 1), \
             ('m2', 3, 1.0, 1), ('w1', 4, 1.0, 2), ('w2', 5, 1.0, 2)",
            "delete from emp where name = 'r'",
        ],
    },
    Scenario {
        name: "example_4_3",
        setup: setup_ex43,
        workload: &[
            "insert into dept values (1, 1), (2, 2), (3, 3)",
            "insert into emp values \
             ('Jane', 1, 100000.0, 0), ('Mary', 2, 70000.0, 1), ('Jim', 3, 60000.0, 1), \
             ('Bill', 4, 25000.0, 2), ('Sam', 5, 40000.0, 3), ('Sue', 6, 45000.0, 3)",
            "delete from emp where name = 'Jane'; \
             update emp set salary = 30000.0 where name = 'Bill'; \
             update emp set salary = 85000.0 where name = 'Mary'",
        ],
    },
    Scenario {
        name: "ordered_index",
        setup: setup_ordered,
        workload: &[
            "insert into dept values (1, 10), (2, 20)",
            "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 20.0, 1), ('c', 3, 30.0, 2)",
            // Update through the ordered-index maintenance path (delete
            // from the old salary bucket, insert into the new one).
            "update emp set salary = salary + 5.0 where salary between 15.0 and 35.0",
            // Range-predicate delete: the statement itself range-scans the
            // ordered index while its undo must restore the same buckets.
            "delete from emp where salary >= 25.0",
            "delete from dept where dept_no = 1",
        ],
    },
];

// ----------------------------------------------------------------------
// Sweep machinery.
// ----------------------------------------------------------------------

fn fresh(scenario: &Scenario) -> RuleSystem {
    let mut sys = RuleSystem::new();
    (scenario.setup)(&mut sys);
    // Rebase site numbering: setup's storage operations are not sites.
    sys.fault_injector_mut().reset_counts();
    sys
}

/// The injected-fault payload of an engine error, if that is what it is.
fn fault_of(e: &RuleError) -> Option<(FaultKind, u64)> {
    let se = match e {
        RuleError::Storage(se) => se,
        RuleError::Query(QueryError::Storage(se)) => se,
        _ => return None,
    };
    match se {
        StorageError::FaultInjected { kind, op } => Some((*kind, *op)),
        _ => None,
    }
}

/// Which site numbers of `total` to probe: all of them, or (under
/// `FAULT_SWEEP_FAST`) the first, middle, and last.
fn sites(total: u64) -> Vec<u64> {
    if std::env::var_os("FAULT_SWEEP_FAST").is_some() {
        let mut s = vec![1, total.div_ceil(2), total];
        s.dedup();
        s
    } else {
        (1..=total).collect()
    }
}

/// Run `scenario` with the injector armed at `(kind, n)` and assert the
/// crash-consistency contract. Returns the index of the statement that
/// faulted.
fn run_armed(scenario: &Scenario, kind: FaultKind, n: u64) -> usize {
    let mut sys = fresh(scenario);
    sys.fault_injector_mut().arm(kind, n);
    let ctx = format!("[{} kind={kind} n={n}]", scenario.name);

    for (i, stmt) in scenario.workload.iter().enumerate() {
        let before = sys.database().state_image();
        let faults_before = sys.stats().faults_injected;
        match sys.transaction(stmt) {
            Ok(_) => continue,
            Err(e) => {
                // (a) The error is exactly the armed fault, not a panic or
                // an unrelated failure.
                let (fk, fn_) = fault_of(&e)
                    .unwrap_or_else(|| panic!("{ctx} stmt {i}: unexpected error {e}"));
                assert_eq!((fk, fn_), (kind, n), "{ctx} stmt {i}: wrong fault surfaced");

                // (b) Post-failure state is byte-identical to the
                // pre-statement snapshot.
                let after = sys.database().state_image();
                assert_eq!(after, before, "{ctx} stmt {i}: state diverged after rollback");

                // (c) No ghost entries from the aborted statement: the
                // transaction is closed, its undo discarded, and nothing
                // is pending for deferred rule processing.
                assert!(!sys.in_transaction(), "{ctx}: transaction left open");
                assert_eq!(sys.database().undo_len(), 0, "{ctx}: undo log not drained");
                assert!(sys.deferred_window().is_empty(), "{ctx}: deferred window not empty");

                // The engine accounted for the fault and the statement
                // rollback, and emitted the matching events.
                assert_eq!(sys.stats().faults_injected, faults_before + 1, "{ctx}");
                assert!(sys.stats().stmt_rollbacks > 0, "{ctx}");
                let events = sys.recent_events();
                assert!(
                    events.contains(&EngineEvent::Fault { kind: kind.name().into(), n }),
                    "{ctx}: no Fault event"
                );
                assert!(events.contains(&EngineEvent::StatementRollback), "{ctx}");
                assert!(
                    events.contains(&EngineEvent::Rollback { by_rule: None }),
                    "{ctx}: no transaction Rollback event"
                );

                // The system stays usable once the plan is disarmed.
                sys.fault_injector_mut().disarm();
                sys.transaction("insert into emp values ('probe', 99, 1.0, 9)").unwrap();
                sys.transaction("delete from emp where emp_no = 99").unwrap();
                assert_eq!(
                    sys.database().state_image(),
                    before,
                    "{ctx}: probe transaction was not clean"
                );
                return i;
            }
        }
    }
    panic!("{ctx}: armed site was never reached — discovery and sweep disagree");
}

/// The sweep proper: discover every `(kind, n)` site reachable from each
/// paper-example workload, then fail each one and assert the contract.
#[test]
fn sweep_every_fault_site_on_paper_workloads() {
    for scenario in SCENARIOS {
        // Discovery pass: fault-free run, counting operations per kind.
        let mut sys = fresh(scenario);
        for stmt in scenario.workload {
            let out = sys.transaction(stmt).unwrap();
            assert!(out.committed(), "{}: fault-free run must commit", scenario.name);
        }
        let totals: Vec<(FaultKind, u64)> = FaultKind::ALL
            .iter()
            .map(|&k| (k, sys.fault_injector().count(k)))
            .filter(|&(_, c)| c > 0)
            .collect();
        assert!(
            totals.iter().any(|&(k, _)| k == FaultKind::TupleInsert),
            "{}: workload must exercise inserts",
            scenario.name
        );

        let mut swept = 0u64;
        for &(kind, total) in &totals {
            for n in sites(total) {
                run_armed(scenario, kind, n);
                swept += 1;
            }
        }
        assert!(swept > 0, "{}: no sites swept", scenario.name);
    }
}

/// Indexed scenarios must actually reach index-maintenance fault sites
/// (otherwise the sweep silently loses a whole kind).
#[test]
fn indexed_workloads_expose_index_maintenance_sites() {
    for scenario in SCENARIOS
        .iter()
        .filter(|s| s.name.starts_with("example_3") || s.name == "ordered_index")
    {
        let mut sys = fresh(scenario);
        for stmt in scenario.workload {
            sys.transaction(stmt).unwrap();
        }
        assert!(
            sys.fault_injector().count(FaultKind::IndexMaintenance) > 0,
            "{}: expected index-maintenance sites",
            scenario.name
        );
    }
}

/// A fault during `process_deferred` rolls back the rule actions but the
/// already-committed external transactions stay committed — and the
/// deferred window is consumed, not left as a ghost.
#[test]
fn fault_during_deferred_processing_keeps_committed_work() {
    let mut sys = RuleSystem::new();
    (setup_ex31)(&mut sys);
    // Inserts commit through ordinary transactions so the later deferred
    // delete is NOT composed away against them (Definition 2.1 nets an
    // insert-then-delete of the same tuple to nothing).
    sys.execute("insert into dept values (1, 10)").unwrap();
    sys.execute("insert into emp values ('a', 1, 10.0, 1)").unwrap();
    sys.transaction_without_rules("delete from dept where dept_no = 1").unwrap();
    let committed = sys.database().state_image();

    // r31's deferred action deletes 'a' — fail that delete.
    sys.fault_injector_mut().reset_counts();
    sys.fault_injector_mut().arm(FaultKind::TupleDelete, 1);
    let err = sys.process_deferred().unwrap_err();
    assert!(fault_of(&err).is_some(), "expected the injected fault, got {err}");
    assert_eq!(sys.database().state_image(), committed, "committed work must survive");
    assert!(!sys.in_transaction());
    assert!(sys.deferred_window().is_empty(), "deferred window must be consumed");

    // Disarmed, the same processing completes.
    sys.fault_injector_mut().disarm();
    // The deferred window was consumed by the failed attempt; re-seed it.
    sys.execute("insert into dept values (2, 20)").unwrap();
    sys.transaction_without_rules("delete from dept where dept_no = 2").unwrap();
    sys.process_deferred().unwrap();
    assert_eq!(
        sys.query("select count(*) from emp").unwrap().scalar().unwrap(),
        &Value::Int(1),
        "'a' survives: dept 1's delete was processed (and lost) by the faulted pass"
    );
}

/// Randomized savepoint property: arm a random site against a random
/// multi-row DML statement; if the statement fails, the database must be
/// byte-identical to its pre-statement state.
#[test]
fn random_multi_row_dml_rolls_back_to_statement_boundary() {
    check("fault_savepoint_property", 150, 0xfa01_75ee, |rng| {
        let mut sys = RuleSystem::new();
        sys.execute("create table t (k int, v float)").unwrap();
        if rng.chance(1, 2) {
            sys.execute("create index on t (k)").unwrap();
        }
        let rows: Vec<String> =
            (0..3 + rng.below(5)).map(|i| format!("({}, {}.5)", i, i * 10)).collect();
        sys.transaction(&format!("insert into t values {}", rows.join(", "))).unwrap();

        let kind = *rng.pick(&FaultKind::ALL);
        let nth = 1 + rng.below(6) as u64;
        sys.fault_injector_mut().reset_counts();
        sys.fault_injector_mut().arm(kind, nth);

        let stmt = match rng.below(3) {
            0 => "update t set v = v * 2.0 where k >= 1".to_string(),
            1 => "delete from t where k >= 2".to_string(),
            _ => "insert into t values (100, 1.0), (101, 2.0), (102, 3.0)".to_string(),
        };
        let before = sys.database().state_image();
        match sys.transaction(&stmt) {
            Ok(_) => {
                // Site never reached — the statement applied normally.
                assert_ne!(sys.database().state_image(), before);
            }
            Err(e) => {
                assert!(fault_of(&e).is_some(), "unexpected error {e}");
                assert_eq!(sys.database().state_image(), before);
                assert_eq!(sys.database().undo_len(), 0);
            }
        }
    });
}
